#!/usr/bin/env python3
"""Quickstart: the unified classification API end to end.

This is the smallest tour of :mod:`repro.api`, the package front door:

1. generate an ACL-flavoured rule set with the ClassBench-style generator;
2. build the paper's configurable architecture by registry name with
   :func:`repro.api.create_classifier` (any other registered engine —
   ``"hypercuts"``, ``"rfc"``, ... — is the same one-line change);
3. classify single packets (``classify``) and a whole trace
   (``classify_batch``), checking against the linear-search ground truth;
4. stream a larger trace through a :class:`repro.api.ClassificationSession`
   and print the uniform session statistics;
5. sweep every registered classifier on the same workload.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import generate_ruleset, generate_trace
from repro.api import ClassificationSession, available_classifiers, create_classifier
from repro.analysis import format_kv, format_table


def main() -> None:
    # 1. A ~1K-rule ACL-style filter set (deterministic: same seed, same rules).
    rules = generate_ruleset(nominal_size=1000, seed=2014)
    print(f"Generated rule set {rules.name!r} with {len(rules)} rules")

    # 2. The configurable architecture, by registry name.  Options are the
    #    config knobs: ip_algorithm="bst", combiner="first_label", or a full
    #    ClassifierConfig.builder()... config.
    classifier = create_classifier("configurable", rules)
    print(f"Classifier: {classifier}\n")

    # 3. Single packets against the linear-scan reference.
    trace = generate_trace(rules, count=5, seed=7)
    for index, packet in enumerate(trace):
        result = classifier.classify(packet)
        reference = rules.highest_priority_match(packet)
        matched = f"rule #{result.rule_id} ({result.action})" if result.matched else "no match"
        print(f"packet {index}: {packet}")
        print(
            f"  -> {matched}  | latency {result.latency_cycles} cycles, "
            f"{result.memory_accesses} memory accesses, "
            f"{result.combiner_probes} rule-filter probes"
        )
        expected = f"rule #{reference.rule_id}" if reference else "no match"
        print(f"  -> linear-scan reference agrees: {expected}")

    # ... and a whole trace in one call.
    batch = classifier.classify_batch(trace)
    print(f"\nBatch of {batch.packets}: hit ratio {batch.hit_ratio:.2f}, "
          f"avg {batch.average_memory_accesses:.1f} accesses/packet")

    # 4. Stream a larger trace in chunks; statistics are engine-independent.
    session = ClassificationSession(classifier, chunk_size=64)
    stats = session.run(generate_trace(rules, count=512, seed=11))
    details = classifier.stats().details
    print()
    print(
        format_kv(
            {
                "Classifier": stats.classifier,
                "Packets streamed": stats.packets,
                "Chunks": stats.chunks,
                "Hit ratio": f"{stats.hit_ratio:.3f}",
                "Avg accesses / packet": f"{stats.average_memory_accesses:.1f}",
                "Structure memory": f"{stats.memory_megabits:.2f} Mbit",
                "Model throughput (40B packets)": f"{details['throughput_gbps']:.2f} Gbps",
            },
            title="Classifier report",
        )
    )

    # 5. Every registered engine through the exact same protocol.
    sweep_trace = generate_trace(rules, count=60, seed=13)
    rows = []
    for name in available_classifiers():
        if name == "rfc":  # RFC's cross-product build dominates quickstart time
            continue
        engine = create_classifier(name, rules)
        result = engine.classify_batch(sweep_trace)
        rows.append(
            {
                "Classifier": name,
                "Avg accesses": round(result.average_memory_accesses, 1),
                "Memory Mbit": round(engine.memory_bits() / 1e6, 2),
                "Hit ratio": round(result.hit_ratio, 3),
            }
        )
    print()
    print(format_table(rows, title="Registry sweep (classify_batch on 60 packets)"))


if __name__ == "__main__":
    main()

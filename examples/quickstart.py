#!/usr/bin/env python3
"""Quickstart: build a classifier from a synthetic rule set and classify packets.

This is the smallest end-to-end tour of the public API:

1. generate an ACL-flavoured rule set with the ClassBench-style generator;
2. build a :class:`~repro.core.classifier.ConfigurableClassifier` (default
   configuration: multi-bit trie IP lookup, cross-product label combination);
3. classify a few packets and print the matched rule, the action, the
   per-lookup cycle latency and the memory accesses;
4. print the classifier report (throughput, memory, label table sizes).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ConfigurableClassifier, generate_ruleset, generate_trace
from repro.analysis import format_kv


def main() -> None:
    # 1. A ~1K-rule ACL-style filter set (deterministic: same seed, same rules).
    rules = generate_ruleset(nominal_size=1000, seed=2014)
    print(f"Generated rule set {rules.name!r} with {len(rules)} rules")

    # 2. The configurable classifier with the paper's default configuration.
    classifier = ConfigurableClassifier.from_ruleset(rules)
    print(f"Classifier: {classifier}\n")

    # 3. Classify a few packets drawn from the rule set.
    trace = generate_trace(rules, count=5, seed=7)
    for index, packet in enumerate(trace):
        result = classifier.lookup(packet)
        reference = rules.highest_priority_match(packet)
        matched = f"rule #{result.match.rule_id} ({result.match.action})" if result.match else "no match"
        print(f"packet {index}: {packet}")
        print(
            f"  -> {matched}  | latency {result.latency_cycles} cycles, "
            f"{result.total_memory_accesses} memory accesses, "
            f"{result.combiner_probes} rule-filter probes"
        )
        expected = f"rule #{reference.rule_id}" if reference else "no match"
        print(f"  -> linear-scan reference agrees: {expected}")

    # 4. The device-level report.
    report = classifier.report()
    print()
    print(
        format_kv(
            {
                "IP algorithm": report.ip_algorithm,
                "Rules installed": report.rules_installed,
                "Rule capacity": report.rule_capacity,
                "Throughput (40B packets)": f"{report.throughput_gbps:.2f} Gbps",
                "Provisioned memory": f"{report.memory_space_mbit:.2f} Mbit",
                "Lookup latency": f"{report.lookup_latency_cycles} cycles",
            },
            title="Classifier report",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Algorithm trade-off study: MBT vs BST vs the software baselines.

A small research-style study built on the public API: for a sweep of rule-set
sizes it compares

* the two configurations of the proposed architecture (speed-optimised MBT vs
  capacity-optimised BST) on throughput, rule capacity and provisioned memory;
* a selection of software baselines (HyperCuts, DCFL) on average memory
  accesses per lookup and structure size,

and prints where the crossover points fall — i.e. when the controller should
flip the ``IPalg_s`` signal (the decision policy of
:meth:`repro.controller.SdnController.select_ip_algorithm`).

Run with::

    python examples/algorithm_tradeoff_study.py
"""

from __future__ import annotations

from repro import ClassifierConfig, ConfigurableClassifier, IpAlgorithm
from repro.analysis import format_table, measure_lookups
from repro.api import create_classifier
from repro.controller import ApplicationRequirements, SdnController
from repro.rules import FilterFlavor, generate_ruleset, generate_trace

SIZES = (500, 1000, 2000, 5000)


def architecture_rows() -> list:
    rows = []
    for size in SIZES:
        rules = generate_ruleset(FilterFlavor.ACL, nominal_size=size, seed=2014)
        trace = generate_trace(rules, count=100, seed=5)
        for algorithm in (IpAlgorithm.MBT, IpAlgorithm.BST):
            config = ClassifierConfig(ip_algorithm=algorithm)
            classifier = ConfigurableClassifier.from_ruleset(rules, config)
            metrics = measure_lookups(classifier, trace)
            rows.append(
                {
                    "Rules": len(rules),
                    "Configuration": algorithm.value.upper(),
                    "Throughput Gbps": round(classifier.throughput_gbps(), 2),
                    "Rule capacity": config.rule_capacity(),
                    "Avg memory accesses": round(metrics.average_memory_accesses, 1),
                    "Hit ratio": round(metrics.hit_ratio, 3),
                }
            )
    return rows


def baseline_rows() -> list:
    rows = []
    for size in SIZES:
        rules = generate_ruleset(FilterFlavor.ACL, nominal_size=size, seed=2014)
        trace = generate_trace(rules, count=100, seed=5)
        for name in ("hypercuts", "dcfl"):
            baseline = create_classifier(name, rules)
            batch = baseline.classify_batch(trace)
            rows.append(
                {
                    "Rules": len(rules),
                    "Algorithm": name,
                    "Avg memory accesses": round(batch.average_memory_accesses, 1),
                    "Memory Mbit": round(baseline.memory_bits() / 1e6, 2),
                }
            )
    return rows


def controller_decisions() -> list:
    controller = SdnController()
    rows = []
    for expected_rules in (1000, 6000, 9000, 11000):
        for latency_critical in (True, False):
            try:
                choice = controller.select_ip_algorithm(
                    ApplicationRequirements(
                        name="study",
                        expected_rules=expected_rules,
                        latency_critical=latency_critical,
                        min_throughput_gbps=1.0,
                    )
                ).value.upper()
            except Exception as exc:  # capacity exceeded for both configurations
                choice = f"rejected ({exc})"
            rows.append(
                {
                    "Expected rules": expected_rules,
                    "Latency critical": latency_critical,
                    "Controller selects": choice,
                }
            )
    return rows


def main() -> None:
    print(format_table(architecture_rows(), title="Proposed architecture: MBT vs BST across rule-set sizes"))
    print()
    print(format_table(baseline_rows(), title="Software baselines on the same workloads"))
    print()
    print(format_table(controller_decisions(), title="Controller IPalg_s decisions (select_ip_algorithm policy)"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Incremental update example: live rule churn on a running classifier.

The headline operational property of the architecture is *fast incremental
update* (sections IV.A and V.A): inserting or deleting a rule normally only
bumps per-field label counters and uploads one Rule Filter entry (2 cycles +
1 hash cycle); only genuinely new field values require a structural algorithm
update computed in software.

This example:

1. installs an initial ACL rule set;
2. classifies traffic to establish a baseline;
3. commits a batch of new rules (most of which reuse existing field values)
   and a batch of deletions through the **transactional control plane**
   (``classifier.control.begin() ... commit()`` — each batch lands
   all-or-nothing as one versioned program commit), printing the measured
   cost of every kind of update;
4. shows that classification results stay consistent with the linear-scan
   ground truth throughout the churn.

Run with::

    python examples/incremental_update.py
"""

from __future__ import annotations

from repro import ConfigurableClassifier, generate_ruleset, generate_trace
from repro.analysis import format_kv, summarize_updates
from repro.rules import Rule, RuleSet


def main() -> None:
    rules = generate_ruleset(nominal_size=1000, seed=2014)
    ordered = rules.rules()
    initial = RuleSet(ordered[:700], name="initial")
    pending = ordered[700:]

    classifier = ConfigurableClassifier.from_ruleset(initial)
    print(f"Installed {classifier.installed_rules} initial rules\n")

    trace = generate_trace(rules, count=100, seed=3)

    def verify(tag: str, reference: RuleSet) -> None:
        mismatches = 0
        for packet in trace:
            result = classifier.classify(packet)
            expected = reference.highest_priority_match(packet)
            got_id = result.rule_id
            expected_id = expected.rule_id if expected else None
            if got_id != expected_id:
                mismatches += 1
        print(f"[{tag}] ground-truth check: {len(trace) - mismatches}/{len(trace)} packets agree")

    verify("before churn", initial)

    # -- insert the remaining rules as one transactional commit -------------------
    plane = classifier.control
    txn = plane.begin()
    for rule in pending:
        txn.insert(rule)
    insert_commit = txn.commit()  # all-or-nothing, epoch-stamped
    insert_metrics = summarize_updates(list(insert_commit.results))
    print()
    print(
        format_kv(
            {
                "Rules inserted": insert_metrics.operations,
                "Program version": insert_commit.version,
                "Counter-only fraction": f"{insert_metrics.counter_only_fraction * 100:.1f}%",
                "Average cycles per insert": f"{insert_metrics.average_cycles:.1f}",
                "Average memory accesses per insert": f"{insert_metrics.average_memory_accesses:.1f}",
            },
            title="Incremental insertion (one Txn)",
        )
    )
    verify("after inserts", rules)

    # -- delete a quarter of the rules again, as a second commit -------------------
    victims = [rule.rule_id for rule in ordered[:250]]
    txn = plane.begin()
    for rule_id in victims:
        txn.remove(rule_id)
    delete_commit = txn.commit()
    delete_metrics = summarize_updates(list(delete_commit.results))
    survivors = RuleSet((rule for rule in ordered if rule.rule_id not in set(victims)), name="survivors")
    print()
    print(
        format_kv(
            {
                "Rules deleted": delete_metrics.operations,
                "Program version": delete_commit.version,
                "Counter-only fraction": f"{delete_metrics.counter_only_fraction * 100:.1f}%",
                "Average cycles per delete": f"{delete_metrics.average_cycles:.1f}",
            },
            title="Incremental deletion (one Txn)",
        )
    )
    verify("after deletes", survivors)

    print()
    stats = classifier.update_engine.update_statistics()
    print(
        format_kv(
            {dim: f"{s['structural_inserts']} new labels / {s['counter_only_inserts']} counter bumps"
             for dim, s in stats.items()},
            title="Per-dimension label table activity (Fig. 4 behaviour)",
        )
    )


if __name__ == "__main__":
    main()

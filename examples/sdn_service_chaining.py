#!/usr/bin/env python3
"""SDN deployment example: one controller, two switches, two applications.

Reproduces the paper's motivating scenario (sections I and III.A): the SDN
controller configures each device's lookup datapath for the application it
serves —

* a **multi-end video-conferencing** switch needs line-rate lookups for a
  modest rule set, so the controller selects the fast **MBT** configuration;
* a **data-centre edge firewall** carries a very large rule filter that does
  not fit the MBT configuration's 8K-rule capacity, so the controller selects
  the memory-efficient **BST** configuration, which reclaims the unused MBT
  memory for rule storage (Fig. 5).

The script then pushes the rule sets over the OpenFlow-lite channel, runs
traffic through both switches, and prints the per-device statistics the
controller collects.

Run with::

    python examples/sdn_service_chaining.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.controller import ApplicationRequirements, SdnController
from repro.rules import FilterFlavor, generate_ruleset, generate_trace


def main() -> None:
    controller = SdnController(name="demo-controller")
    video_switch = controller.add_switch(datapath_id=1)
    firewall_switch = controller.add_switch(datapath_id=2)

    # -- application 1: latency-critical video conferencing -------------------
    video_rules = generate_ruleset(FilterFlavor.ACL, nominal_size=1000, seed=7)
    video_app = ApplicationRequirements(
        name="multi-end video conferencing",
        min_throughput_gbps=40.0,
        expected_rules=len(video_rules),
        latency_critical=True,
    )
    chosen = controller.select_ip_algorithm(video_app)
    print(f"[controller] {video_app.name!r}: selecting {chosen.value.upper()} lookup")
    report = controller.deploy_application(1, video_app, video_rules)
    print(f"[controller] pushed {report.accepted}/{report.requested} rules to dp1 "
          f"({report.structural_updates} structural updates)\n")

    # -- application 2: large firewall rule filter ------------------------------
    firewall_rules = generate_ruleset(FilterFlavor.FW, nominal_size=10000, seed=11)
    firewall_app = ApplicationRequirements(
        name="edge firewall",
        min_throughput_gbps=2.0,
        expected_rules=len(firewall_rules),
        latency_critical=False,
    )
    chosen = controller.select_ip_algorithm(firewall_app)
    print(f"[controller] {firewall_app.name!r}: selecting {chosen.value.upper()} lookup")
    report = controller.deploy_application(2, firewall_app, firewall_rules)
    print(f"[controller] pushed {report.accepted}/{report.requested} rules to dp2 "
          f"({report.structural_updates} structural updates)\n")

    # -- data plane traffic -------------------------------------------------------
    for datapath_id, switch, rules in ((1, video_switch, video_rules), (2, firewall_switch, firewall_rules)):
        trace = generate_trace(rules, count=200, seed=datapath_id)
        switch.classify_batch(trace)

    # -- controller-side statistics ------------------------------------------------
    rows = []
    for datapath_id in (1, 2):
        stats = controller.request_stats(datapath_id)
        channel = controller.channel(datapath_id)
        rows.append(
            {
                "Datapath": stats["datapath_id"],
                "IP algorithm": stats["ip_algorithm"].upper(),
                "Rules installed": stats["rules_installed"],
                "Rule capacity": stats["rule_capacity"],
                "Throughput Gbps": round(stats["throughput_gbps"], 2),
                "Packets classified": stats["packets_classified"],
                "Match ratio": round(stats["match_ratio"], 3),
                "Control messages": channel.stats.total_messages,
                "Control bytes": channel.stats.total_bytes,
            }
        )
    print(format_table(rows, title="Per-device statistics collected by the controller"))


if __name__ == "__main__":
    main()

"""Benchmark reproducing Table VII — comparison against published designs.

Regenerates the four comparison rows (our MBT/BST rows from the model, the
Optimizing HyperCuts and DCFLE rows quoted from the literature) and checks the
relations the paper draws from the table.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.experiments import table7


def test_table7_comparison(benchmark):
    """Regenerate Table VII and verify the cross-system relations."""
    result = benchmark.pedantic(table7.run, rounds=1, iterations=1)
    ours_mbt = result.row("Our system with MBT")
    ours_bst = result.row("Our system with BST")
    hypercuts = result.row("Optimizing HyperCuts")
    dcfle = result.row("DCFLE")

    # Our measured rows land on the paper's values.
    assert ours_mbt.throughput_gbps == pytest.approx(42.73, rel=0.01)
    assert ours_bst.throughput_gbps == pytest.approx(2.67, rel=0.01)
    assert ours_mbt.memory_mbit == pytest.approx(2.1, rel=0.05)
    assert ours_bst.memory_mbit == pytest.approx(2.1, rel=0.05)
    assert ours_mbt.stored_rules >= 8000
    assert ours_bst.stored_rules >= 12000

    # Relations the paper highlights:
    # - our MBT system overcomes the OC-768 (39.8 Gbps) line rate;
    assert ours_mbt.throughput_gbps > 39.8
    # - Optimizing HyperCuts is faster but needs >2x our memory;
    assert hypercuts.throughput_gbps > ours_mbt.throughput_gbps
    assert hypercuts.memory_mbit > 2 * ours_mbt.memory_mbit
    # - DCFLE stores orders of magnitude fewer rules and misses line rate.
    assert dcfle.stored_rules < ours_mbt.stored_rules / 10
    assert dcfle.throughput_gbps < ours_mbt.throughput_gbps

    write_result("table7", table7.render(result))

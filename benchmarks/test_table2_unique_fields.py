"""Benchmark reproducing Table II — unique rule fields per rule set.

Measures the unique-field analysis over the three acl1 workload sizes and
checks the reproduction against the paper's counts (exact for the fields the
generator anchors on, within a tolerance for the others).
"""

from __future__ import annotations

from conftest import write_result
from repro.experiments import table2
from repro.experiments.table2 import PAPER_TABLE_II


def test_table2_unique_fields(benchmark):
    """Regenerate Table II and compare against the paper's counts."""
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)

    # Source port and protocol counts are structural and must match exactly.
    for size in result.sizes:
        assert result.unique_count(size, "src_port") == PAPER_TABLE_II["src_port"][size]
        assert result.unique_count(size, "protocol") == PAPER_TABLE_II["protocol"][size]

    # The IP-address uniqueness is calibrated: within 5% of the paper's values.
    for field in ("src_ip", "dst_ip"):
        for size in result.sizes:
            paper = PAPER_TABLE_II[field][size]
            measured = result.unique_count(size, field)
            assert abs(measured - paper) <= max(5, 0.05 * paper), (field, size, measured, paper)

    # The label method's storage argument: >35% reduction on every size
    # (the paper claims "more than 50%" counting only field storage; our
    # estimate also charges the per-rule label tuple, so the bar is lower).
    for size, reduction in result.storage_reductions.items():
        assert reduction > 0.35, (size, reduction)

    write_result("table2", table2.render(result))

"""Benchmark reproducing Fig. 4 — incremental rule insertion behaviour.

Benchmarks incremental installation of the acl1-1K workload and checks that
the label-table behaviour of Fig. 4 holds: for fields with heavy value reuse
(source port, protocol, the high IP segments) the overwhelming majority of
insertions take the cheap counter-only path, and the number of structural
insertions per dimension equals the number of unique field values.
"""

from __future__ import annotations

from conftest import write_result
from repro.core import ClassifierConfig, ConfigurableClassifier
from repro.experiments import fig4_update


def test_fig4_incremental_install_kernel(benchmark, acl1k_ruleset):
    """Kernel: incremental installation of the full acl1-1K rule set."""
    rules = acl1k_ruleset.rules()

    def install_all():
        classifier = ConfigurableClassifier(ClassifierConfig())
        for rule in rules:
            classifier.install_rule(rule)
        return classifier

    classifier = benchmark(install_all)
    assert classifier.installed_rules == len(rules)


def test_fig4_update_statistics(benchmark, acl1k_ruleset):
    """Regenerate the Fig. 4 statistics and check the counter-vs-structural split."""
    result = benchmark.pedantic(fig4_update.run, rounds=1, iterations=1)

    # Structural inserts per dimension == unique values of that dimension.
    stats = result.insert_statistics
    assert stats["src_port"]["structural_inserts"] == acl1k_ruleset.unique_field_values("src_port")
    assert stats["protocol"]["structural_inserts"] == acl1k_ruleset.unique_field_values("protocol")
    assert stats["dst_port"]["structural_inserts"] == acl1k_ruleset.unique_field_values("dst_port")

    # Fields with heavy reuse take the cheap path almost always.
    assert result.counter_only_fraction("src_port") > 0.99
    assert result.counter_only_fraction("protocol") > 0.99
    assert result.counter_only_fraction("src_ip_hi") > 0.9

    # Deleting a quarter of the rules must not free labels still referenced:
    # counter-only deletes dominate structural ones on every dimension.
    for dimension, values in stats.items():
        assert values["counter_only_deletes"] >= values["structural_deletes"], dimension

    write_result("fig4_update", fig4_update.render(result))

"""Benchmark reproducing Fig. 5 — MBT level-2 / BST memory sharing.

Regenerates the shared-memory map for both ``IPalg_s`` positions and checks
the claims behind it: the shared physical block has the same geometry under
either selection, only the selected view may access it, and the BST selection
reclaims the remaining MBT memory for roughly 4K extra rules (8K -> 12K).
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.experiments import fig5_memory_sharing
from repro.exceptions import MemoryModelError
from repro.hardware.memory_sharing import SharedMemoryBank, SharedView


def test_fig5_memory_sharing_report(benchmark):
    """Regenerate the Fig. 5 memory map and check the capacity reclaim."""
    result = benchmark.pedantic(fig5_memory_sharing.run, rounds=1, iterations=1)
    mbt_report = result.reports["mbt"]
    bst_report = result.reports["bst"]

    # Same physical geometry, different occupants.
    assert (mbt_report.depth, mbt_report.width) == (bst_report.depth, bst_report.width)
    assert mbt_report.active_view == "mbt_level2"
    assert bst_report.active_view == "bst_nodes"

    # Reclaim: no extra rule bits under MBT, ~400 Kbit under BST -> ~4K rules.
    assert mbt_report.reclaimed_bits == 0
    assert bst_report.reclaimed_bits == result.reclaimable_bits
    assert result.extra_rules_with_bst == pytest.approx(4000, rel=0.15)
    assert result.rule_capacities["bst"] > result.rule_capacities["mbt"]

    write_result("fig5_memory_sharing", fig5_memory_sharing.render(result))


def test_fig5_shared_bank_access_kernel(benchmark):
    """Kernel: write/read through the selected view of a shared bank."""
    bank = SharedMemoryBank(
        name="shared",
        depth=512,
        width=68,
        view_a=SharedView("mbt_level2", "MBT level 2"),
        view_b=SharedView("bst_nodes", "BST nodes"),
        reclaimable_bits=393216,
    )

    def exercise():
        for address in range(256):
            bank.write("mbt_level2", address, address)
        return sum(bank.read("mbt_level2", address) for address in range(256))

    total = benchmark(exercise)
    assert total == sum(range(256))
    # The unselected view must not be accessible.
    with pytest.raises(MemoryModelError):
        bank.read("bst_nodes", 0)

"""Ablation — multi-bit trie stride choice (DESIGN.md design-choice study).

The paper fixes the MBT level partition of a 16-bit segment at 5/5/6 bits.
This ablation sweeps alternative stride vectors and measures the trade-off
they control: fewer, wider levels reduce lookup latency but inflate the node
memory (more child pointers per node and heavier prefix expansion); more,
narrower levels do the opposite.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.analysis import format_table
from repro.core.dimensions import rule_dimension_specs
from repro.fields import MultibitTrie

STRIDE_CHOICES = {
    "4x4": (4, 4, 4, 4),
    "5-5-6 (paper)": (5, 5, 6),
    "8-8": (8, 8),
    "16 (flat)": (16,),
}


def _segment_prefixes(ruleset):
    """Unique (value, length) source-IP high-segment prefixes of a rule set."""
    prefixes = set()
    for rule in ruleset:
        prefixes.add(rule_dimension_specs(rule)["src_ip_hi"])
    return sorted(prefixes)


@pytest.mark.parametrize("name", sorted(STRIDE_CHOICES))
def test_ablation_stride_build_kernel(benchmark, name, acl1k_ruleset):
    """Trie construction kernel for one stride vector."""
    prefixes = _segment_prefixes(acl1k_ruleset)
    strides = STRIDE_CHOICES[name]

    def build():
        trie = MultibitTrie(width=16, strides=strides)
        for label, prefix in enumerate(prefixes):
            trie.insert(prefix, label, label)
        return trie

    trie = benchmark(build)
    assert trie.node_count() >= 1


def test_ablation_stride_tradeoff(benchmark, acl1k_ruleset, acl1k_trace):
    """Sweep stride vectors and check the latency/memory trade-off direction."""
    prefixes = _segment_prefixes(acl1k_ruleset)
    values = [packet.src_ip >> 16 for packet in acl1k_trace[:200]]

    def sweep():
        rows = []
        for name, strides in STRIDE_CHOICES.items():
            trie = MultibitTrie(width=16, strides=strides)
            for label, prefix in enumerate(prefixes):
                trie.insert(prefix, label, label)
            accesses = sum(trie.lookup(value).memory_accesses for value in values) / len(values)
            rows.append(
                {
                    "Strides": name,
                    "Levels": len(strides),
                    "Lookup cycles": trie.lookup_cycles,
                    "Avg memory accesses": accesses,
                    "Nodes": trie.node_count(),
                    "Memory Kbits": trie.memory_bits() / 1e3,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_name = {row["Strides"]: row for row in rows}

    # Latency scales with the level count...
    assert by_name["16 (flat)"]["Lookup cycles"] < by_name["5-5-6 (paper)"]["Lookup cycles"]
    assert by_name["5-5-6 (paper)"]["Lookup cycles"] < by_name["4x4"]["Lookup cycles"]
    # ...while the flat table pays for it with far more node memory.
    assert by_name["16 (flat)"]["Memory Kbits"] > by_name["5-5-6 (paper)"]["Memory Kbits"]

    write_result(
        "ablation_strides",
        format_table(rows, title="Ablation — MBT stride choice (src-IP high segment, acl1-1K)"),
    )

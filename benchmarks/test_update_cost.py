"""Benchmark reproducing section V.A — memory accesses / cycles for update.

Benchmarks the insert and delete kernels of the update engine and regenerates
the update-cost summary, checking the paper's fixed cost (two upload cycles +
one hash cycle per rule) and that the counter-only path stays cheap.
"""

from __future__ import annotations

from conftest import write_result
from repro.core import ClassifierConfig, ConfigurableClassifier
from repro.experiments import update_cost
from repro.experiments.update_cost import PAPER_UPLOAD_CYCLES


def test_update_insert_delete_kernel(benchmark, acl1k_ruleset):
    """Kernel: install 200 rules then delete them again."""
    rules = acl1k_ruleset.rules()[:200]

    def churn():
        classifier = ConfigurableClassifier(ClassifierConfig())
        for rule in rules:
            classifier.install_rule(rule)
        for rule in rules:
            classifier.remove_rule(rule.rule_id)
        return classifier

    classifier = benchmark(churn)
    assert classifier.installed_rules == 0


def test_update_cost_summary(benchmark):
    """Regenerate the V.A summary and check the paper's fixed per-rule cost."""
    result = benchmark.pedantic(update_cost.run, rounds=1, iterations=1)
    assert result.matches_paper_fixed_cost
    assert result.fixed_upload_cycles == PAPER_UPLOAD_CYCLES

    # Counter-only insertions: fixed cost + one counter bump per dimension (7),
    # i.e. an order of magnitude below any tree-rebuild approach.
    assert result.counter_only_insert_cycles <= PAPER_UPLOAD_CYCLES + 7
    # Inserts and deletes are symmetric in cost on this workload.
    assert result.delete_metrics.average_cycles < 2 * result.insert_metrics.average_cycles

    write_result("update_cost", update_cost.render(result))

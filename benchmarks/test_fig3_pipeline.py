"""Benchmark reproducing Fig. 3 — the four-phase lookup pipeline.

Benchmarks the pipeline simulation and checks the pipelining claims: with the
MBT phase latencies the architecture accepts one packet per cycle in steady
state while an individual packet sees the full multi-cycle latency.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.experiments import fig3_pipeline
from repro.hardware.pipeline import PipelineModel, PipelinePhase


def test_fig3_pipeline_simulation(benchmark):
    """Stream packets through the paper's pipeline and check its timing."""
    result = benchmark.pedantic(fig3_pipeline.run, kwargs={"packets": 16}, rounds=1, iterations=1)
    assert result.fully_pipelined
    assert result.initiation_interval == 1
    # dispatch 1 + field lookup 6 + label combination 1 + rule fetch 2.
    assert result.single_packet_latency == 10
    assert result.steady_state_cycles_per_packet == pytest.approx(1.0, abs=0.05)
    write_result("fig3_pipeline", fig3_pipeline.render(result))


def test_fig3_bst_phase_blocks_pipeline(benchmark):
    """With the iterative BST in phase 2 the initiation interval collapses to ~16."""
    phases = (
        PipelinePhase("dispatch", 1, pipelined=True),
        PipelinePhase("field_lookup", 16, pipelined=False),
        PipelinePhase("label_combination", 1, pipelined=True),
        PipelinePhase("rule_fetch", 2, pipelined=True),
    )

    def run_model():
        return PipelineModel(phases).throughput_cycles_per_packet(64)

    cycles_per_packet = benchmark(run_model)
    assert cycles_per_packet == pytest.approx(16.0, rel=0.05)

"""Throughput benchmark of the repro.perf batch fast path and scale-out layer.

The paper's headline is line-rate classification; the behavioural model's
bottleneck is pure-Python per-packet work.  This benchmark measures how far
the :mod:`repro.perf` memoizing fast path (plain and vectorized cold path)
and the :class:`ParallelSession` worker pools push software trace
throughput, and proves the acceptance criteria:

* **bit-identical classifications** from every accelerated path — plain fast
  path, vectorized fast path and the process pool — against both the
  per-packet path and the linear-search ground truth on a 10K-packet
  ClassBench trace;
* fast path **>= 3x** the per-packet throughput on cold caches;
* vectorized cold path **>= 2x** the plain fast path's cold pass.

The measured numbers are recorded in ``BENCH_throughput.json`` at the repo
root (uploaded as a CI artifact by the benchmark smoke job), including the
cold-path, process-pool and **update-under-load** (``update_churn``) rows —
the latter replays the trace with transactional control-plane commits
interleaved between segments, asserts bit-exactness afterwards and gates the
whole churn pass within ``CHURN_SLOWDOWN_CEILING`` of one cold pass with
zero wholesale flushes (dependency-scoped partial invalidation absorbing
every commit); ``update_depth`` records commit cost bucketed by dependency
depth.  The
flow-cache tier adds its own rows: ``flowcache_zipf`` (prewarmed exact-match
serving pass >= 3x over the uncached vectorized cold pass on a Zipf
flow-churn trace) and ``flowcache_sweep`` (hit rate x cache capacity).  Set
``REPRO_BENCH_QUICK=1`` to run a shortened trace (CI smoke mode:
equivalence still checked, wall-clock gates skipped).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.api import ClassificationSession, create_classifier
from repro.perf import ParallelSession, ReplicaSpec, shared_memory_available
from repro.rules.trace import generate_flow_churn_trace, generate_trace

#: Acceptance floor: fast-path cold-cache speedup over the per-packet path.
SPEEDUP_FLOOR = 3.0
#: Acceptance floor: vectorized cold pass speedup over the plain fast path's
#: cold pass (the PR 2 configuration).
VECTORIZED_FLOOR = 2.0
#: Acceptance ceiling: the update-under-load pass (32 transactional commits
#: interleaved with the trace) over the cold fast-path pass.  Dependency-aware
#: partial invalidation keeps commits from flushing the caches wholesale, so
#: churn costs a fraction of a cold pass instead of a multiple of one.
CHURN_SLOWDOWN_CEILING = 1.5

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

TRACE_SEED = 20140608

POOL_WORKERS = 4


def _trace_length() -> int:
    return 2000 if os.environ.get("REPRO_BENCH_QUICK") else 10000


def _timed(callable_, *args):
    start = time.perf_counter()
    result = callable_(*args)
    return result, time.perf_counter() - start


def test_fastpath_throughput_and_equivalence(acl1k_ruleset):
    """Fast paths: identical classifications at the accepted speedup floors."""
    count = _trace_length()
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    trace = generate_trace(acl1k_ruleset, count=count, seed=TRACE_SEED)
    classifier = create_classifier("configurable", acl1k_ruleset)

    baseline, baseline_s = _timed(classifier.classify_batch, trace)

    accelerator = classifier.enable_fast_path()
    fast_cold, fast_cold_s = _timed(classifier.classify_batch, trace)
    fast_warm, fast_warm_s = _timed(classifier.classify_batch, trace)

    vectorized_classifier = create_classifier(
        "configurable", acl1k_ruleset, vectorized=True
    )
    vec_cold, vec_cold_s = _timed(vectorized_classifier.classify_batch, trace)

    # Bit-exact equivalence with the per-packet path (the whole point) and
    # with the linear-search ground truth (the paper's oracle).
    assert list(fast_cold.results) == list(baseline.results)
    assert list(fast_warm.results) == list(baseline.results)
    assert list(vec_cold.results) == list(baseline.results)
    truth = [
        match.rule_id if (match := acl1k_ruleset.highest_priority_match(p)) else None
        for p in trace
    ]
    assert [result.rule_id for result in baseline] == truth
    assert [result.rule_id for result in vec_cold] == truth

    cold_speedup = baseline_s / fast_cold_s
    warm_speedup = baseline_s / fast_warm_s
    vectorized_speedup = fast_cold_s / vec_cold_s
    if not quick and cold_speedup < SPEEDUP_FLOOR:
        # Wall-clock gates are noise-sensitive on loaded/shared runners; the
        # typical cold-cache speedup (~5x) sits well above the floor, so one
        # clean re-measurement on freshly cleared caches separates a real
        # regression from a transient scheduler spike.
        accelerator.invalidate()
        retry, retry_s = _timed(classifier.classify_batch, trace)
        assert list(retry.results) == list(baseline.results)
        fast_cold_s = min(fast_cold_s, retry_s)
        cold_speedup = baseline_s / fast_cold_s
        vectorized_speedup = fast_cold_s / vec_cold_s
    if not quick and vectorized_speedup < VECTORIZED_FLOOR:
        vectorized_classifier._fast_path.invalidate()
        retry, retry_s = _timed(vectorized_classifier.classify_batch, trace)
        assert list(retry.results) == list(baseline.results)
        vec_cold_s = min(vec_cold_s, retry_s)
        vectorized_speedup = fast_cold_s / vec_cold_s
    if not quick:
        # The acceptance floors are defined over the full 10K-packet trace;
        # the CI smoke run (shorter trace, cold caches barely amortised)
        # checks equivalence and records the numbers without gating on them.
        assert cold_speedup >= SPEEDUP_FLOOR, (
            f"fast path cold-cache speedup {cold_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x acceptance floor"
        )
        assert vectorized_speedup >= VECTORIZED_FLOOR, (
            f"vectorized cold path speedup {vectorized_speedup:.2f}x over the "
            f"plain fast path is below the {VECTORIZED_FLOOR}x acceptance floor"
        )

    # Parallel deployment model on top of fast-path replicas: the thread
    # backend models the sharded deployment in-process; the process backend
    # classifies with real CPU parallelism (per-core speedup shows up when
    # the host actually has spare cores — cpu_count is recorded).
    spec = ReplicaSpec(
        "configurable", acl1k_ruleset, {"fast": True, "vectorized": True}
    )
    with ParallelSession.from_factory(
        spec, workers=POOL_WORKERS, chunk_size=512
    ) as pool:
        thread_stats, thread_s = _timed(pool.run, trace)
    assert thread_stats.packets == count

    # The process backend is measured once per chunk transport: "pickle"
    # ships object chunks, "packed" ships 104-bit header words through the
    # shared-memory ring (skipped where the platform grants no segments).
    transports = ["pickle"]
    if shared_memory_available():
        transports.insert(0, "packed")
    process_rows = {}
    for transport in transports:
        with ParallelSession.from_factory(
            spec, workers=POOL_WORKERS, chunk_size=512,
            backend="process", transport=transport,
        ) as pool:
            assert pool.transport == transport
            # stats() forces worker start (each process builds its replica),
            # so the measured run is steady-state dispatch, not pool bring-up.
            _, process_startup_s = _timed(pool.stats)
            process_stats, process_s = _timed(pool.run, trace)
            # Bit-exact classifications come back from the workers on both
            # transports.
            slice_size = min(count, 1000)
            pool_results = pool.feed(trace[:slice_size])
            assert list(pool_results.results) == list(baseline.results)[:slice_size]
        assert process_stats.packets == count
        process_rows[transport] = {
            "workers": POOL_WORKERS,
            "replicas": "fast+vectorized",
            "transport": transport,
            "startup_seconds": round(process_startup_s, 4),
            "seconds": round(process_s, 4),
            "packets_per_second": round(count / process_s),
            "speedup_vs_thread": round(thread_s / process_s, 2),
        }
    if "packed" in process_rows:
        process_rows["packed"]["speedup_vs_pickle"] = round(
            process_rows["pickle"]["seconds"] / process_rows["packed"]["seconds"], 2
        )
    if not quick and (os.cpu_count() or 1) > 1:
        # With real spare cores the process pool must at least match the
        # GIL-bound thread pool on its best transport.  Single-core runners
        # (and the quick smoke run) skip the gate: there the fork overhead
        # legitimately dominates and the row is recorded without asserting.
        best_pool_speedup = max(
            row["speedup_vs_thread"] for row in process_rows.values()
        )
        assert best_pool_speedup >= 1.0, (
            f"process pool best speedup over the thread pool is "
            f"{best_pool_speedup:.2f}x on a {os.cpu_count()}-core host"
        )

    single_stats = ClassificationSession(classifier, chunk_size=512).run(trace)
    assert thread_stats.matched == process_stats.matched == single_stats.matched

    # Update-under-load: replay the trace through a fast-path classifier with
    # a transactional remove+reinsert commit (2 control-plane ops) between
    # consecutive segments.  The rule set is identical before and after every
    # commit, so the classifications must still match the baseline bit-exactly
    # while the caches absorb one epoch invalidation per commit.
    churn_updates = 8 if quick else 32
    churn_classifier = create_classifier("configurable", acl1k_ruleset, fast=True)
    plane = churn_classifier.control
    churn_rules = acl1k_ruleset.rules()
    churn_runner = ClassificationSession(churn_classifier, chunk_size=512)
    segment = max(1, count // (churn_updates + 1))
    updates_applied = 0
    position = 0
    churn_start = time.perf_counter()
    for index in range(churn_updates + 1):
        end = position + segment if index < churn_updates else count
        churn_runner.run(trace[position:end])
        position = end
        if index < churn_updates:
            rule = churn_rules[index % len(churn_rules)]
            plane.begin().remove(rule.rule_id).insert(rule).commit()
            updates_applied += 1
    churn_s = time.perf_counter() - churn_start
    assert churn_runner.stats().packets == count
    assert plane.version == updates_applied
    slice_size = min(count, 1000)
    churn_check = churn_classifier.classify_batch(trace[:slice_size])
    assert [r.rule_id for r in churn_check] == [
        r.rule_id for r in list(baseline.results)[:slice_size]
    ]
    churn_stats = churn_classifier._fast_path.cache_stats()
    churn_slowdown = churn_s / fast_cold_s
    if not quick:
        # Every remove+reinsert commit must have been absorbed by the scoped
        # (blast-radius) drop path instead of a wholesale epoch flush, and
        # the whole churn pass must stay within the acceptance ceiling of
        # one cold pass.  Same wall-clock noise policy as the other gates:
        # one clean re-run separates a scheduler spike from a regression.
        assert churn_stats["scoped_commits"] >= updates_applied
        assert churn_stats["epoch_flushes"] == 0, churn_stats
        if churn_slowdown > CHURN_SLOWDOWN_CEILING:
            retry_runner = ClassificationSession(churn_classifier, chunk_size=512)
            position = 0
            retry_start = time.perf_counter()
            for index in range(churn_updates + 1):
                end = position + segment if index < churn_updates else count
                retry_runner.run(trace[position:end])
                position = end
                if index < churn_updates:
                    rule = churn_rules[index % len(churn_rules)]
                    plane.begin().remove(rule.rule_id).insert(rule).commit()
            churn_s = min(churn_s, time.perf_counter() - retry_start)
            churn_slowdown = churn_s / fast_cold_s
        assert churn_slowdown <= CHURN_SLOWDOWN_CEILING, (
            f"update-under-load pass is {churn_slowdown:.2f}x the cold "
            f"fast-path pass, above the {CHURN_SLOWDOWN_CEILING}x ceiling"
        )

    # Commit cost by dependency depth: the update_depth experiment driver on
    # the same nominal workload, recorded so the artifact shows commit
    # latency and entries dropped scaling with the rule's overlap pile.
    from repro.experiments import update_depth

    depth_result = update_depth.run(
        nominal_size=1000,
        buckets=3,
        samples_per_bucket=2 if quick else 3,
        warm_packets=500 if quick else 2000,
    )
    assert depth_result.wholesale_commits == 0, depth_result

    artifact = {
        "workload": {
            "ruleset": acl1k_ruleset.name,
            "rules": len(acl1k_ruleset),
            "trace_packets": count,
            "trace_seed": TRACE_SEED,
            "quick_mode": quick,
        },
        "per_packet_path": {
            "seconds": round(baseline_s, 4),
            "packets_per_second": round(count / baseline_s),
        },
        "fast_path_cold": {
            "seconds": round(fast_cold_s, 4),
            "packets_per_second": round(count / fast_cold_s),
            "speedup": round(cold_speedup, 2),
        },
        "fast_path_cold_vectorized": {
            "seconds": round(vec_cold_s, 4),
            "packets_per_second": round(count / vec_cold_s),
            "speedup_vs_per_packet": round(baseline_s / vec_cold_s, 2),
            "speedup_vs_fast_path_cold": round(vectorized_speedup, 2),
        },
        "fast_path_warm": {
            "seconds": round(fast_warm_s, 4),
            "packets_per_second": round(count / fast_warm_s),
            "speedup": round(warm_speedup, 2),
        },
        "parallel_session_thread": {
            "workers": POOL_WORKERS,
            "replicas": "fast+vectorized",
            "seconds": round(thread_s, 4),
            "packets_per_second": round(count / thread_s),
        },
        **{
            f"parallel_session_process_{transport}": row
            for transport, row in process_rows.items()
        },
        "update_churn": {
            "updates": updates_applied,
            "ops_per_update": 2,
            "seconds": round(churn_s, 4),
            "packets_per_second": round(count / churn_s),
            "updates_per_second": round(updates_applied / churn_s, 1),
            "slowdown_vs_fast_cold": round(churn_slowdown, 2),
            "slowdown_ceiling": CHURN_SLOWDOWN_CEILING,
            "scoped_commits": churn_stats["scoped_commits"],
            "wholesale_flushes": churn_stats["epoch_flushes"],
            "scoped_entries_dropped": churn_stats["scoped_entries_dropped"],
        },
        "update_depth": {
            "rules": depth_result.rules,
            "max_depth": depth_result.max_depth,
            "scoped_commits": depth_result.scoped_commits,
            "wholesale_flushes": depth_result.wholesale_commits,
            "buckets": [
                {
                    "depth": f"{row.depth_low}-{row.depth_high}",
                    "rules_sampled": row.rules_sampled,
                    "mean_commit_us": round(row.mean_commit_us, 1),
                    "mean_entries_dropped": round(row.mean_entries_dropped, 2),
                }
                for row in depth_result.rows
            ],
        },
        "cache_stats": vectorized_classifier._fast_path.cache_stats(),
        "equivalence": {
            "identical_to_per_packet": True,
            "identical_to_linear_search": True,
            "process_pool_identical": True,
            "identical_under_churn": True,
            "speedup_floor": SPEEDUP_FLOOR,
            "vectorized_floor": VECTORIZED_FLOOR,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")


#: Acceptance floor: prewarmed flow-cache serving pass over the uncached
#: vectorized cold pass on the Zipf churn workload.
FLOWCACHE_FLOOR = 3.0

#: Capacity sweep recorded as ``flowcache_sweep`` artifact rows.
FLOWCACHE_SWEEP = (64, 256, 1024, 4096)


def test_flowcache_throughput_and_equivalence(acl1k_ruleset):
    """Flow-cache tier: >= 3x over the uncached vectorized cold path on a
    Zipf flow-churn trace, bit-identical to the linear-search ground truth,
    plus a hit-rate x cache-size sweep."""
    count = _trace_length()
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    flows = 64 if quick else 256
    trace = generate_flow_churn_trace(
        acl1k_ruleset, count=count, seed=TRACE_SEED,
        flows=flows, popularity="zipf", churn=0.02,
    )

    truth = [
        match.rule_id if (match := acl1k_ruleset.highest_priority_match(p)) else None
        for p in trace
    ]

    # Uncached vectorized cold pass: the comparison baseline.
    uncached = create_classifier("configurable", acl1k_ruleset, vectorized=True)
    vec_cold, vec_cold_s = _timed(uncached.classify_batch, trace)
    assert [result.rule_id for result in vec_cold] == truth

    # Flow-cached vectorized classifier, prewarmed so the measured pass is
    # the steady serving state (every resident flow a hit).  Timeouts are
    # sized past the trace length: nothing expires mid-measurement.
    cached = create_classifier("configurable", acl1k_ruleset, vectorized=True)
    cache = cached.enable_flow_cache(
        capacity=max(FLOWCACHE_SWEEP), policy="idle",
        idle_timeout=4 * count, hard_timeout=8 * count,
    )
    cache.prewarm(trace, cached._classify_batch_uncached)
    flow_serving, flow_serving_s = _timed(cached.classify_batch, trace)
    assert list(flow_serving) == list(vec_cold.results)
    hit_rate = cache.stats()["hit_rate"]
    assert hit_rate > 0

    flow_speedup = vec_cold_s / flow_serving_s
    if not quick and flow_speedup < FLOWCACHE_FLOOR:
        # Same noise policy as the fast-path gates: one clean re-measurement
        # (entries are still resident) separates a scheduler spike from a
        # real regression.
        retry, retry_s = _timed(cached.classify_batch, trace)
        assert list(retry) == list(vec_cold.results)
        flow_serving_s = min(flow_serving_s, retry_s)
        flow_speedup = vec_cold_s / flow_serving_s
    if not quick:
        assert flow_speedup >= FLOWCACHE_FLOOR, (
            f"flow-cache serving speedup {flow_speedup:.2f}x over the "
            f"uncached vectorized cold pass is below the "
            f"{FLOWCACHE_FLOOR}x acceptance floor"
        )

    # Hit-rate x cache-size sweep: one vectorized classifier (its fast path
    # stays warm as the constant resolution backend), a fresh cold flow
    # cache per capacity, the trace replayed in 512-packet chunks.  Chunking
    # matters: flows repeated inside a single batch are served from the
    # pending-install set regardless of capacity, so only cross-batch reuse
    # exposes the capacity/hit-rate trade-off.
    sweep_chunk = 512
    sweep_rows = []
    for capacity in FLOWCACHE_SWEEP:
        sweep_cache = cached.enable_flow_cache(
            capacity=capacity, policy="idle",
            idle_timeout=4 * count, hard_timeout=8 * count,
        )
        sweep_results = []
        sweep_start = time.perf_counter()
        for offset in range(0, count, sweep_chunk):
            sweep_results.extend(
                cached.classify_batch(trace[offset : offset + sweep_chunk]).results
            )
        sweep_s = time.perf_counter() - sweep_start
        assert [result.rule_id for result in sweep_results] == truth
        stats = sweep_cache.stats()
        sweep_rows.append(
            {
                "capacity": capacity,
                "hit_rate": stats["hit_rate"],
                "entries": stats["entries"],
                "capacity_evictions": stats["capacity_evictions"],
                "seconds": round(sweep_s, 4),
                "packets_per_second": round(count / sweep_s),
            }
        )
    # More capacity never hurts: the sweep's hit rate is non-decreasing.
    rates = [row["hit_rate"] for row in sweep_rows]
    assert rates == sorted(rates)

    artifact = (
        json.loads(ARTIFACT_PATH.read_text(encoding="utf-8"))
        if ARTIFACT_PATH.exists()
        else {}
    )
    artifact["flowcache_zipf"] = {
        "flows": flows,
        "popularity": "zipf",
        "churn": 0.02,
        "policy": "idle",
        "capacity": max(FLOWCACHE_SWEEP),
        "hit_rate": hit_rate,
        "uncached_vectorized_seconds": round(vec_cold_s, 4),
        "serving_seconds": round(flow_serving_s, 4),
        "packets_per_second": round(count / flow_serving_s),
        "speedup_vs_vectorized_cold": round(flow_speedup, 2),
        "speedup_floor": FLOWCACHE_FLOOR,
        "identical_to_linear_search": True,
    }
    artifact["flowcache_sweep"] = sweep_rows
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")


#: Fabric churn geometry: the line-of-4 fabric every fabric battery row uses.
FABRIC_SWITCHES = 4


def test_fabric_churn_throughput(acl1k_ruleset):
    """Multi-switch fabric under control-plane churn: partitioned placement,
    per-switch hit accounting, and bit-exactness against a per-segment
    linear-search oracle while paired remove/reinsert fabric commits land
    between trace segments.  Recorded as the ``fabric_churn`` artifact row."""
    from repro.analysis.depindex import DependencyIndex
    from repro.controller.fabric import FabricController, Topology
    from repro.rules.trace import generate_fabric_trace

    count = _trace_length()
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    updates = 8 if quick else 32

    topology = Topology.line(FABRIC_SWITCHES)
    fabric = FabricController(topology, vectorized=True)
    fabric.install(acl1k_ruleset)
    plan = fabric.plan
    # The program is genuinely partitioned along the paths, not replicated.
    assert plan.k == topology.min_path_length > 1
    assert plan.max_switch_rules < len(acl1k_ruleset)
    assert plan.replication_factor < FABRIC_SWITCHES

    trace = generate_fabric_trace(
        acl1k_ruleset, topology.ingresses(), count, seed=TRACE_SEED,
        flows=64 if quick else 256, popularity="zipf", churn=0.02,
    )

    # Churn victims: singleton-overlap rules, so each remove/reinsert pair
    # moves exactly one rule on its host switches and never reshuffles the
    # fabric.  A remove and its reinsert are *separate* fabric commits —
    # folded into one transaction they would diff to a per-switch no-op.
    overlap_index = DependencyIndex(acl1k_ruleset.rules())
    by_id = {rule.rule_id: rule for rule in acl1k_ruleset.rules()}
    singles = [ids[0] for ids in overlap_index.components() if len(ids) == 1]
    victims = [by_id[rid] for rid in singles] or acl1k_ruleset.rules()
    victims = [victims[i % len(victims)] for i in range(updates // 2)]

    segment = max(1, count // (updates + 1))
    observed_matches_oracle = True
    per_switch_hits = {dpid: 0 for dpid in topology.switches}
    per_switch_lookups = {dpid: 0 for dpid in topology.switches}
    position = 0
    churn_start = time.perf_counter()
    segment_results = []
    for index in range(updates + 1):
        end = position + segment if index < updates else count
        result = fabric.serve(trace[position:end])
        segment_results.append((position, end, result))
        for dpid, stats in result.per_switch.items():
            per_switch_hits[dpid] += stats.hits
            per_switch_lookups[dpid] += stats.packets
        position = end
        if index < updates:
            victim = victims[index // 2]
            if index % 2 == 0:
                fabric.begin().remove(victim.rule_id).commit()
            else:
                fabric.begin().insert(victim).commit()
    fabric_s = time.perf_counter() - churn_start

    # Per-segment oracle: the linear scan over exactly the rules that were
    # installed while that segment was served (timed separately — the oracle
    # is O(rules x packets) and not part of the measured fabric pass).
    replay = dict(by_id)
    for index, (position, end, result) in enumerate(segment_results):
        ordered = sorted(replay.values(), key=lambda rule: (rule.priority, rule.rule_id))
        for packet, record in zip(trace[position:end], result.results):
            hit = next((rule for rule in ordered if rule.matches(packet.header)), None)
            if record.rule_id != (hit.rule_id if hit else None):
                observed_matches_oracle = False
        if index < updates:
            victim = victims[index // 2]
            if index % 2 == 0:
                del replay[victim.rule_id]
            else:
                replay[victim.rule_id] = victim
    assert observed_matches_oracle
    assert fabric.commits == 1 + updates
    assert fabric.rolled_back_commits == 0
    assert fabric.partial_commits == 0
    # Every hop lookup was accounted to exactly one switch.
    assert sum(per_switch_lookups.values()) == sum(
        len(topology.route_path(packet.ingress)) for packet in trace
    )
    assert all(per_switch_lookups[dpid] > 0 for dpid in topology.switches)

    artifact = (
        json.loads(ARTIFACT_PATH.read_text(encoding="utf-8"))
        if ARTIFACT_PATH.exists()
        else {}
    )
    artifact["fabric_churn"] = {
        "topology": topology.name,
        "switches": FABRIC_SWITCHES,
        "k": plan.k,
        "rules": len(acl1k_ruleset),
        "placement": {
            "total_rule_slots": plan.total_rule_slots,
            "replication_factor": round(plan.replication_factor, 2),
            "max_switch_rules": plan.max_switch_rules,
        },
        "packets": count,
        "updates": updates,
        "seconds": round(fabric_s, 4),
        "packets_per_second": round(count / fabric_s),
        "per_switch_hits": {str(dpid): hits for dpid, hits in per_switch_hits.items()},
        "identical_to_linear_search": observed_matches_oracle,
        "rolled_back_commits": fabric.rolled_back_commits,
        "partial_commits": fabric.partial_commits,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")


def test_pcap_replay_throughput(acl1k_ruleset, tmp_path):
    """Capture replay: the benchmark trace rendered to a classic pcap, then
    streamed back through the packed read path (zero ``PacketHeader``
    allocations) into the thread ParallelSession pool.  The capture round
    trip is bit-exact and a replayed slice classifies identically to the
    in-memory pass; recorded as the ``pcap_replay`` artifact row."""
    from repro.io.pcap import PcapStats, read_pcap, read_pcap_packed, write_pcap

    count = _trace_length()
    trace = generate_trace(acl1k_ruleset, count=count, seed=TRACE_SEED)
    path = tmp_path / "bench.pcap"
    written, write_s = _timed(
        lambda: write_pcap(str(path), trace, seed=TRACE_SEED)
    )
    assert written == count
    capture_bytes = path.stat().st_size

    # The capture is the identity on the trace: what the pool replays below
    # is the exact in-memory trace, so replayed classifications are the
    # in-memory classifications by construction.
    assert read_pcap(str(path), ports="word") == trace

    spec = ReplicaSpec(
        "configurable", acl1k_ruleset, {"fast": True, "vectorized": True}
    )
    stats = PcapStats()
    with ParallelSession.from_factory(
        spec, workers=POOL_WORKERS, chunk_size=512
    ) as pool:
        replay_stats, replay_s = _timed(
            pool.run, read_pcap_packed(str(path), chunk_size=512, ports="word", stats=stats)
        )
        # Direct spot check on top of the identity argument: a replayed
        # slice classifies bit-identically to the per-packet path.
        slice_size = min(count, 1000)
        baseline = create_classifier("configurable", acl1k_ruleset)
        fed = pool.feed(read_pcap_packed(str(path), chunk_size=512, ports="word"))
        assert [r.rule_id for r in list(fed.results)[:slice_size]] == [
            r.rule_id
            for r in baseline.classify_batch(trace[:slice_size]).results
        ]
    assert (stats.packets, stats.skipped, stats.truncated) == (count, 0, 0)
    assert replay_stats.packets == count

    artifact = (
        json.loads(ARTIFACT_PATH.read_text(encoding="utf-8"))
        if ARTIFACT_PATH.exists()
        else {}
    )
    artifact["pcap_replay"] = {
        "capture_bytes": capture_bytes,
        "packets": count,
        "ports": "word",
        "write_seconds": round(write_s, 4),
        "write_packets_per_second": round(count / write_s),
        "workers": POOL_WORKERS,
        "replicas": "fast+vectorized",
        "replay_seconds": round(replay_s, 4),
        "packets_per_second": round(count / replay_s),
        "roundtrip_bit_exact": True,
        "skipped_frames": stats.skipped,
        "truncated_frames": stats.truncated,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")

"""Throughput benchmark of the repro.perf batch fast path.

The paper's headline is line-rate classification; the behavioural model's
bottleneck is pure-Python per-packet work.  This benchmark measures how far
the :mod:`repro.perf` memoizing fast path and the :class:`ParallelSession`
worker pool push software trace throughput, and proves the acceptance
criterion of the fast path: **bit-identical classifications at >= 3x the
per-packet throughput on a 10K-packet ClassBench trace**.

The measured numbers are recorded in ``BENCH_throughput.json`` at the repo
root (uploaded as a CI artifact by the benchmark smoke job).  Set
``REPRO_BENCH_QUICK=1`` to run a shortened trace (CI smoke mode).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.api import ClassificationSession, create_classifier
from repro.perf import ParallelSession
from repro.rules.trace import generate_trace

#: Acceptance floor: fast-path speedup over the per-packet path.
SPEEDUP_FLOOR = 3.0

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

TRACE_SEED = 20140608


def _trace_length() -> int:
    return 2000 if os.environ.get("REPRO_BENCH_QUICK") else 10000


def _timed(callable_, *args):
    start = time.perf_counter()
    result = callable_(*args)
    return result, time.perf_counter() - start


def test_fastpath_throughput_and_equivalence(acl1k_ruleset):
    """Fast path: identical classifications, >= 3x per-packet throughput."""
    count = _trace_length()
    trace = generate_trace(acl1k_ruleset, count=count, seed=TRACE_SEED)
    classifier = create_classifier("configurable", acl1k_ruleset)

    baseline, baseline_s = _timed(classifier.classify_batch, trace)

    accelerator = classifier.enable_fast_path()
    fast_cold, fast_cold_s = _timed(classifier.classify_batch, trace)
    fast_warm, fast_warm_s = _timed(classifier.classify_batch, trace)

    # Bit-exact equivalence with the per-packet path (the whole point).
    assert list(fast_cold.results) == list(baseline.results)
    assert list(fast_warm.results) == list(baseline.results)

    cold_speedup = baseline_s / fast_cold_s
    warm_speedup = baseline_s / fast_warm_s
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    if not quick and cold_speedup < SPEEDUP_FLOOR:
        # Wall-clock gates are noise-sensitive on loaded/shared runners; the
        # typical cold-cache speedup (~5x) sits well above the floor, so one
        # clean re-measurement on freshly cleared caches separates a real
        # regression from a transient scheduler spike.
        accelerator.invalidate()
        retry, retry_s = _timed(classifier.classify_batch, trace)
        assert list(retry.results) == list(baseline.results)
        fast_cold_s = min(fast_cold_s, retry_s)
        cold_speedup = baseline_s / fast_cold_s
    if not quick:
        # The acceptance floor is defined over the full 10K-packet trace;
        # the CI smoke run (shorter trace, cold caches barely amortised)
        # checks equivalence and records the numbers without gating on it.
        assert cold_speedup >= SPEEDUP_FLOOR, (
            f"fast path cold-cache speedup {cold_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x acceptance floor"
        )

    # Parallel deployment model on top of fast-path replicas.
    workers = 4
    pool = ParallelSession.from_factory(
        lambda: create_classifier("configurable", acl1k_ruleset, fast=True),
        workers=workers,
        chunk_size=512,
    )
    pool_stats, pool_s = _timed(pool.run, trace)
    assert pool_stats.packets == count

    single_stats = ClassificationSession(classifier, chunk_size=512).run(trace)
    assert pool_stats.matched == single_stats.matched

    artifact = {
        "workload": {
            "ruleset": acl1k_ruleset.name,
            "rules": len(acl1k_ruleset),
            "trace_packets": count,
            "trace_seed": TRACE_SEED,
            "quick_mode": quick,
        },
        "per_packet_path": {
            "seconds": round(baseline_s, 4),
            "packets_per_second": round(count / baseline_s),
        },
        "fast_path_cold": {
            "seconds": round(fast_cold_s, 4),
            "packets_per_second": round(count / fast_cold_s),
            "speedup": round(cold_speedup, 2),
        },
        "fast_path_warm": {
            "seconds": round(fast_warm_s, 4),
            "packets_per_second": round(count / fast_warm_s),
            "speedup": round(warm_speedup, 2),
        },
        "parallel_session": {
            "workers": workers,
            "seconds": round(pool_s, 4),
            "packets_per_second": round(count / pool_s),
        },
        "cache_stats": accelerator.cache_stats(),
        "equivalence": {
            "identical_to_per_packet": True,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")

"""Benchmark reproducing Table V — FPGA synthesis estimate.

Measures the resource-model estimation and checks the calibrated estimate
against the paper's synthesis report: same Fmax, pins and memory utilisation
regime (a few percent of the device), ALM/register counts within 10%.
"""

from __future__ import annotations

from conftest import write_result
from repro.analysis.literature import TABLE_V_PAPER_VALUES
from repro.experiments import table5


def test_table5_synthesis_estimate(benchmark):
    """Regenerate the Table V estimate and compare it with the paper."""
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    estimate = result.estimate
    paper_alms, _ = TABLE_V_PAPER_VALUES["Logical Utilization"]
    paper_memory, device_memory = TABLE_V_PAPER_VALUES["Total block memory bits"]
    paper_registers = TABLE_V_PAPER_VALUES["Total registers"]
    paper_fmax = TABLE_V_PAPER_VALUES["Maximum Frequency MHz"]

    assert abs(estimate.logic_alms - paper_alms) / paper_alms < 0.10
    assert abs(estimate.block_memory_bits - paper_memory) / paper_memory < 0.10
    assert abs(estimate.registers - paper_registers) / paper_registers < 0.10
    assert abs(estimate.fmax_mhz - paper_fmax) < 1.0
    assert estimate.pins_used == TABLE_V_PAPER_VALUES["Total Number Pins"][0]
    assert estimate.block_memory_bits_available == device_memory

    # Section V.C: "the memory usage ... consumes 4% of total memory".
    assert 0.02 < estimate.memory_utilisation < 0.06

    write_result("table5", table5.render(result))

"""Shared fixtures for the benchmark harness.

Workloads are generated once per session (they are deterministic) and the
rendered reproduction tables are written to ``benchmarks/results/`` so that a
benchmark run leaves behind the same rows the paper reports, independent of
pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def acl1k_ruleset():
    """The acl1-1K workload shared by most benchmarks."""
    return workload_ruleset(FilterFlavor.ACL, 1000)


@pytest.fixture(scope="session")
def acl1k_trace():
    """A 500-packet trace over the acl1-1K workload."""
    return workload_trace(FilterFlavor.ACL, 1000, count=500)


@pytest.fixture(scope="session")
def acl5k_ruleset():
    """The acl1-5K workload used by the Table VI benchmark."""
    return workload_ruleset(FilterFlavor.ACL, 5000)


@pytest.fixture(scope="session")
def acl5k_trace():
    """A 300-packet trace over the acl1-5K workload."""
    return workload_trace(FilterFlavor.ACL, 5000, count=300)

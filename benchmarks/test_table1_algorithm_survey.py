"""Benchmark reproducing Table I — the lookup-algorithm survey.

One benchmark per algorithm row measures the per-packet classification kernel
of that algorithm on the acl1-1K workload; the summary benchmark regenerates
the full table (average memory accesses + memory space per algorithm) and
writes it to ``benchmarks/results/table1.txt``.

Shape assertions (the paper's qualitative claims, not its absolute numbers):

* RFC trades memory for speed — it needs far more memory than every other
  algorithm while keeping lookup accesses low;
* the decomposition/label methods (DCFL, Option 1/2) need dramatically less
  memory than RFC;
* every algorithm agrees with the linear-search ground truth (checked in the
  unit tests, not here).
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.api import create_classifier
from repro.experiments import table1

#: Registry names of the Table I algorithm rows (unified API sweep).
ALGORITHMS = tuple(table1.ALGORITHMS)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_table1_lookup_kernel(benchmark, name, acl1k_ruleset, acl1k_trace):
    """Per-algorithm classification kernel over the acl1-1K trace."""
    classifier = create_classifier(name, acl1k_ruleset)

    def classify_trace():
        return classifier.classify_batch(acl1k_trace)

    outcomes = benchmark(classify_trace)
    assert len(outcomes) == len(acl1k_trace)
    assert any(outcome.matched for outcome in outcomes)


def test_table1_full_table(benchmark):
    """Regenerate the whole Table I and check the paper's qualitative shape."""
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    rows = result.by_algorithm()

    # RFC pays the largest memory bill by a wide margin (paper: 31.48 Mb vs <7 Mb).
    rfc_memory = rows["RFC"].measured_memory_mbit
    for other in ("HyperCuts", "DCFL", "Option1", "Option2"):
        assert rfc_memory > 3 * rows[other].measured_memory_mbit

    # The decision tree and RFC keep average accesses bounded (tens, not hundreds).
    assert rows["HyperCuts"].measured_memory_accesses < 200
    assert rows["RFC"].measured_memory_accesses < 20

    write_result("table1", table1.render(result))

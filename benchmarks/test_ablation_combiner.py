"""Ablation — label combination modes (DESIGN.md design-choice study).

The paper's hardware resolves the HPMR from only the first label of each
field list (one Rule Filter probe); the reproduction defaults to a
cross-product resolution that probes every matching combination and is always
correct.  This ablation quantifies the trade-off on a real workload:

* probes per packet: FIRST_LABEL is constant (1), CROSS_PRODUCT grows with
  field-label overlap;
* accuracy against the linear-scan ground truth: CROSS_PRODUCT is exact,
  FIRST_LABEL is not for overlapping rule sets.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.analysis import format_table
from repro.core import ClassifierConfig, CombinerMode, ConfigurableClassifier, IpAlgorithm


@pytest.mark.parametrize("mode", [CombinerMode.CROSS_PRODUCT, CombinerMode.FIRST_LABEL])
def test_ablation_combiner_kernel(benchmark, mode, acl1k_ruleset, acl1k_trace):
    """Lookup kernel under each combiner mode."""
    config = ClassifierConfig(ip_algorithm=IpAlgorithm.MBT, combiner_mode=mode)
    classifier = ConfigurableClassifier.from_ruleset(acl1k_ruleset, config)
    packets = acl1k_trace[:100]

    results = benchmark(lambda: classifier.classify_batch(packets))
    assert len(results) == len(packets)


def test_ablation_combiner_accuracy_and_probes(benchmark, acl1k_ruleset, acl1k_trace):
    """Compare probes and ground-truth accuracy of the two combiner modes."""
    packets = acl1k_trace[:200]
    expected = [acl1k_ruleset.highest_priority_match(packet) for packet in packets]

    def evaluate():
        rows = []
        for mode in (CombinerMode.CROSS_PRODUCT, CombinerMode.FIRST_LABEL):
            config = ClassifierConfig(combiner_mode=mode)
            classifier = ConfigurableClassifier.from_ruleset(acl1k_ruleset, config)
            correct = 0
            probes = 0
            for packet, reference in zip(packets, expected):
                result = classifier.classify(packet)
                probes += result.combiner_probes
                got = result.rule_id
                want = reference.rule_id if reference else None
                if got == want:
                    correct += 1
            rows.append(
                {
                    "Combiner mode": mode.value,
                    "Exact-HPMR accuracy": correct / len(packets),
                    "Avg rule-filter probes": probes / len(packets),
                }
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    by_mode = {row["Combiner mode"]: row for row in rows}

    # Cross-product mode is exact; the paper's fast path trades accuracy on
    # overlapping synthetic rule sets for a single probe per packet.
    assert by_mode["cross_product"]["Exact-HPMR accuracy"] == 1.0
    assert by_mode["first_label"]["Avg rule-filter probes"] <= 1.0
    assert (
        by_mode["cross_product"]["Avg rule-filter probes"]
        > by_mode["first_label"]["Avg rule-filter probes"]
    )
    write_result(
        "ablation_combiner",
        format_table(rows, title="Ablation — label combiner modes (acl1-1K, 200 packets)"),
    )

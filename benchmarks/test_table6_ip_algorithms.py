"""Benchmark reproducing Table VI — MBT vs BST IP lookup configuration.

Benchmarks the lookup kernel of both ``IPalg_s`` positions on the acl1-5K
workload and regenerates the Table VI rows (cycles per packet, IP memory,
rule capacity, throughput), asserting the paper's qualitative claims: the MBT
is pipelined to one packet per cycle and roughly 16x faster, while the BST
needs roughly an order of magnitude less IP memory and stores ~50% more rules
in the same memory blocks.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.core import ClassifierConfig, ConfigurableClassifier, IpAlgorithm
from repro.experiments import table6


@pytest.mark.parametrize("algorithm", [IpAlgorithm.MBT, IpAlgorithm.BST])
def test_table6_lookup_kernel(benchmark, algorithm, acl1k_ruleset, acl1k_trace):
    """Classification kernel of one IP-algorithm configuration."""
    config = ClassifierConfig(ip_algorithm=algorithm)
    classifier = ConfigurableClassifier.from_ruleset(acl1k_ruleset, config)
    packets = acl1k_trace[:100]

    def classify():
        return classifier.classify_batch(packets)

    results = benchmark(classify)
    assert len(results) == len(packets)


def test_table6_configuration_comparison(benchmark):
    """Regenerate Table VI and check the MBT/BST trade-off shape."""
    result = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    mbt = result.row(IpAlgorithm.MBT)
    bst = result.row(IpAlgorithm.BST)

    # Pipeline occupancy: 1 cycle/packet for MBT, 16 for BST (Table VI).
    assert mbt.occupancy_cycles_per_packet == 1
    assert bst.occupancy_cycles_per_packet == 16

    # Throughput ratio follows directly: MBT ~16x faster.
    assert mbt.throughput_gbps / bst.throughput_gbps == pytest.approx(16.0, rel=0.01)
    assert mbt.throughput_gbps == pytest.approx(42.73, rel=0.01)
    assert bst.throughput_gbps == pytest.approx(2.67, rel=0.01)

    # Memory: the BST needs roughly an order of magnitude less IP memory.
    assert mbt.ip_memory_kbits > 5 * bst.ip_memory_kbits
    assert mbt.ip_memory_kbits == pytest.approx(543, rel=0.02)
    assert bst.ip_memory_kbits == pytest.approx(49, rel=0.02)

    # Capacity: the BST configuration stores strictly more rules (8K -> ~12K).
    assert bst.stored_rule_capacity > mbt.stored_rule_capacity
    assert mbt.stored_rule_capacity >= 8000
    assert bst.stored_rule_capacity >= 12000

    write_result("table6", table6.render(result))

"""Benchmark reproducing Table IV — port field labelling example.

Measures the port-register lookup kernel for the paper's worked example and
checks the produced label priority order (B, C, A for destination port 7812)
and the 2-cycle lookup cost.
"""

from __future__ import annotations

from conftest import write_result
from repro.experiments import table4
from repro.experiments.table4 import EXAMPLE_PORT, PAPER_LABEL_ORDER, PAPER_PORT_RULES
from repro.fields.port_registers import PortRegisterFile


def test_table4_port_lookup_kernel(benchmark):
    """Port register lookup kernel on the Table IV register contents."""
    registers = PortRegisterFile(name="dst_port_example", capacity=8)
    for index, (_, low, high) in enumerate(PAPER_PORT_RULES):
        registers.insert((low, high), label=index, priority=index)

    result = benchmark(registers.lookup, EXAMPLE_PORT)
    assert result.cycles == 2
    assert len(result.labels) == 3


def test_table4_label_order(benchmark):
    """Regenerate the Table IV example and check the B, C, A priority order."""
    result = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    assert result.label_order == PAPER_LABEL_ORDER
    assert result.matches_paper_order
    assert result.lookup_cycles == 2
    write_result("table4", table4.render(result))

"""Benchmark reproducing section V.B — per-field lookup latencies.

Benchmarks each single-field engine's lookup kernel and regenerates the
per-engine latency table, checking the cycle counts stated in the paper:
protocol 1, port 2, MBT 6 (pipelined), BST 16 (iterative), +1 label fetch,
+2 final cycles.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.experiments import lookup_latency
from repro.experiments.lookup_latency import PAPER_LATENCIES
from repro.fields import BinarySearchTree, MultibitTrie, PortRegisterFile, ProtocolTable


def _loaded_engine(kind: str):
    if kind == "protocol":
        engine = ProtocolTable()
        engine.insert((False, 6), label=0, priority=0)
        engine.insert((True, 0), label=1, priority=5)
        return engine, 6
    if kind == "port":
        engine = PortRegisterFile()
        for index, spec in enumerate(((0, 65535), (80, 80), (1024, 2048))):
            engine.insert(spec, label=index, priority=index)
        return engine, 80
    if kind == "mbt":
        engine = MultibitTrie()
    else:
        engine = BinarySearchTree()
    for index, spec in enumerate(((0x0A00, 16), (0x0A00, 8), (0, 0), (0x1234, 16))):
        engine.insert(spec, label=index, priority=index)
    return engine, 0x0A00


@pytest.mark.parametrize("kind", ["protocol", "port", "mbt", "bst"])
def test_field_engine_lookup_kernel(benchmark, kind):
    """Per-engine lookup kernel with the paper's configured latency."""
    engine, value = _loaded_engine(kind)
    result = benchmark(engine.lookup, value)
    assert result.matched
    assert engine.lookup_cycles == PAPER_LATENCIES[kind]


def test_lookup_latency_summary(benchmark):
    """Regenerate the V.B latency table and check every configured latency."""
    result = benchmark.pedantic(lookup_latency.run, rounds=1, iterations=1)
    for engine in ("protocol", "port", "mbt", "bst", "label_fetch", "final"):
        assert result.row(engine).configured_cycles == PAPER_LATENCIES[engine], engine
    # End-to-end latency: the MBT pipeline is strictly shorter than the BST's.
    assert result.end_to_end_mbt_cycles < result.end_to_end_bst_cycles
    write_result("lookup_latency", lookup_latency.render(result))

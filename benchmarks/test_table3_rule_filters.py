"""Benchmark reproducing Table III — rule counts of the ACL/FW/IPC filters.

Measures the synthetic generation of all nine workloads and checks that the
realised rule counts equal the paper's (the generator targets them exactly at
the nominal 1K/5K/10K sizes).
"""

from __future__ import annotations

from conftest import write_result
from repro.experiments import table3
from repro.rules.classbench import FilterFlavor, PAPER_RULE_COUNTS


def test_table3_rule_filter_sizes(benchmark):
    """Regenerate all nine filter sets and compare counts with the paper."""
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    for flavor in FilterFlavor:
        for size in result.sizes:
            assert result.count(flavor, size) == PAPER_RULE_COUNTS[(flavor, size)]
    write_result("table3", table3.render(result))

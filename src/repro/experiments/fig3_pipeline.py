"""Fig. 3 — lookup process pipelining.

The paper's Fig. 3 shows the four lookup phases (dispatch, parallel field
lookup, label combination, rule fetch) overlapping across consecutive packets.
This driver streams a short burst of packets through the
:class:`~repro.hardware.pipeline.PipelineModel` with the paper's phase
latencies, renders the space-time occupancy diagram and reports the
steady-state initiation interval — which must be one packet per cycle for the
fully pipelined MBT configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.pipeline import PAPER_PHASES, PipelineModel, PipelinePhase, PipelineTrace

__all__ = ["Fig3Result", "run", "render"]


@dataclass(frozen=True)
class Fig3Result:
    """Pipeline trace plus its headline timing numbers."""

    packets: int
    trace: PipelineTrace
    single_packet_latency: int
    steady_state_cycles_per_packet: float
    initiation_interval: int

    @property
    def fully_pipelined(self) -> bool:
        """True when a new packet can be accepted every cycle."""
        return self.initiation_interval == 1


def run(packets: int = 8, phases: Sequence[PipelinePhase] = PAPER_PHASES) -> Fig3Result:
    """Stream ``packets`` back-to-back packets through the four-phase pipeline."""
    model = PipelineModel(phases)
    trace = model.run(packets)
    return Fig3Result(
        packets=packets,
        trace=trace,
        single_packet_latency=model.total_latency,
        steady_state_cycles_per_packet=model.throughput_cycles_per_packet(max(packets, 32)),
        initiation_interval=model.initiation_interval,
    )


def render(result: Fig3Result) -> str:
    """Render the occupancy diagram and the timing summary."""
    diagram = result.trace.occupancy_diagram(max_packets=result.packets)
    lines = [
        "Fig. 3 — lookup process pipelining (D=dispatch, F=field lookup, "
        "L=label combination, R=rule fetch)",
        diagram,
        f"Single-packet latency : {result.single_packet_latency} cycles",
        f"Initiation interval   : {result.initiation_interval} cycle(s) per packet",
        f"Steady-state rate     : {result.steady_state_cycles_per_packet:.2f} cycles per packet",
    ]
    return "\n".join(lines)

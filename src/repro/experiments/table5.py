"""Table V — synthesis result on the Altera Stratix V device.

Real synthesis obviously cannot run here; the driver instantiates the full
architecture (both IP algorithms' memories, label memories, rule filter),
feeds its provisioned memory inventory and logic inventory to the calibrated
FPGA resource model and reports the estimated utilisation next to the numbers
printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.literature import TABLE_V_PAPER_VALUES
from repro.analysis.reports import format_table
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.hardware.fpga_model import FpgaResourceModel, LogicInventory, SynthesisEstimate

__all__ = ["Table5Result", "run", "render"]


@dataclass(frozen=True)
class Table5Result:
    """Estimated synthesis results plus the paper's figures."""

    estimate: SynthesisEstimate
    paper: Dict[str, object]

    @property
    def memory_utilisation_percent(self) -> float:
        """Estimated block-memory utilisation (the paper quotes ~4%)."""
        return self.estimate.memory_utilisation * 100.0


def run(config: ClassifierConfig = None) -> Table5Result:
    """Instantiate the architecture and estimate its synthesis footprint.

    The synthesised design contains *both* IP algorithms (the point of the
    memory sharing of Fig. 5), so the provisioned memory is the MBT
    configuration's inventory — the BST occupies the shared level-2-sized
    block and adds no memory of its own.
    """
    config = config or ClassifierConfig(ip_algorithm=IpAlgorithm.MBT)
    classifier = ConfigurableClassifier(config)
    bank = classifier.provisioned_memory_bank()
    model = FpgaResourceModel()
    estimate = model.estimate(bank, LogicInventory(), target_fmax_mhz=config.clock_mhz)
    return Table5Result(estimate=estimate, paper=dict(TABLE_V_PAPER_VALUES))


def render(result: Table5Result) -> str:
    """Render estimated-vs-paper synthesis rows."""
    paper = result.paper
    est = result.estimate
    rows = [
        {
            "Metric": "Logical Utilization (ALMs)",
            "Estimated": f"{est.logic_alms:,} / {est.logic_alms_available:,}",
            "Paper": f"{paper['Logical Utilization'][0]:,} / {paper['Logical Utilization'][1]:,}",
        },
        {
            "Metric": "Total block memory bits",
            "Estimated": f"{est.block_memory_bits:,} / {est.block_memory_bits_available:,}",
            "Paper": f"{paper['Total block memory bits'][0]:,} / {paper['Total block memory bits'][1]:,}",
        },
        {
            "Metric": "Total registers",
            "Estimated": f"{est.registers:,}",
            "Paper": f"{paper['Total registers']:,}",
        },
        {
            "Metric": "Maximum Frequency",
            "Estimated": f"{est.fmax_mhz:.2f} MHz",
            "Paper": f"{paper['Maximum Frequency MHz']:.2f} MHz",
        },
        {
            "Metric": "Total Number Pins",
            "Estimated": f"{est.pins_used} / {est.pins_available}",
            "Paper": f"{paper['Total Number Pins'][0]} / {paper['Total Number Pins'][1]}",
        },
    ]
    return format_table(
        rows, title="Table V — synthesis result on Altera Stratix V (5SGXMB6R3F43C4)"
    )

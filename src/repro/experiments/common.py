"""Shared workload construction for the experiment drivers.

Every experiment works from the same synthetic ClassBench-style workloads;
this module centralises their construction (and caches them, because several
benchmarks share the acl1-10K set and regenerating it repeatedly would
dominate benchmark time rather than the measured system).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.rules.classbench import ClassBenchGenerator, FilterFlavor
from repro.rules.ruleset import RuleSet
from repro.rules.trace import generate_trace
from repro.rules.packet import PacketHeader

__all__ = ["workload_ruleset", "workload_trace", "DEFAULT_SEED", "DEFAULT_TRACE_SEED"]

#: Seed used by every experiment unless overridden, for reproducibility.
DEFAULT_SEED = 2014
DEFAULT_TRACE_SEED = 353  # the paper's page number, for no deeper reason


@lru_cache(maxsize=32)
def workload_ruleset(
    flavor: FilterFlavor = FilterFlavor.ACL,
    nominal_size: int = 10000,
    seed: int = DEFAULT_SEED,
) -> RuleSet:
    """Return (and cache) the synthetic rule set for one experiment workload."""
    return ClassBenchGenerator(flavor=flavor, seed=seed).generate(nominal_size)


@lru_cache(maxsize=32)
def _cached_trace(
    flavor: FilterFlavor, nominal_size: int, seed: int, count: int, trace_seed: int, hit_ratio: float
) -> Tuple[PacketHeader, ...]:
    ruleset = workload_ruleset(flavor, nominal_size, seed)
    return tuple(generate_trace(ruleset, count=count, seed=trace_seed, hit_ratio=hit_ratio))


def workload_trace(
    flavor: FilterFlavor = FilterFlavor.ACL,
    nominal_size: int = 10000,
    count: int = 500,
    seed: int = DEFAULT_SEED,
    trace_seed: int = DEFAULT_TRACE_SEED,
    hit_ratio: float = 0.9,
) -> List[PacketHeader]:
    """Return (and cache) a packet trace derived from a workload rule set."""
    return list(_cached_trace(flavor, nominal_size, seed, count, trace_seed, hit_ratio))

"""Table I — performance evaluation of lookup algorithms.

The paper's Table I (taken from the authors' earlier comparison study [17])
reports, for five classification algorithms, the average number of memory
accesses per lookup and the memory space in Mbit.  This driver rebuilds the
same comparison from our own implementations — swept entirely through the
unified :mod:`repro.api` registry (``create_classifier`` + ``classify_batch``),
so adding an algorithm to the survey is a registry entry, not new glue —
evaluated on an ACL-flavoured workload, with the paper's quoted numbers
carried alongside for reference.

Absolute values depend strongly on the (unpublished) access-counting
methodology of [17]; EXPERIMENTS.md discusses which ordering relations are and
are not preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.literature import TABLE_I_PAPER_VALUES
from repro.analysis.reports import format_table
from repro.api import create_classifier
from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor

__all__ = ["Table1Row", "Table1Result", "run", "render", "ALGORITHMS"]

#: The algorithms of Table I, in the paper's row order:
#: registry name -> display name (the key into the paper's quoted values).
ALGORITHMS: Dict[str, str] = {
    "hypercuts": "HyperCuts",
    "rfc": "RFC",
    "dcfl": "DCFL",
    "option1": "Option1",
    "option2": "Option2",
}


@dataclass(frozen=True)
class Table1Row:
    """One algorithm's measured and paper-quoted Table I values."""

    algorithm: str
    measured_memory_accesses: float
    measured_memory_mbit: float
    paper_memory_accesses: Optional[float]
    paper_memory_mbit: Optional[float]


@dataclass(frozen=True)
class Table1Result:
    """Full Table I reproduction."""

    workload: str
    rules: int
    packets: int
    rows: List[Table1Row]

    def by_algorithm(self) -> Dict[str, Table1Row]:
        """Rows keyed by algorithm name."""
        return {row.algorithm: row for row in self.rows}


def run(
    nominal_size: int = 1000,
    trace_length: int = 500,
    flavor: FilterFlavor = FilterFlavor.ACL,
) -> Table1Result:
    """Build every Table I algorithm via the registry and measure it.

    The default workload is the 1K ACL set: the RFC cross-product tables make
    the 10K build two orders of magnitude slower without changing the
    qualitative ordering, so the smaller set is the benchmark default and the
    larger one remains available through ``nominal_size``.
    """
    ruleset = workload_ruleset(flavor, nominal_size)
    trace = workload_trace(flavor, nominal_size, count=trace_length)
    rows: List[Table1Row] = []
    for name, display in ALGORITHMS.items():
        classifier = create_classifier(name, ruleset)
        batch = classifier.classify_batch(trace)
        paper = TABLE_I_PAPER_VALUES.get(display)
        rows.append(
            Table1Row(
                algorithm=display,
                measured_memory_accesses=batch.average_memory_accesses,
                measured_memory_mbit=classifier.memory_bits() / 1e6,
                paper_memory_accesses=paper.lookup_memory_accesses if paper else None,
                paper_memory_mbit=paper.memory_mbit if paper else None,
            )
        )
    return Table1Result(
        workload=ruleset.name, rules=len(ruleset), packets=len(trace), rows=rows
    )


def render(result: Table1Result) -> str:
    """Render the reproduction next to the paper's quoted values."""
    rows = [
        {
            "Algorithm": row.algorithm,
            "Avg. memory accesses (measured)": row.measured_memory_accesses,
            "Memory space Mb (measured)": row.measured_memory_mbit,
            "Avg. memory accesses (paper)": row.paper_memory_accesses,
            "Memory space Mb (paper)": row.paper_memory_mbit,
        }
        for row in result.rows
    ]
    title = (
        f"Table I — algorithm survey on {result.workload} "
        f"({result.rules} rules, {result.packets} packets)"
    )
    return format_table(rows, title=title)

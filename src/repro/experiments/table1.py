"""Table I — performance evaluation of lookup algorithms.

The paper's Table I (taken from the authors' earlier comparison study [17])
reports, for five classification algorithms, the average number of memory
accesses per lookup and the memory space in Mbit.  This driver rebuilds the
same comparison from our own implementations: HyperCuts, RFC, DCFL and the
two single-field "Option" combinations, evaluated on an ACL-flavoured
workload, with the paper's quoted numbers carried alongside for reference.

Absolute values depend strongly on the (unpublished) access-counting
methodology of [17]; EXPERIMENTS.md discusses which ordering relations are and
are not preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.analysis.literature import TABLE_I_PAPER_VALUES
from repro.analysis.reports import format_table
from repro.baselines.base import BaselineClassifier, BaselineEvaluation, evaluate_baseline
from repro.baselines.dcfl import DcflClassifier
from repro.baselines.hypercuts import HyperCutsClassifier
from repro.baselines.options import Option1Classifier, Option2Classifier
from repro.baselines.rfc import RfcClassifier
from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor

__all__ = ["Table1Row", "Table1Result", "run", "render"]

#: The algorithms of Table I, in the paper's row order.
ALGORITHMS: Dict[str, Type[BaselineClassifier]] = {
    "HyperCuts": HyperCutsClassifier,
    "RFC": RfcClassifier,
    "DCFL": DcflClassifier,
    "Option1": Option1Classifier,
    "Option2": Option2Classifier,
}


@dataclass(frozen=True)
class Table1Row:
    """One algorithm's measured and paper-quoted Table I values."""

    algorithm: str
    measured_memory_accesses: float
    measured_memory_mbit: float
    paper_memory_accesses: Optional[float]
    paper_memory_mbit: Optional[float]


@dataclass(frozen=True)
class Table1Result:
    """Full Table I reproduction."""

    workload: str
    rules: int
    packets: int
    rows: List[Table1Row]

    def by_algorithm(self) -> Dict[str, Table1Row]:
        """Rows keyed by algorithm name."""
        return {row.algorithm: row for row in self.rows}


def run(
    nominal_size: int = 1000,
    trace_length: int = 500,
    flavor: FilterFlavor = FilterFlavor.ACL,
) -> Table1Result:
    """Build every Table I algorithm on the workload and measure it.

    The default workload is the 1K ACL set: the RFC cross-product tables make
    the 10K build two orders of magnitude slower without changing the
    qualitative ordering, so the smaller set is the benchmark default and the
    larger one remains available through ``nominal_size``.
    """
    ruleset = workload_ruleset(flavor, nominal_size)
    trace = workload_trace(flavor, nominal_size, count=trace_length)
    rows: List[Table1Row] = []
    for name, classifier_type in ALGORITHMS.items():
        classifier = classifier_type(ruleset)
        evaluation: BaselineEvaluation = evaluate_baseline(classifier, trace)
        paper = TABLE_I_PAPER_VALUES.get(name)
        rows.append(
            Table1Row(
                algorithm=name,
                measured_memory_accesses=evaluation.average_memory_accesses,
                measured_memory_mbit=evaluation.memory_megabits,
                paper_memory_accesses=paper.lookup_memory_accesses if paper else None,
                paper_memory_mbit=paper.memory_mbit if paper else None,
            )
        )
    return Table1Result(
        workload=ruleset.name, rules=len(ruleset), packets=len(trace), rows=rows
    )


def render(result: Table1Result) -> str:
    """Render the reproduction next to the paper's quoted values."""
    rows = [
        {
            "Algorithm": row.algorithm,
            "Avg. memory accesses (measured)": row.measured_memory_accesses,
            "Memory space Mb (measured)": row.measured_memory_mbit,
            "Avg. memory accesses (paper)": row.paper_memory_accesses,
            "Memory space Mb (paper)": row.paper_memory_mbit,
        }
        for row in result.rows
    ]
    title = (
        f"Table I — algorithm survey on {result.workload} "
        f"({result.rules} rules, {result.packets} packets)"
    )
    return format_table(rows, title=title)

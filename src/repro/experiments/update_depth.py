"""Commit cost versus dependency depth under the scoped-invalidation fast path.

A rule's *dependency depth* (:meth:`~repro.analysis.depindex.DependencyIndex.
dependency_depth`) is the number of higher-priority rules overlapping it.
With dependency-aware partial invalidation the cost of committing a
remove+reinsert of a rule should track that depth — a rule overlapping
nothing perturbs almost no memoized state, while a rule underneath a deep
overlap pile forces wider drops — instead of every commit paying the flat
wholesale-flush penalty.

The driver builds the fast-path classifier over a ClassBench workload, warms
its caches with a trace, buckets the installed rules by dependency depth,
and times one churn transaction (remove + reinsert through the transactional
control plane) per sampled rule, re-warming between samples so every commit
hits equally warm caches.  Reported per bucket: mean commit latency and mean
scoped cache entries dropped; the fast path's scoped-commit counters confirm
no commit fell back to a wholesale flush.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.depindex import DependencyIndex
from repro.analysis.reports import format_kv, format_table
from repro.api import ClassificationSession, create_classifier
from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor

__all__ = ["DepthBucketRow", "UpdateDepthResult", "run", "render"]


@dataclass(frozen=True)
class DepthBucketRow:
    """Aggregated commit cost for one dependency-depth bucket."""

    depth_low: int
    depth_high: int
    rules_sampled: int
    mean_commit_us: float
    mean_entries_dropped: float


@dataclass(frozen=True)
class UpdateDepthResult:
    """Commit cost by dependency depth for one workload."""

    workload: str
    rules: int
    warm_packets: int
    rows: Tuple[DepthBucketRow, ...]
    scoped_commits: int
    wholesale_commits: int
    max_depth: int


def _depth_buckets(depths: List[int], buckets: int) -> List[Tuple[int, int]]:
    """Split the observed depth range into contiguous inclusive buckets."""
    low, high = min(depths), max(depths)
    if high == low:
        return [(low, high)]
    edges = [low + (high - low) * i // buckets for i in range(buckets)] + [high + 1]
    return [
        (edges[i], edges[i + 1] - 1)
        for i in range(len(edges) - 1)
        if edges[i] < edges[i + 1]
    ]


def run(
    nominal_size: int = 1000,
    flavor: FilterFlavor = FilterFlavor.ACL,
    buckets: int = 4,
    samples_per_bucket: int = 4,
    warm_packets: int = 2000,
    seed: int = 20140808,
) -> UpdateDepthResult:
    """Measure churn-commit cost per dependency-depth bucket."""
    ruleset = workload_ruleset(flavor, nominal_size)
    trace = workload_trace(flavor, nominal_size, count=warm_packets)
    classifier = create_classifier("configurable", ruleset, fast=True)
    session = ClassificationSession(classifier, chunk_size=512)
    plane = classifier.control
    fast_path = classifier._fast_path

    index = DependencyIndex(ruleset.rules())
    depths = {rule.rule_id: index.dependency_depth(rule.rule_id) for rule in ruleset}
    rng = random.Random(seed)
    rows: List[DepthBucketRow] = []
    for depth_low, depth_high in _depth_buckets(list(depths.values()), buckets):
        member_ids = [rid for rid, depth in depths.items() if depth_low <= depth <= depth_high]
        sampled = rng.sample(member_ids, min(samples_per_bucket, len(member_ids)))
        commit_seconds = []
        entries_dropped = []
        for rule_id in sampled:
            rule = ruleset.get(rule_id)
            session.run(trace)  # equally warm caches before every commit
            dropped_before = fast_path.scoped_entries_dropped
            start = time.perf_counter()
            plane.begin().remove(rule_id).insert(rule).commit()
            commit_seconds.append(time.perf_counter() - start)
            entries_dropped.append(fast_path.scoped_entries_dropped - dropped_before)
        rows.append(
            DepthBucketRow(
                depth_low=depth_low,
                depth_high=depth_high,
                rules_sampled=len(sampled),
                mean_commit_us=1e6 * sum(commit_seconds) / len(commit_seconds),
                mean_entries_dropped=sum(entries_dropped) / len(entries_dropped),
            )
        )
    stats = fast_path.cache_stats()
    return UpdateDepthResult(
        workload=ruleset.name,
        rules=len(ruleset),
        warm_packets=len(trace),
        rows=tuple(rows),
        scoped_commits=stats["scoped_commits"],
        wholesale_commits=stats["epoch_flushes"],
        max_depth=max(depths.values()),
    )


def render(result: UpdateDepthResult) -> str:
    """Render the depth-bucketed commit cost table."""
    header = format_kv(
        {
            "Workload": f"{result.workload} ({result.rules} rules)",
            "Warm trace": f"{result.warm_packets} packets before each commit",
            "Max dependency depth": result.max_depth,
            "Scoped commits": result.scoped_commits,
            "Wholesale flushes": result.wholesale_commits,
        },
        title="Commit cost vs dependency depth",
    )
    rows = [
        {
            "Depth": f"{row.depth_low}-{row.depth_high}",
            "Rules sampled": row.rules_sampled,
            "Mean commit us": row.mean_commit_us,
            "Mean entries dropped": row.mean_entries_dropped,
        }
        for row in result.rows
    ]
    return header + "\n\n" + format_table(rows, title="Per-bucket churn commit cost")

"""Fig. 5 — memory sharing between the MBT level-2 memory and the BST memory.

The shared physical block holds MBT level-2 nodes ("Data 1") when ``IPalg_s``
selects the multi-bit trie, or BST nodes ("Data 2") when it selects the binary
search tree; in the latter case the remaining MBT memory is reclaimed for
extra rule storage ("Data 3").  This driver switches one classifier between
the two selections and reports the memory map and the resulting rule capacity
for both, which is exactly the information Fig. 5 conveys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reports import format_table
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.hardware.memory_sharing import MemorySharingReport

__all__ = ["Fig5Result", "run", "render"]


@dataclass(frozen=True)
class Fig5Result:
    """Sharing reports and capacities for both ``IPalg_s`` positions."""

    reports: Dict[str, MemorySharingReport]
    rule_capacities: Dict[str, int]
    reclaimable_bits: int

    @property
    def extra_rules_with_bst(self) -> int:
        """Additional rules the BST selection can store thanks to the reclaim."""
        return self.rule_capacities["bst"] - self.rule_capacities["mbt"]


def run(config: ClassifierConfig = None) -> Fig5Result:
    """Instantiate both selections and collect their sharing reports."""
    base = config or ClassifierConfig()
    reports: Dict[str, MemorySharingReport] = {}
    capacities: Dict[str, int] = {}
    for algorithm in (IpAlgorithm.MBT, IpAlgorithm.BST):
        classifier = ConfigurableClassifier(base.with_ip_algorithm(algorithm))
        reports[algorithm.value] = classifier.shared_memory.report()
        capacities[algorithm.value] = classifier.config.rule_capacity()
    return Fig5Result(
        reports=reports,
        rule_capacities=capacities,
        reclaimable_bits=base.provisioning.reclaimable_bits(),
    )


def render(result: Fig5Result) -> str:
    """Render the memory map for both selections."""
    rows: List[Dict[str, object]] = []
    for name, report in result.reports.items():
        rows.append(
            {
                "IPalg_s selection": name.upper(),
                "Active view": report.active_view,
                "Shared block geometry": f"{report.depth} x {report.width} bits",
                "Reclaimed rule bits": report.reclaimed_bits,
                "Rule capacity": result.rule_capacities[name],
            }
        )
    table = format_table(rows, title="Fig. 5 — memory sharing between MBT level-2 and BST memories")
    return (
        f"{table}\n"
        f"Reclaimable MBT memory: {result.reclaimable_bits:,} bits -> "
        f"{result.extra_rules_with_bst:,} extra rules with the BST selection"
    )

"""Table IV — example of port field rules and labelling.

Reproduces the worked example of section IV.C: three destination-port rules
(the full wildcard, the exact value 7812 and the range 7810-7820) stored in
the port register file, each tagged with a unique label, and the label
priority order produced for an incoming packet with destination port 7812 —
which must come out as B (exact), C (tightest range), A (widest range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reports import format_table
from repro.fields.port_registers import PortRegisterFile

__all__ = ["Table4Result", "run", "render", "PAPER_PORT_RULES"]

#: The three port specifications of Table IV with their paper labels.
PAPER_PORT_RULES: Tuple[Tuple[str, int, int], ...] = (
    ("A", 0, 65355),      # [65355 - 0] range matching (the value printed in the paper)
    ("B", 7812, 7812),    # [7812 - 7812] exact matching
    ("C", 7810, 7820),    # [7820 - 7810] range matching
)

#: The lookup value and expected label order the paper walks through.
EXAMPLE_PORT = 7812
PAPER_LABEL_ORDER: Tuple[str, ...] = ("B", "C", "A")


@dataclass(frozen=True)
class Table4Result:
    """Register contents plus the label order observed for port 7812."""

    rows: List[Dict[str, str]]
    lookup_port: int
    label_order: Tuple[str, ...]
    lookup_cycles: int
    memory_accesses: int

    @property
    def matches_paper_order(self) -> bool:
        """True when the produced order equals the paper's B, C, A."""
        return self.label_order == PAPER_LABEL_ORDER


def run() -> Table4Result:
    """Load the three example registers and look up port 7812."""
    registers = PortRegisterFile(name="dst_port_example", capacity=8)
    label_names: Dict[int, str] = {}
    for index, (name, low, high) in enumerate(PAPER_PORT_RULES):
        registers.insert((low, high), label=index, priority=index)
        label_names[index] = name
    result = registers.lookup(EXAMPLE_PORT)
    order = tuple(label_names[label] for label in result.labels)
    return Table4Result(
        rows=registers.table_iv_rows(label_names),
        lookup_port=EXAMPLE_PORT,
        label_order=order,
        lookup_cycles=result.cycles,
        memory_accesses=result.memory_accesses,
    )


def render(result: Table4Result) -> str:
    """Render the register contents and the resulting label order."""
    table = format_table(result.rows, title="Table IV — example of port field and labelling")
    order = ", ".join(result.label_order)
    verdict = "matches" if result.matches_paper_order else "DOES NOT match"
    return (
        f"{table}\n"
        f"Lookup of destination port {result.lookup_port}: label order {order} "
        f"({verdict} the paper's B, C, A) in {result.lookup_cycles} cycles"
    )

"""Table VII — performance comparison against published hardware designs.

The paper compares its two configurations against Optimizing HyperCuts on
FPGA [9] and DCFLE [4]/[6] on memory space, stored rules and throughput for
40-byte packets.  Our two rows are regenerated from the model (provisioned
memory, rule capacity with/without the shared-memory reclaim, throughput from
the clock model); the two external rows are quoted literature constants and
are marked as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.literature import TABLE_VII_PAPER_VALUES, LiteratureEntry
from repro.analysis.reports import format_table
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm

__all__ = ["Table7Row", "Table7Result", "run", "render"]


@dataclass(frozen=True)
class Table7Row:
    """One system's Table VII numbers."""

    system: str
    memory_mbit: float
    stored_rules: int
    throughput_gbps: float
    source: str
    paper_memory_mbit: Optional[float]
    paper_stored_rules: Optional[int]
    paper_throughput_gbps: Optional[float]


@dataclass(frozen=True)
class Table7Result:
    """All four comparison rows."""

    packet_bytes: int
    rows: List[Table7Row]

    def row(self, system: str) -> Table7Row:
        """Row of one system by its display name."""
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)


def _our_row(algorithm: IpAlgorithm, packet_bytes: int) -> Table7Row:
    config = ClassifierConfig(ip_algorithm=algorithm, min_packet_bytes=packet_bytes)
    classifier = ConfigurableClassifier(config)
    report = classifier.report()
    name = f"Our system with {algorithm.value.upper()}"
    paper = TABLE_VII_PAPER_VALUES.get(name)
    return Table7Row(
        system=name,
        memory_mbit=report.memory_space_mbit,
        stored_rules=report.rule_capacity,
        throughput_gbps=classifier.throughput_gbps(packet_bytes),
        source="measured (this reproduction)",
        paper_memory_mbit=paper.memory_mbit if paper else None,
        paper_stored_rules=paper.stored_rules if paper else None,
        paper_throughput_gbps=paper.throughput_gbps if paper else None,
    )


def _literature_row(entry: LiteratureEntry) -> Table7Row:
    return Table7Row(
        system=entry.system,
        memory_mbit=entry.memory_mbit or 0.0,
        stored_rules=entry.stored_rules or 0,
        throughput_gbps=entry.throughput_gbps or 0.0,
        source=f"quoted from {entry.source}",
        paper_memory_mbit=entry.memory_mbit,
        paper_stored_rules=entry.stored_rules,
        paper_throughput_gbps=entry.throughput_gbps,
    )


def run(packet_bytes: int = 40) -> Table7Result:
    """Regenerate our rows from the model and carry the quoted rows."""
    rows = [
        _our_row(IpAlgorithm.MBT, packet_bytes),
        _our_row(IpAlgorithm.BST, packet_bytes),
        _literature_row(TABLE_VII_PAPER_VALUES["Optimizing HyperCuts"]),
        _literature_row(TABLE_VII_PAPER_VALUES["DCFLE"]),
    ]
    return Table7Result(packet_bytes=packet_bytes, rows=rows)


def render(result: Table7Result) -> str:
    """Render the four comparison rows."""
    rows = [
        {
            "Algorithm": row.system,
            "Memory space Mb": row.memory_mbit,
            "Stored rules": row.stored_rules,
            "Throughput Gbps": row.throughput_gbps,
            "Paper Mb": row.paper_memory_mbit if row.paper_memory_mbit is not None else "-",
            "Paper rules": row.paper_stored_rules if row.paper_stored_rules is not None else "-",
            "Paper Gbps": row.paper_throughput_gbps if row.paper_throughput_gbps is not None else "-",
            "Source": row.source,
        }
        for row in result.rows
    ]
    return format_table(
        rows,
        title=f"Table VII — performance comparison ({result.packet_bytes}-byte packets)",
    )

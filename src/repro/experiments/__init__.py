"""Experiment drivers — one module per table/figure of the paper's evaluation.

Each driver exposes ``run(...)`` returning a structured result object and
``render(result)`` producing the plain-text table printed by the benchmarks:

* :mod:`~repro.experiments.table1` — algorithm survey (Table I);
* :mod:`~repro.experiments.table2` — unique rule fields (Table II);
* :mod:`~repro.experiments.table3` — rule filter sizes (Table III);
* :mod:`~repro.experiments.table4` — port labelling example (Table IV);
* :mod:`~repro.experiments.table5` — FPGA synthesis estimate (Table V);
* :mod:`~repro.experiments.table6` — MBT vs BST configuration (Table VI);
* :mod:`~repro.experiments.table7` — system comparison (Table VII);
* :mod:`~repro.experiments.fig3_pipeline` — lookup pipelining (Fig. 3);
* :mod:`~repro.experiments.fig4_update` — incremental update behaviour (Fig. 4);
* :mod:`~repro.experiments.fig5_memory_sharing` — memory sharing (Fig. 5);
* :mod:`~repro.experiments.update_cost` — update cycle cost (section V.A);
* :mod:`~repro.experiments.lookup_latency` — per-field latencies (section V.B);
* :mod:`~repro.experiments.update_depth` — commit cost vs dependency depth
  under scoped cache invalidation.
"""

from repro.experiments import (
    fig3_pipeline,
    fig4_update,
    fig5_memory_sharing,
    lookup_latency,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    update_cost,
    update_depth,
)
from repro.experiments.common import DEFAULT_SEED, workload_ruleset, workload_trace

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig3_pipeline",
    "fig4_update",
    "fig5_memory_sharing",
    "update_cost",
    "update_depth",
    "lookup_latency",
    "workload_ruleset",
    "workload_trace",
    "DEFAULT_SEED",
]

"""Section V.B — per-field lookup latencies.

The paper quotes the per-engine lookup costs: protocol 1 cycle, port 2 cycles,
MBT 6-cycle latency (pipelined to one packet per cycle), BST on the order of
16 cycles per packet, one extra cycle to fetch the label-list pointer and two
final cycles for the result phase.  This driver instantiates each engine,
loads it from an ACL workload, performs lookups and reports measured latency
and accesses next to the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reports import format_table
from repro.core.classifier import DISPATCH_CYCLES, FINAL_CYCLES, LABEL_FETCH_CYCLES, ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.core.dimensions import packet_dimension_values
from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor

__all__ = ["LatencyRow", "LookupLatencyResult", "run", "render", "PAPER_LATENCIES"]

#: The per-engine latencies stated in section V.B.
PAPER_LATENCIES: Dict[str, int] = {
    "protocol": 1,
    "port": 2,
    "mbt": 6,
    "bst": 16,
    "label_fetch": 1,
    "final": 2,
}


@dataclass(frozen=True)
class LatencyRow:
    """Measured latency/access numbers of one engine class."""

    engine: str
    configured_cycles: int
    average_measured_accesses: float
    paper_cycles: Optional[int]
    pipelined: bool


@dataclass(frozen=True)
class LookupLatencyResult:
    """Per-engine latencies plus the end-to-end pipeline latency."""

    workload: str
    rows: List[LatencyRow]
    end_to_end_mbt_cycles: int
    end_to_end_bst_cycles: int

    def row(self, engine: str) -> LatencyRow:
        """Row of one engine class."""
        for row in self.rows:
            if row.engine == engine:
                return row
        raise KeyError(engine)


def run(
    nominal_size: int = 1000,
    trace_length: int = 200,
    flavor: FilterFlavor = FilterFlavor.ACL,
) -> LookupLatencyResult:
    """Measure per-engine lookup costs for both classifier configurations."""
    ruleset = workload_ruleset(flavor, nominal_size)
    trace = workload_trace(flavor, nominal_size, count=trace_length)
    mbt_classifier = ConfigurableClassifier.from_ruleset(
        ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.MBT)
    )
    bst_classifier = ConfigurableClassifier.from_ruleset(
        ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
    )

    def average_accesses(classifier: ConfigurableClassifier, dimension: str) -> float:
        total = 0
        for packet in trace:
            values = packet_dimension_values(packet)
            total += classifier.engines[dimension].lookup(values[dimension]).memory_accesses
        return total / len(trace)

    rows = [
        LatencyRow(
            engine="protocol",
            configured_cycles=mbt_classifier.engines["protocol"].lookup_cycles,
            average_measured_accesses=average_accesses(mbt_classifier, "protocol"),
            paper_cycles=PAPER_LATENCIES["protocol"],
            pipelined=True,
        ),
        LatencyRow(
            engine="port",
            configured_cycles=mbt_classifier.engines["dst_port"].lookup_cycles,
            average_measured_accesses=average_accesses(mbt_classifier, "dst_port"),
            paper_cycles=PAPER_LATENCIES["port"],
            pipelined=True,
        ),
        LatencyRow(
            engine="mbt",
            configured_cycles=mbt_classifier.engines["src_ip_hi"].lookup_cycles,
            average_measured_accesses=average_accesses(mbt_classifier, "src_ip_hi"),
            paper_cycles=PAPER_LATENCIES["mbt"],
            pipelined=True,
        ),
        LatencyRow(
            engine="bst",
            configured_cycles=bst_classifier.engines["src_ip_hi"].lookup_cycles,
            average_measured_accesses=average_accesses(bst_classifier, "src_ip_hi"),
            paper_cycles=PAPER_LATENCIES["bst"],
            pipelined=False,
        ),
        LatencyRow(
            engine="label_fetch",
            configured_cycles=LABEL_FETCH_CYCLES,
            average_measured_accesses=1.0,
            paper_cycles=PAPER_LATENCIES["label_fetch"],
            pipelined=True,
        ),
        LatencyRow(
            engine="final",
            configured_cycles=FINAL_CYCLES,
            average_measured_accesses=1.0,
            paper_cycles=PAPER_LATENCIES["final"],
            pipelined=True,
        ),
    ]
    return LookupLatencyResult(
        workload=ruleset.name,
        rows=rows,
        end_to_end_mbt_cycles=mbt_classifier.lookup_latency_cycles(),
        end_to_end_bst_cycles=bst_classifier.lookup_latency_cycles(),
    )


def render(result: LookupLatencyResult) -> str:
    """Render per-engine latency rows plus end-to-end latencies."""
    rows = [
        {
            "Engine": row.engine,
            "Configured cycles": row.configured_cycles,
            "Paper cycles": row.paper_cycles if row.paper_cycles is not None else "-",
            "Avg measured accesses": row.average_measured_accesses,
            "Pipelined": row.pipelined,
        }
        for row in result.rows
    ]
    table = format_table(rows, title=f"Section V.B — per-field lookup latency on {result.workload}")
    return (
        f"{table}\n"
        f"End-to-end latency: MBT {result.end_to_end_mbt_cycles} cycles, "
        f"BST {result.end_to_end_bst_cycles} cycles (dispatch {DISPATCH_CYCLES} + field + "
        f"label fetch {LABEL_FETCH_CYCLES} + combination + final {FINAL_CYCLES})"
    )

"""Table II — number of unique rule fields per rule set.

Counts the distinct values of every 5-tuple field for the acl1-flavoured
rule sets at 1K/5K/10K nominal sizes, and additionally reports the storage
reduction the label method achieves ("more than 50%", section III.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reports import format_table
from repro.analysis.uniqueness import UniqueFieldReport, storage_reduction, unique_field_report
from repro.experiments.common import workload_ruleset
from repro.rules.classbench import FilterFlavor
from repro.rules.packet import FIVE_TUPLE_FIELDS

__all__ = ["Table2Result", "run", "render", "PAPER_TABLE_II"]

#: Table II exactly as printed in the paper (acl1 1K / 5K / 10K columns).
PAPER_TABLE_II: Dict[str, Dict[int, int]] = {
    "src_ip": {1000: 103, 5000: 805, 10000: 4784},
    "dst_ip": {1000: 297, 5000: 640, 10000: 733},
    "src_port": {1000: 1, 5000: 1, 10000: 1},
    "dst_port": {1000: 99, 5000: 108, 10000: 108},
    "protocol": {1000: 3, 5000: 3, 10000: 3},
}


@dataclass(frozen=True)
class Table2Result:
    """Unique-field reports for every generated acl1 size plus reductions."""

    sizes: Tuple[int, ...]
    reports: List[UniqueFieldReport]
    storage_reductions: Dict[int, float]

    def unique_count(self, size: int, field: str) -> int:
        """Measured unique count of one field at one nominal size."""
        for nominal, report in zip(self.sizes, self.reports):
            if nominal == size:
                return report.unique_counts[field]
        raise KeyError(f"size {size} not part of this result")


def run(sizes: Tuple[int, ...] = (1000, 5000, 10000)) -> Table2Result:
    """Generate the acl1 workloads and count unique field values."""
    reports: List[UniqueFieldReport] = []
    reductions: Dict[int, float] = {}
    for size in sizes:
        ruleset = workload_ruleset(FilterFlavor.ACL, size)
        reports.append(unique_field_report(ruleset))
        reductions[size] = storage_reduction(ruleset)
    return Table2Result(sizes=tuple(sizes), reports=reports, storage_reductions=reductions)


def render(result: Table2Result) -> str:
    """Render measured-vs-paper unique field counts."""
    rows = []
    for field in FIVE_TUPLE_FIELDS:
        row: Dict[str, object] = {"Packet Header Field": field}
        for size, report in zip(result.sizes, result.reports):
            row[f"acl1 {size // 1000}K (measured)"] = report.unique_counts[field]
            paper = PAPER_TABLE_II.get(field, {}).get(size)
            row[f"acl1 {size // 1000}K (paper)"] = paper if paper is not None else "-"
        rows.append(row)
    table = format_table(rows, title="Table II — number of unique rule fields per rule set")
    reductions = ", ".join(
        f"{size // 1000}K: {value * 100:.1f}%" for size, value in result.storage_reductions.items()
    )
    return f"{table}\nLabel-method storage reduction: {reductions}"

"""Table VI — performance evaluation for the configurable IP algorithm.

For both positions of the ``IPalg_s`` selector (MBT and BST) the paper
reports: lookup memory accesses per packet (1 for the pipelined MBT, 16 for
the iterative BST), the memory space required by the IP algorithm and the
number of rules that can be stored with the same memory blocks (8K vs 12K,
thanks to the Fig. 5 memory sharing).

The driver instantiates both configurations over the same ACL workload,
measures the per-packet occupancy and the per-lookup memory accesses on a
packet trace, and reads the capacity and provisioned memory from the
configuration model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.literature import TABLE_VI_PAPER_VALUES
from repro.analysis.metrics import LookupMetrics, summarize_lookups
from repro.analysis.reports import format_table
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor

__all__ = ["Table6Row", "Table6Result", "run", "render"]


@dataclass(frozen=True)
class Table6Row:
    """One IP-algorithm configuration's Table VI numbers."""

    ip_algorithm: str
    occupancy_cycles_per_packet: float
    measured_ip_memory_accesses: float
    ip_memory_kbits: float
    stored_rule_capacity: int
    throughput_gbps: float
    lookup_metrics: LookupMetrics
    paper: Optional[Dict[str, float]]


@dataclass(frozen=True)
class Table6Result:
    """Both configurations side by side."""

    workload: str
    rules_installed: int
    rows: List[Table6Row]

    def row(self, ip_algorithm) -> Table6Row:
        """Row of one configuration (accepts an IpAlgorithm or its value string)."""
        wanted = getattr(ip_algorithm, "value", ip_algorithm)
        for row in self.rows:
            if row.ip_algorithm == wanted:
                return row
        raise KeyError(ip_algorithm)


IP_DIMENSION_NAMES = ("src_ip_hi", "src_ip_lo", "dst_ip_hi", "dst_ip_lo")


def run(
    nominal_size: int = 5000,
    trace_length: int = 300,
    flavor: FilterFlavor = FilterFlavor.ACL,
) -> Table6Result:
    """Evaluate the MBT and BST configurations on the same workload."""
    ruleset = workload_ruleset(flavor, nominal_size)
    trace = workload_trace(flavor, nominal_size, count=trace_length)
    rows: List[Table6Row] = []
    for algorithm in (IpAlgorithm.MBT, IpAlgorithm.BST):
        config = (
            ClassifierConfig.builder()
            .ip_algorithm(algorithm)
            .combiner(CombinerMode.CROSS_PRODUCT)
            .build()
        )
        classifier = ConfigurableClassifier.from_ruleset(ruleset, config)
        batch = classifier.classify_batch(trace)
        details = [result.detail for result in batch]
        metrics = summarize_lookups(details)
        ip_accesses = [
            sum(detail.memory_accesses[name] for name in IP_DIMENSION_NAMES) for detail in details
        ]
        paper_key = "MBT" if algorithm is IpAlgorithm.MBT else "BST"
        rows.append(
            Table6Row(
                ip_algorithm=algorithm.value,
                occupancy_cycles_per_packet=classifier.occupancy_cycles(),
                measured_ip_memory_accesses=sum(ip_accesses) / len(ip_accesses),
                ip_memory_kbits=config.ip_memory_bits() / 1e3,
                stored_rule_capacity=config.rule_capacity(),
                throughput_gbps=classifier.throughput_gbps(),
                lookup_metrics=metrics,
                paper=TABLE_VI_PAPER_VALUES.get(paper_key),
            )
        )
    return Table6Result(workload=ruleset.name, rules_installed=len(ruleset), rows=rows)


def render(result: Table6Result) -> str:
    """Render measured-vs-paper rows for both IP algorithm configurations."""
    rows = []
    for row in result.rows:
        paper = row.paper or {}
        rows.append(
            {
                "IP lookup algorithm": row.ip_algorithm.upper(),
                "Cycles/packet (pipeline)": row.occupancy_cycles_per_packet,
                "Cycles/packet (paper)": paper.get("lookup_accesses_per_packet", "-"),
                "IP memory Kbits (provisioned)": row.ip_memory_kbits,
                "IP memory Kbits (paper)": paper.get("memory_kbits", "-"),
                "Rule capacity": row.stored_rule_capacity,
                "Rule capacity (paper)": paper.get("stored_rules", "-"),
                "Throughput Gbps": row.throughput_gbps,
            }
        )
    title = (
        f"Table VI — IP algorithm comparison on {result.workload} "
        f"({result.rules_installed} rules installed)"
    )
    return format_table(rows, title=title)

"""Fig. 4 — rule insertion pseudo-code behaviour.

Fig. 4 describes the per-field insertion algorithm: look the field value up in
the Label Table; if present, only increment its counter; if absent, create a
new label and compute the algorithm-structure update.  This driver installs an
ACL workload incrementally and measures, per dimension, how many insertions
took the cheap counter-only path versus the structural path — together with
the matching behaviour for deletion (labels only disappear when their counter
reaches zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reports import format_table
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig
from repro.core.dimensions import DIMENSIONS
from repro.experiments.common import workload_ruleset
from repro.rules.classbench import FilterFlavor

__all__ = ["Fig4Result", "run", "render"]


@dataclass(frozen=True)
class Fig4Result:
    """Per-dimension cheap/structural update counts for inserts and deletes."""

    workload: str
    rules_inserted: int
    rules_deleted: int
    insert_statistics: Dict[str, Dict[str, int]]

    def counter_only_fraction(self, dimension: str) -> float:
        """Fraction of insertions that only bumped the counter for one dimension."""
        stats = self.insert_statistics[dimension]
        total = stats["structural_inserts"] + stats["counter_only_inserts"]
        return stats["counter_only_inserts"] / total if total else 0.0


def run(
    nominal_size: int = 1000,
    delete_fraction: float = 0.25,
    flavor: FilterFlavor = FilterFlavor.ACL,
) -> Fig4Result:
    """Install a workload rule by rule, then delete a fraction of it again."""
    ruleset = workload_ruleset(flavor, nominal_size)
    classifier = ConfigurableClassifier(ClassifierConfig())
    inserted = 0
    for rule in ruleset:
        classifier.install_rule(rule)
        inserted += 1
    to_delete = ruleset.rule_ids()[: int(len(ruleset) * delete_fraction)]
    for rule_id in to_delete:
        classifier.remove_rule(rule_id)
    return Fig4Result(
        workload=ruleset.name,
        rules_inserted=inserted,
        rules_deleted=len(to_delete),
        insert_statistics=classifier.update_engine.update_statistics(),
    )


def render(result: Fig4Result) -> str:
    """Render the per-dimension update statistics."""
    rows: List[Dict[str, object]] = []
    for dimension in DIMENSIONS:
        stats = result.insert_statistics[dimension]
        rows.append(
            {
                "Dimension": dimension,
                "Structural inserts (new label)": stats["structural_inserts"],
                "Counter-only inserts": stats["counter_only_inserts"],
                "Structural deletes (label freed)": stats["structural_deletes"],
                "Counter-only deletes": stats["counter_only_deletes"],
                "Counter-only insert fraction": result.counter_only_fraction(dimension),
            }
        )
    title = (
        f"Fig. 4 — incremental update behaviour on {result.workload} "
        f"({result.rules_inserted} inserts, {result.rules_deleted} deletes)"
    )
    return format_table(rows, title=title)

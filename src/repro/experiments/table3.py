"""Table III — analysis of rule filters.

The paper lists the actual rule counts of its nine workloads (ACL, FW and IPC
filters at nominal 1K/5K/10K sizes).  This driver regenerates all nine with
the synthetic generator and reports the realised counts next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reports import format_table
from repro.experiments.common import workload_ruleset
from repro.rules.classbench import FilterFlavor, PAPER_RULE_COUNTS

__all__ = ["Table3Result", "run", "render"]


@dataclass(frozen=True)
class Table3Result:
    """Generated rule counts for every flavour/size pair."""

    sizes: Tuple[int, ...]
    counts: Dict[Tuple[str, int], int]

    def count(self, flavor: FilterFlavor, size: int) -> int:
        """Measured rule count of one workload."""
        return self.counts[(flavor.value, size)]


def run(sizes: Tuple[int, ...] = (1000, 5000, 10000)) -> Table3Result:
    """Generate every flavour at every nominal size and count rules."""
    counts: Dict[Tuple[str, int], int] = {}
    for flavor in FilterFlavor:
        for size in sizes:
            ruleset = workload_ruleset(flavor, size)
            counts[(flavor.value, size)] = len(ruleset)
    return Table3Result(sizes=tuple(sizes), counts=counts)


def render(result: Table3Result) -> str:
    """Render generated-vs-paper rule counts per flavour."""
    rows: List[Dict[str, object]] = []
    for flavor in FilterFlavor:
        row: Dict[str, object] = {"Filter type": flavor.value.upper()}
        for size in result.sizes:
            measured = result.counts[(flavor.value, size)]
            paper = PAPER_RULE_COUNTS.get((flavor, size))
            row[f"{size // 1000}K (measured)"] = measured
            row[f"{size // 1000}K (paper)"] = paper if paper is not None else "-"
        rows.append(row)
    return format_table(rows, title="Table III — analysis of rule filters")

"""Section V.A — memory accesses / clock cycles for incremental update.

The paper's update cost model: rule insertion and deletion complete in two
clock cycles of memory upload per rule (source half + destination half) plus
one cycle for the hardware hash producing the Rule Filter address.  Structural
label insertions additionally upload the recomputed algorithm node words.

This driver installs and removes a batch of rules through the update engine
and reports the distribution of hardware update cycles, separating the fixed
upload+hash cost (which must match the paper's 3 cycles) from the
software-computed structural uploads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import UpdateMetrics, summarize_updates
from repro.analysis.reports import format_kv
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.core.update_engine import HASH_CYCLES, RULE_UPLOAD_CYCLES
from repro.experiments.common import workload_ruleset
from repro.rules.classbench import FilterFlavor

__all__ = ["UpdateCostResult", "run", "render", "PAPER_UPLOAD_CYCLES"]

#: The paper's fixed per-rule upload cost: 2 cycles upload + 1 cycle hash.
PAPER_UPLOAD_CYCLES = 3


@dataclass(frozen=True)
class UpdateCostResult:
    """Insert/delete cost metrics for one configuration."""

    workload: str
    ip_algorithm: str
    insert_metrics: UpdateMetrics
    delete_metrics: UpdateMetrics
    fixed_upload_cycles: int
    counter_only_insert_cycles: float

    @property
    def matches_paper_fixed_cost(self) -> bool:
        """True when the fixed upload+hash cost equals the paper's 3 cycles."""
        return self.fixed_upload_cycles == PAPER_UPLOAD_CYCLES


def run(
    nominal_size: int = 1000,
    delete_fraction: float = 0.5,
    ip_algorithm: IpAlgorithm = IpAlgorithm.MBT,
    flavor: FilterFlavor = FilterFlavor.ACL,
) -> UpdateCostResult:
    """Install a workload and delete part of it, collecting update costs."""
    ruleset = workload_ruleset(flavor, nominal_size)
    classifier = ConfigurableClassifier(ClassifierConfig(ip_algorithm=ip_algorithm))
    insert_results = [classifier.install_rule(rule) for rule in ruleset]
    to_delete = ruleset.rule_ids()[: int(len(ruleset) * delete_fraction)]
    delete_results = [classifier.remove_rule(rule_id) for rule_id in to_delete]
    # Counter-only insertions pay the fixed upload plus one counter bump per
    # dimension; average their total cycles for the report.
    counter_only = [
        result.cycles.latency_cycles for result in insert_results if not result.structural
    ]
    return UpdateCostResult(
        workload=ruleset.name,
        ip_algorithm=ip_algorithm.value,
        insert_metrics=summarize_updates(insert_results),
        delete_metrics=summarize_updates(delete_results),
        fixed_upload_cycles=RULE_UPLOAD_CYCLES + HASH_CYCLES,
        counter_only_insert_cycles=(sum(counter_only) / len(counter_only)) if counter_only else 0.0,
    )


def render(result: UpdateCostResult) -> str:
    """Render the update cost summary."""
    items: Dict[str, object] = {
        "Workload": result.workload,
        "IP algorithm": result.ip_algorithm.upper(),
        "Fixed upload + hash cycles per rule": result.fixed_upload_cycles,
        "Paper's fixed cost (2 upload + 1 hash)": PAPER_UPLOAD_CYCLES,
        "Rules inserted": result.insert_metrics.operations,
        "  structural insert fraction": 1.0 - result.insert_metrics.counter_only_fraction,
        "  average insert cycles": result.insert_metrics.average_cycles,
        "  average counter-only insert cycles": result.counter_only_insert_cycles,
        "Rules deleted": result.delete_metrics.operations,
        "  average delete cycles": result.delete_metrics.average_cycles,
    }
    return format_kv(items, title="Section V.A — incremental update cost")

"""Transactional control plane: versioned rule programs with atomic commits.

The paper's headline on the update side is *cheap incremental updates*
(section IV.A / the update-cost experiments); a deployment that serves live
traffic needs those updates to be **uniform** (one mutation surface across
the configurable architecture and every baseline), **transactional** (a
multi-op change lands entirely or not at all) and **propagatable** (a commit
can be broadcast to replica pools).  This module is that surface:

* :class:`RuleProgram` — an immutable, versioned snapshot of the installed
  rules (in install order) plus the datapath configuration, with
  :meth:`RuleProgram.diff` producing the :class:`Delta` that transforms one
  program into another;
* :class:`Txn` — a staged transaction: chain :meth:`Txn.insert` /
  :meth:`Txn.remove` / :meth:`Txn.reconfigure` calls, then
  :meth:`Txn.commit` (all-or-nothing) or :meth:`Txn.abort`;
* :class:`ControlPlane` — the protocol engines expose as ``.control``:
  :meth:`ControlPlane.begin` opens a transaction,
  :meth:`ControlPlane.apply_delta` applies a committed delta (the broadcast
  primitive :class:`~repro.perf.parallel.ParallelSession` uses), and every
  commit is **epoch-stamped** — the data-path mutations it lands bump the
  :class:`~repro.observers.MutationEpoch` counters the
  :mod:`repro.perf` caches compare against, so invalidation needs no
  listener callbacks;
* :class:`ClassifierControl` — the incremental implementation for
  :class:`~repro.core.classifier.ConfigurableClassifier`, journalling every
  applied operation so a failure mid-transaction unwinds cleanly (each
  single insert is additionally atomic through the PR 2 per-dimension
  rollback journal of :class:`~repro.core.update_engine.UpdateEngine`);
* :class:`RebuildControl` — the adapter implementation for the build-once
  baselines: the transaction's target rule set is staged first and the
  structure rebuilt exactly once, so all-or-nothing holds by construction.

``ControlPlane.begin()``/``commit()`` is the **sole supported mutation
path**; the ``install``/``remove`` methods engines still carry are the
internal bootstrap primitives the factories and single-op commits are built
from.  Deltas are plain picklable data, so the same committed transaction
can be shipped to process-pool replicas unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.config import CombinerMode, IpAlgorithm
from repro.core.dimensions import rule_dimension_specs, spec_interval
from repro.exceptions import UpdateError
from repro.core.invalidation import FILTER_MARK, InvalidationScope
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = [
    "TxnOp",
    "Delta",
    "RuleProgram",
    "ReconfigureResult",
    "CommitResult",
    "Txn",
    "ControlPlane",
    "ClassifierControl",
    "RebuildControl",
    "parse_delta_lines",
    "load_delta_file",
]

#: Operation kinds a transaction may stage.
OP_KINDS = ("insert", "remove", "reconfigure")


@dataclass(frozen=True)
class TxnOp:
    """One staged control-plane operation (plain picklable data).

    ``kind`` selects which of the optional payload fields apply:
    ``"insert"`` carries ``rule``, ``"remove"`` carries ``rule_id``,
    ``"reconfigure"`` carries ``ip_algorithm`` and/or ``combiner`` as the
    enum *value strings* (strings, not enums, so the op pickles compactly
    across process boundaries).
    """

    kind: str
    rule: Optional[Rule] = None
    rule_id: Optional[int] = None
    ip_algorithm: Optional[str] = None
    combiner: Optional[str] = None

    def describe(self) -> str:
        """One-line human-readable form (CLI and log output)."""
        if self.kind == "insert":
            return f"insert rule {self.rule.rule_id} (priority {self.rule.priority})"
        if self.kind == "remove":
            return f"remove rule {self.rule_id}"
        parts = []
        if self.ip_algorithm is not None:
            parts.append(f"ip_algorithm={self.ip_algorithm}")
        if self.combiner is not None:
            parts.append(f"combiner={self.combiner}")
        return f"reconfigure {' '.join(parts) or '(no-op)'}"


@dataclass(frozen=True)
class Delta:
    """An ordered, immutable batch of operations (one transaction's content)."""

    ops: Tuple[TxnOp, ...] = ()

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def describe(self) -> List[str]:
        """Human-readable op list."""
        return [op.describe() for op in self.ops]


def _program_config(**settings: Optional[str]) -> Tuple[Tuple[str, str], ...]:
    """Normalise config settings into the sorted-pairs form programs store."""
    return tuple(sorted((k, v) for k, v in settings.items() if v is not None))


@dataclass(frozen=True)
class RuleProgram:
    """Immutable, versioned snapshot of one engine's installed state.

    ``rules`` are in **install order** (label assignments of the
    configurable architecture depend on it); ``config`` is a sorted tuple of
    ``(key, value)`` string pairs (hashable and picklable).  ``version``
    counts the control-plane commits that produced this snapshot.
    """

    version: int
    rules: Tuple[Rule, ...]
    config: Tuple[Tuple[str, str], ...] = ()

    @property
    def settings(self) -> dict:
        """The config pairs as a plain dict."""
        return dict(self.config)

    def rule_ids(self) -> Tuple[int, ...]:
        """Ids of the installed rules, in install order."""
        return tuple(rule.rule_id for rule in self.rules)

    def diff(self, other: "RuleProgram") -> Delta:
        """The delta transforming this program's state into ``other``'s.

        Removals come first (freeing capacity), then one reconfigure op for
        any config divergence, then insertions in ``other``'s install order.
        A rule whose id survives but whose definition changed is replaced
        (remove + insert).
        """
        mine = {rule.rule_id: rule for rule in self.rules}
        theirs = {rule.rule_id: rule for rule in other.rules}
        ops: List[TxnOp] = []
        for rule_id, rule in mine.items():
            if theirs.get(rule_id) != rule:
                ops.append(TxnOp(kind="remove", rule_id=rule_id))
        # Only the datapath settings a reconfigure op can actually move are
        # diffed; descriptive keys (a baseline's "algorithm"/"update_model")
        # are identity, not state, and must not manufacture a reconfigure op
        # no plane could apply.
        my_cfg, their_cfg = self.settings, other.settings
        ip_target = their_cfg.get("ip_algorithm")
        if ip_target == my_cfg.get("ip_algorithm"):
            ip_target = None
        combiner_target = their_cfg.get("combiner_mode")
        if combiner_target == my_cfg.get("combiner_mode"):
            combiner_target = None
        if ip_target is not None or combiner_target is not None:
            ops.append(
                TxnOp(kind="reconfigure", ip_algorithm=ip_target, combiner=combiner_target)
            )
        for rule in other.rules:
            if mine.get(rule.rule_id) != rule:
                ops.append(TxnOp(kind="insert", rule=rule))
        return Delta(tuple(ops))

    def __repr__(self) -> str:
        return (
            f"RuleProgram(version={self.version}, rules={len(self.rules)}, "
            f"config={dict(self.config)})"
        )


@dataclass(frozen=True)
class ReconfigureResult:
    """Outcome of one applied reconfigure op."""

    ip_algorithm: Optional[str]
    combiner: Optional[str]
    #: Rules replayed into the rebuilt engines (0 for a combiner-only change).
    reinstalled: int = 0

    @property
    def structural(self) -> bool:
        """Reconfiguration always rewrites structures when it changes anything."""
        return self.ip_algorithm is not None or self.reinstalled > 0


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one committed transaction.

    ``inverse`` is the delta that would undo this commit (computed from the
    pre-commit state while applying) — :class:`~repro.perf.parallel.ParallelSession`
    replays it on replicas that committed when a sibling replica fails, so a
    broadcast stays all-or-nothing session-wide.
    """

    #: Program version after this commit.
    version: int
    #: Control-plane epoch after this commit (monotonic per plane).
    epoch: int
    #: The delta that was applied.
    delta: Delta
    #: The delta that would undo it (ops in reverse order of application).
    inverse: Delta
    #: Per-op engine results (:class:`~repro.core.result.UpdateResult` /
    #: :class:`ReconfigureResult` / rule ids for rebuild engines).
    results: Tuple[object, ...] = ()

    @property
    def structural(self) -> bool:
        """True when any applied op changed an algorithm structure."""
        return any(getattr(result, "structural", False) for result in self.results)

    @property
    def update_cycles(self) -> int:
        """Total modelled update-interface cycles across the applied ops."""
        total = 0
        for result in self.results:
            cycles = getattr(result, "cycles", None)
            if cycles is not None:
                total += cycles.latency_cycles
        return total


class Txn:
    """A staged transaction against one :class:`ControlPlane`.

    Stage operations by chaining :meth:`insert` / :meth:`remove` /
    :meth:`reconfigure`, then :meth:`commit` — the plane applies every op or
    none.  A transaction is single-shot: once committed or aborted, further
    staging or committing raises :class:`~repro.exceptions.UpdateError`.  A
    *failed* commit leaves the transaction open (the plane rolled the
    engine back; the staged ops survive for inspection or amendment).

    ``Txn(None)`` stages a free-standing transaction with no plane — useful
    to build a delta for :meth:`ParallelSession.apply
    <repro.perf.parallel.ParallelSession.apply>`; committing it directly
    raises.
    """

    def __init__(self, plane: Optional["ControlPlane"] = None) -> None:
        self._plane = plane
        self._ops: List[TxnOp] = []
        self._state = "open"

    # -- staging -------------------------------------------------------------
    def _check_open(self) -> None:
        if self._state != "open":
            raise UpdateError(f"transaction is {self._state}; begin() a new one")

    def insert(self, rule: Rule) -> "Txn":
        """Stage one rule insertion."""
        self._check_open()
        self._ops.append(TxnOp(kind="insert", rule=rule))
        return self

    def remove(self, rule_id: int) -> "Txn":
        """Stage one rule removal by id."""
        self._check_open()
        self._ops.append(TxnOp(kind="remove", rule_id=rule_id))
        return self

    def reconfigure(self, ip_algorithm=None, combiner=None) -> "Txn":
        """Stage a datapath reconfiguration (``IPalg_s`` and/or combiner mode).

        Accepts the enums or their value strings; values are validated here
        so a typo fails at staging time, not mid-commit.
        """
        self._check_open()
        if ip_algorithm is None and combiner is None:
            raise UpdateError("reconfigure needs an ip_algorithm or a combiner mode")
        ip_value = IpAlgorithm(ip_algorithm).value if ip_algorithm is not None else None
        combiner_value = CombinerMode(combiner).value if combiner is not None else None
        self._ops.append(
            TxnOp(kind="reconfigure", ip_algorithm=ip_value, combiner=combiner_value)
        )
        return self

    def extend(self, ops) -> "Txn":
        """Stage every op of a :class:`Delta` (or iterable of ops) in order."""
        self._check_open()
        for op in (ops.ops if isinstance(ops, Delta) else ops):
            if op.kind not in OP_KINDS:
                raise UpdateError(f"unknown transaction op kind {op.kind!r}")
            self._ops.append(op)
        return self

    # -- introspection -------------------------------------------------------
    @property
    def state(self) -> str:
        """``"open"``, ``"committed"`` or ``"aborted"``."""
        return self._state

    @property
    def ops(self) -> Tuple[TxnOp, ...]:
        """The staged operations, in order."""
        return tuple(self._ops)

    def delta(self) -> Delta:
        """The staged operations as an immutable :class:`Delta`."""
        return Delta(tuple(self._ops))

    def __len__(self) -> int:
        return len(self._ops)

    # -- terminal ------------------------------------------------------------
    def commit(self) -> CommitResult:
        """Apply every staged op atomically; returns the commit record."""
        self._check_open()
        if self._plane is None:
            raise UpdateError(
                "free-standing transaction has no control plane; pass it to "
                "ParallelSession.apply() or stage it via plane.begin()"
            )
        result = self._plane.apply_delta(self.delta())
        self._state = "committed"
        return result

    def abort(self) -> None:
        """Discard the staged operations (nothing was applied)."""
        self._check_open()
        self._state = "aborted"

    def __repr__(self) -> str:
        return f"Txn(ops={len(self._ops)}, state={self._state})"


class ControlPlane(abc.ABC):
    """The transactional mutation surface every engine exposes as ``.control``.

    Concrete planes implement :meth:`_apply` (apply a delta all-or-nothing,
    returning per-op results and the inverse ops) and :meth:`program` (the
    current :class:`RuleProgram` snapshot).  The base class owns the version
    and epoch counters and the :class:`Txn` lifecycle.
    """

    def __init__(self) -> None:
        self._version = 0
        self._epoch = 0

    @property
    def version(self) -> int:
        """Program version: number of non-empty commits applied so far."""
        return self._version

    @property
    def epoch(self) -> int:
        """Commit epoch of this plane (bumped once per non-empty commit)."""
        return self._epoch

    def begin(self) -> Txn:
        """Open a new transaction against this plane."""
        return Txn(self)

    @abc.abstractmethod
    def program(self) -> RuleProgram:
        """Immutable snapshot of the current rules + configuration."""

    @abc.abstractmethod
    def _apply(self, delta: Delta) -> Tuple[List[object], List[TxnOp]]:
        """Apply ``delta`` all-or-nothing; return (results, inverse ops)."""

    def apply_delta(self, delta: Delta) -> CommitResult:
        """Apply a committed/staged delta atomically and stamp the commit.

        This is the broadcast primitive: a delta that already committed on a
        primary (or was staged free-standing) lands on this engine with the
        same all-or-nothing guarantee.  An empty delta is a no-op that
        leaves version and epoch untouched.
        """
        if not delta.ops:
            return CommitResult(self._version, self._epoch, delta, Delta(()), ())
        results, inverse_ops = self._apply(delta)
        self._version += 1
        self._epoch += 1
        return CommitResult(
            version=self._version,
            epoch=self._epoch,
            delta=delta,
            inverse=Delta(tuple(inverse_ops)),
            results=tuple(results),
        )

    def rollback(self, commit: CommitResult) -> None:
        """Undo ``commit`` and restore the pre-commit program version.

        Replays ``commit.inverse`` through :meth:`_apply` (the same
        all-or-nothing primitive), but instead of stamping a *new* version —
        which is what ``apply_delta(commit.inverse)`` would do — the version
        counter is restored to ``commit.version - 1``, so observers that key
        on ``program_version`` (fabric switches, stats replies) see the
        device exactly where it was before the failed transaction.  The
        epoch still advances: the engines were mutated twice, and attached
        caches must notice.  Only the most recent commit of a plane may be
        rolled back this way; undoing an empty commit is a no-op.
        """
        if not commit.inverse.ops:
            return
        if commit.version != self._version:
            raise UpdateError(
                f"cannot roll back commit v{commit.version}: the plane is at "
                f"v{self._version} (only the latest commit is undoable)"
            )
        self._apply(commit.inverse)
        self._version = commit.version - 1
        self._epoch += 1


class ClassifierControl(ControlPlane):
    """Incremental control plane of the configurable architecture.

    Ops apply through :class:`~repro.core.update_engine.UpdateEngine` (each
    insert/delete is itself atomic via the per-dimension rollback journal);
    the transaction journal here unwinds the *sequence*: if op k fails, ops
    0..k-1 are undone in reverse order, so the classifier ends bit-exact
    where it started.  A removal undone by re-insertion lands at the end of
    the install order — a behaviourally equivalent (same rules, same
    classifications) though not label-identical state, exactly like any
    remove-then-reinsert sequence.
    """

    def __init__(self, classifier) -> None:
        super().__init__()
        self.classifier = classifier
        self._dependency_index = None

    @property
    def dependency_index(self):
        """The plane's rule-overlap index, built lazily and kept incremental.

        First access builds a :class:`~repro.analysis.depindex.DependencyIndex`
        over the installed rules; every subsequent commit maintains it
        incrementally, so repeated queries (flow-cache narrowing, ``repro
        lint`` on a live plane) never pay the full rebuild again.
        """
        if self._dependency_index is None:
            from repro.analysis.depindex import DependencyIndex

            self._dependency_index = DependencyIndex(
                self.classifier.update_engine.installed_rules_in_order()
            )
        return self._dependency_index

    def program(self) -> RuleProgram:
        classifier = self.classifier
        return RuleProgram(
            version=self._version,
            rules=tuple(classifier.update_engine.installed_rules_in_order()),
            config=_program_config(
                ip_algorithm=classifier.config.ip_algorithm.value,
                combiner_mode=classifier.config.combiner_mode.value,
            ),
        )

    # -- op primitives -------------------------------------------------------
    def _apply_op(self, op: TxnOp) -> Tuple[object, TxnOp]:
        """Apply one op; returns (engine result, inverse op)."""
        classifier = self.classifier
        if op.kind == "insert":
            result = classifier.update_engine.insert_rule(op.rule)
            return result, TxnOp(kind="remove", rule_id=op.rule.rule_id)
        if op.kind == "remove":
            rule = classifier.update_engine.rules.get(op.rule_id)
            if rule is None:
                raise UpdateError(f"rule {op.rule_id} is not installed")
            result = classifier.update_engine.delete_rule(op.rule_id)
            return result, TxnOp(kind="insert", rule=rule)
        if op.kind == "reconfigure":
            # Validate both payloads before touching anything so a malformed
            # combiner value cannot strand a half-applied reconfigure.
            algorithm = IpAlgorithm(op.ip_algorithm) if op.ip_algorithm else None
            mode = CombinerMode(op.combiner) if op.combiner else None
            previous_ip = classifier.config.ip_algorithm.value
            previous_mode = classifier.config.combiner_mode.value
            reinstalled = 0
            if algorithm is not None:
                reinstalled = classifier.reconfigure(algorithm)
            if mode is not None:
                classifier.set_combiner_mode(mode)
            result = ReconfigureResult(
                ip_algorithm=op.ip_algorithm,
                combiner=op.combiner,
                reinstalled=reinstalled,
            )
            inverse = TxnOp(
                kind="reconfigure",
                ip_algorithm=previous_ip if op.ip_algorithm else None,
                combiner=previous_mode if op.combiner else None,
            )
            return result, inverse
        raise UpdateError(f"unknown transaction op kind {op.kind!r}")

    def _snapshot_marks(self) -> dict:
        """Per-engine and Rule Filter ``(identity, mutation epoch)`` marks."""
        classifier = self.classifier
        marks = {
            name: (engine, engine.mutation_epoch)
            for name, engine in classifier.engines.items()
        }
        rule_filter = classifier.rule_filter
        marks[FILTER_MARK] = (rule_filter, rule_filter.mutation_epoch)
        return marks

    def _build_scope(self, pre_marks: dict, applied: List[tuple]) -> InvalidationScope:
        """Bound the committed delta's blast radius (see :mod:`repro.core.invalidation`).

        ``applied`` holds ``(op, engine result, subject rule)`` triples in
        application order.  Structural dimensions contribute the engine's own
        :meth:`~repro.fields.base.SingleFieldEngine.invalidation_span`;
        reprioritized dimensions contribute the spec's exact value interval.
        A reconfigure op, or any engine that cannot localise its update,
        degrades the whole scope to wholesale.
        """
        scope = InvalidationScope(pre_marks=pre_marks)
        engines = self.classifier.engines
        for op, result, rule in applied:
            if op.kind == "reconfigure":
                scope.wholesale = True
                break
            specs = rule_dimension_specs(rule)
            for dimension in result.structural_dimensions:
                span = engines[dimension].invalidation_span(specs[dimension])
                if span is None:
                    scope.wholesale = True
                    break
                scope.add_span(dimension, span)
            if scope.wholesale:
                break
            for dimension in result.reprioritized_dimensions:
                scope.add_span(dimension, spec_interval(dimension, specs[dimension]))
        keys, occupancy_changed = self.classifier.rule_filter.drain_dirty()
        scope.filter_keys = keys
        scope.filter_wholesale = occupancy_changed
        scope.post_marks = self._snapshot_marks()
        return scope

    def _apply(self, delta: Delta) -> Tuple[List[object], List[TxnOp]]:
        rule_filter = self.classifier.rule_filter
        pre_marks = self._snapshot_marks()
        # Discard dirty-slot runs left by mutations outside this plane; the
        # epoch handoff would reject a scope built on them anyway, they would
        # only bloat this commit's.
        rule_filter.drain_dirty()
        results: List[object] = []
        undo: List[TxnOp] = []
        applied: List[tuple] = []
        try:
            for op in delta.ops:
                result, inverse = self._apply_op(op)
                results.append(result)
                undo.append(inverse)
                # The subject rule (a remove's comes back on the inverse op)
                # keys the per-dimension spans of the invalidation scope.
                applied.append((op, result, op.rule if op.kind == "insert" else inverse.rule))
        except Exception:
            # Unwind the applied prefix in reverse order.  The inverse ops
            # replay through the same primitives; if one of *those* fails the
            # engine state is genuinely corrupt and we say so loudly.
            try:
                for inverse in reversed(undo):
                    self._apply_op(inverse)
            except Exception as rollback_error:  # pragma: no cover - defensive
                raise UpdateError(
                    "transaction rollback failed; classifier state may be "
                    f"inconsistent: {rollback_error}"
                ) from rollback_error
            rule_filter.drain_dirty()
            raise
        # Committed: hand every attached cache the exact blast radius so it
        # can invalidate surgically instead of tripping its wholesale epoch
        # flush at the next batch.  Rollbacks skip this on purpose — their
        # epoch bumps trigger the conservative flush, which is always safe.
        scope = self._build_scope(pre_marks, applied)
        flow_cache = getattr(self.classifier, "flow_cache", None)
        if flow_cache is not None:
            flow_cache.note_commit(delta, self._dependency_index)
        if self._dependency_index is not None:
            # Maintained after the flow-cache notification: cached entries
            # were decided by pre-commit rules, so narrowing queries must run
            # against the pre-commit index.
            for op in delta.ops:
                if op.kind == "insert":
                    self._dependency_index.add_rule(op.rule)
                elif op.kind == "remove":
                    self._dependency_index.remove_rule(op.rule_id)
        fast_path = getattr(self.classifier, "_fast_path", None)
        if fast_path is not None:
            fast_path.note_commit(scope)
        return results, list(reversed(undo))


class RebuildControl(ControlPlane):
    """Control plane of the build-once baselines (rebuild per commit).

    The target rule set is staged from the transaction first; the structure
    is rebuilt exactly once and swapped in only after a successful build, so
    all-or-nothing semantics hold by construction.  Runtime reconfigure ops
    are rejected (the baselines have no ``IPalg_s``); the rejection happens
    before any rebuild, leaving the engine untouched.
    """

    def __init__(self, adapter) -> None:
        super().__init__()
        self.adapter = adapter

    def program(self) -> RuleProgram:
        engine = self.adapter.engine
        return RuleProgram(
            version=self._version,
            rules=tuple(engine.ruleset.rules()),
            config=_program_config(algorithm=engine.name, update_model="rebuild"),
        )

    def _apply(self, delta: Delta) -> Tuple[List[object], List[TxnOp]]:
        adapter = self.adapter
        staged = RuleSet(adapter.engine.ruleset.rules(), name=adapter.engine.ruleset.name)
        results: List[object] = []
        undo: List[TxnOp] = []
        for op in delta.ops:
            if op.kind == "insert":
                staged.add(op.rule)
                results.append(op.rule.rule_id)
                undo.append(TxnOp(kind="remove", rule_id=op.rule.rule_id))
            elif op.kind == "remove":
                removed = staged.remove(op.rule_id)
                results.append(op.rule_id)
                undo.append(TxnOp(kind="insert", rule=removed))
            elif op.kind == "reconfigure":
                raise UpdateError(
                    f"baseline {adapter.name!r} rebuilds from scratch and has no "
                    "runtime reconfiguration; reconfigure ops only apply to the "
                    "configurable architecture"
                )
            else:
                raise UpdateError(f"unknown transaction op kind {op.kind!r}")
        engine = adapter._rebuild_factory(staged)
        engine.ensure_built()
        adapter.engine = engine
        return results, list(reversed(undo))


# ---------------------------------------------------------------------------
# Delta files (the CLI's `repro update` input format)
# ---------------------------------------------------------------------------

def parse_delta_lines(lines: Iterable[str], program: RuleProgram) -> Delta:
    """Parse a rule-delta file into a :class:`Delta` against ``program``.

    Line format (blank lines and ``#`` comments ignored)::

        - <rule_id>                      remove an installed rule
        + @<classbench rule line>        insert a rule (id/priority auto-assigned)
        ! ip_algorithm=<mbt|bst>         reconfigure the IP engines
        ! combiner=<cross_product|first_label>

    Inserted rules receive the next free rule id and the next (worst)
    priority after everything in ``program`` — a delta file describes *what*
    to match, the control plane owns the numbering.
    """
    from repro.rules.parser import parse_classbench_line

    next_id = max((rule.rule_id for rule in program.rules), default=-1) + 1
    next_priority = max((rule.priority for rule in program.rules), default=-1) + 1
    ops: List[TxnOp] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tag, _, body = line.partition(" ")
        body = body.strip()
        if tag == "-":
            try:
                ops.append(TxnOp(kind="remove", rule_id=int(body)))
            except ValueError as exc:
                raise UpdateError(f"delta line {lineno}: bad rule id {body!r}") from exc
        elif tag == "+":
            rule = parse_classbench_line(body, rule_id=next_id, priority=next_priority)
            next_id += 1
            next_priority += 1
            ops.append(TxnOp(kind="insert", rule=rule))
        elif tag == "!":
            key, _, value = body.partition("=")
            key, value = key.strip(), value.strip()
            if key == "ip_algorithm":
                try:
                    ops.append(TxnOp(kind="reconfigure", ip_algorithm=IpAlgorithm(value).value))
                except ValueError as exc:
                    raise UpdateError(
                        f"delta line {lineno}: bad ip_algorithm {value!r} "
                        f"(choose from {[a.value for a in IpAlgorithm]})"
                    ) from exc
            elif key == "combiner":
                try:
                    ops.append(TxnOp(kind="reconfigure", combiner=CombinerMode(value).value))
                except ValueError as exc:
                    raise UpdateError(
                        f"delta line {lineno}: bad combiner {value!r} "
                        f"(choose from {[m.value for m in CombinerMode]})"
                    ) from exc
            else:
                raise UpdateError(
                    f"delta line {lineno}: unknown setting {key!r} "
                    "(expected ip_algorithm or combiner)"
                )
        else:
            raise UpdateError(
                f"delta line {lineno}: expected '-', '+' or '!' prefix, got {line!r}"
            )
    return Delta(tuple(ops))


def load_delta_file(path, program: RuleProgram) -> Delta:
    """Read a rule-delta file (see :func:`parse_delta_lines`)."""
    from pathlib import Path

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise UpdateError(f"cannot read delta file {path}: {exc}") from exc
    return parse_delta_lines(text.splitlines(), program)

"""Adapters presenting baseline classifiers through the unified protocol.

The baselines keep their research-faithful
``match_packet() -> ClassificationOutcome`` primitive;
:class:`BaselineAdapter` lifts any of them into the
:class:`~repro.api.protocol.PacketClassifier` protocol — unified
:class:`~repro.core.result.Classification` results, batch classification and
rule install/remove via structure rebuild (the baselines are build-once
algorithms: the paper's section V.A update-cost comparison is exactly that a
rule change forces them to reconstruct, while the configurable architecture
updates incrementally).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.baselines.base import BaselineClassifier
from repro.core.result import BatchResult, Classification, ClassifierStats
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["BaselineAdapter"]


class BaselineAdapter:
    """Wrap a :class:`BaselineClassifier` into the unified protocol."""

    def __init__(
        self,
        engine: BaselineClassifier,
        name: Optional[str] = None,
        rebuild: Optional[Callable[[RuleSet], BaselineClassifier]] = None,
    ) -> None:
        self.engine = engine
        #: Registry name when created through the registry; the engine's
        #: display name for direct wraps (pass ``name=`` to override).
        self.name = name or engine.name
        # Reconstruction after a rule change replays the constructor options
        # the engine recorded, so a tuned engine stays tuned across rebuilds
        # whether it came from the registry, create(), or a direct wrap.
        self._rebuild_factory = rebuild or (
            lambda ruleset: type(self.engine).create(ruleset, **self.engine._create_options)
        )
        engine.ensure_built()

    # -- classification ------------------------------------------------------
    def classify(self, packet: PacketHeader) -> Classification:
        """Classify one packet with the wrapped baseline."""
        return Classification.from_outcome(self.engine.match_packet(packet))

    def classify_batch(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Classify every packet of ``packets``."""
        return BatchResult(tuple(self.classify(packet) for packet in packets))

    # -- updates (rebuild path) ----------------------------------------------
    def _rebuild(self, ruleset: RuleSet) -> None:
        self.engine = self._rebuild_factory(ruleset)
        self.engine.ensure_built()

    def install(self, rule: Rule) -> int:
        """Install one rule by rebuilding the structure (returns the rule id)."""
        ruleset = RuleSet(self.engine.ruleset.rules(), name=self.engine.ruleset.name)
        ruleset.add(rule)
        self._rebuild(ruleset)
        return rule.rule_id

    def remove(self, rule_id: int) -> int:
        """Remove one rule by rebuilding the structure (returns the rule id)."""
        ruleset = RuleSet(self.engine.ruleset.rules(), name=self.engine.ruleset.name)
        ruleset.remove(rule_id)
        self._rebuild(ruleset)
        return rule_id

    # -- introspection -------------------------------------------------------
    def memory_bits(self) -> int:
        """Total size of the wrapped search structure in bits."""
        return self.engine.memory_bits()

    def stats(self) -> ClassifierStats:
        """Unified snapshot of the wrapped baseline."""
        return ClassifierStats(
            name=self.name,
            rules=len(self.engine.ruleset),
            memory_bits=self.engine.memory_bits(),
            details={"algorithm": self.engine.name, "update_model": "rebuild"},
        )

    def __repr__(self) -> str:
        return f"BaselineAdapter({self.engine.name}, rules={len(self.engine.ruleset)})"

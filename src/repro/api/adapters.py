"""Adapters presenting baseline classifiers through the unified protocol.

The baselines keep their research-faithful
``match_packet() -> ClassificationOutcome`` primitive;
:class:`BaselineAdapter` lifts any of them into the
:class:`~repro.api.protocol.PacketClassifier` protocol — unified
:class:`~repro.core.result.Classification` results, batch classification and
transactional mutation through the :mod:`repro.api.control` surface: the
adapter's :attr:`~BaselineAdapter.control` is a
:class:`~repro.api.control.RebuildControl`, so a committed transaction
stages the target rule set and rebuilds the structure exactly once (the
baselines are build-once algorithms: the paper's section V.A update-cost
comparison is exactly that a rule change forces them to reconstruct, while
the configurable architecture updates incrementally).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.api.control import RebuildControl
from repro.baselines.base import BaselineClassifier
from repro.core.result import BatchResult, Classification, ClassifierStats
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["BaselineAdapter"]


class BaselineAdapter:
    """Wrap a :class:`BaselineClassifier` into the unified protocol."""

    def __init__(
        self,
        engine: BaselineClassifier,
        name: Optional[str] = None,
        rebuild: Optional[Callable[[RuleSet], BaselineClassifier]] = None,
    ) -> None:
        self.engine = engine
        #: Registry name when created through the registry; the engine's
        #: display name for direct wraps (pass ``name=`` to override).
        self.name = name or engine.name
        # Reconstruction after a rule change replays the constructor options
        # the engine recorded, so a tuned engine stays tuned across rebuilds
        # whether it came from the registry, create(), or a direct wrap.
        self._rebuild_factory = rebuild or (
            lambda ruleset: type(self.engine).create(ruleset, **self.engine._create_options)
        )
        self._control: Optional[RebuildControl] = None
        engine.ensure_built()

    @property
    def control(self) -> RebuildControl:
        """The transactional mutation surface of this baseline.

        The sole supported mutation path (see :mod:`repro.api.control`):
        commits rebuild the wrapped structure exactly once per transaction,
        all-or-nothing.
        """
        if self._control is None:
            self._control = RebuildControl(self)
        return self._control

    # -- classification ------------------------------------------------------
    def classify(self, packet: PacketHeader) -> Classification:
        """Classify one packet with the wrapped baseline."""
        return Classification.from_outcome(self.engine.match_packet(packet))

    def classify_batch(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Classify every packet of ``packets``."""
        return BatchResult(tuple(self.classify(packet) for packet in packets))

    # -- updates (rebuild path) ----------------------------------------------
    def install(self, rule: Rule) -> int:
        """Install one rule (single-op commit; returns the rule id).

        Internal/bootstrap primitive; multi-op mutations should stage one
        transaction through :attr:`control` so the structure rebuilds once.
        """
        self.control.begin().insert(rule).commit()
        return rule.rule_id

    def remove(self, rule_id: int) -> int:
        """Remove one rule (single-op commit; returns the rule id).

        Internal/bootstrap primitive; see :meth:`install`.
        """
        self.control.begin().remove(rule_id).commit()
        return rule_id

    # -- introspection -------------------------------------------------------
    def memory_bits(self) -> int:
        """Total size of the wrapped search structure in bits."""
        return self.engine.memory_bits()

    def stats(self) -> ClassifierStats:
        """Unified snapshot of the wrapped baseline."""
        return ClassifierStats(
            name=self.name,
            rules=len(self.engine.ruleset),
            memory_bits=self.engine.memory_bits(),
            details={"algorithm": self.engine.name, "update_model": "rebuild"},
        )

    def __repr__(self) -> str:
        return f"BaselineAdapter({self.engine.name}, rules={len(self.engine.ruleset)})"

"""String-keyed classifier registry.

The paper's evaluation is a head-to-head sweep of one architecture against
five classic algorithms (Table I); the registry makes that sweep a loop over
names instead of per-classifier glue:

* :func:`register_classifier` — decorator registering an engine under a name.
  Applied to a :class:`~repro.baselines.base.BaselineClassifier` subclass it
  registers a factory that builds the baseline through the
  :meth:`~repro.baselines.base.BaselineClassifier.create` path and wraps it
  in a :class:`~repro.api.adapters.BaselineAdapter`; applied to a function it
  registers the function itself as the factory.
* :func:`create_classifier` — ``create_classifier("hypercuts", ruleset)``
  returns a ready :class:`~repro.api.protocol.PacketClassifier`.
* :func:`available_classifiers` — the registered names, for sweeps.

The configurable architecture registers itself under ``"configurable"`` in
:mod:`repro.core.classifier`; the baselines register in their own modules.
Registration happens as those modules import; :func:`_ensure_populated`
imports them on first registry use so lookups work regardless of which
corner of the package the caller imported first.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Tuple

from repro.exceptions import ConfigurationError
from repro.rules.ruleset import RuleSet

__all__ = [
    "register_classifier",
    "create_classifier",
    "available_classifiers",
    "classifier_description",
    "validate_classifier_names",
    "UnknownClassifierError",
]


class UnknownClassifierError(ConfigurationError):
    """Raised when a classifier name is not in the registry."""


class _RegistryEntry(NamedTuple):
    name: str
    factory: Callable[..., object]
    description: str


_REGISTRY: Dict[str, _RegistryEntry] = {}


def register_classifier(name: str, *, description: str = "") -> Callable:
    """Class/function decorator adding an engine to the registry under ``name``.

    Usage::

        @register_classifier("hypercuts", description="decision-tree cuts")
        class HyperCutsClassifier(BaselineClassifier): ...

        @register_classifier("configurable")
        def _make(ruleset, **options) -> PacketClassifier: ...
    """

    def decorate(target):
        if name in _REGISTRY:
            raise ConfigurationError(f"classifier {name!r} registered twice")
        factory = _baseline_factory(name, target) if _is_baseline_class(target) else target
        doc = description
        if not doc and target.__doc__:
            doc = target.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = _RegistryEntry(name=name, factory=factory, description=doc)
        return target

    return decorate


def _is_baseline_class(target) -> bool:
    from repro.baselines.base import BaselineClassifier

    return isinstance(target, type) and issubclass(target, BaselineClassifier)


def _baseline_factory(name: str, classifier_type) -> Callable[..., object]:
    def factory(ruleset: RuleSet, **options):
        # Imported here, not at decoration time: baseline modules register
        # themselves while repro.api.adapters may still be mid-import.
        from repro.api.adapters import BaselineAdapter

        engine = classifier_type.create(ruleset, **options)
        return BaselineAdapter(
            engine,
            name=name,
            rebuild=lambda new_ruleset: classifier_type.create(new_ruleset, **options),
        )

    return factory


def _ensure_populated() -> None:
    """Import the modules whose decorators populate the registry."""
    import repro.baselines  # noqa: F401  (baseline @register_classifier side effects)
    import repro.core.classifier  # noqa: F401  ("configurable" registration)


def _unknown_error(names) -> UnknownClassifierError:
    known = ", ".join(sorted(_REGISTRY)) or "<none>"
    listed = ", ".join(repr(name) for name in names)
    plural = "s" if len(names) != 1 else ""
    return UnknownClassifierError(
        f"unknown classifier{plural} {listed}; registered: {known}"
    )


def validate_classifier_names(names) -> None:
    """Raise :class:`UnknownClassifierError` naming every unregistered entry.

    Use before an expensive build loop so a typo fails fast instead of after
    minutes of construction.
    """
    _ensure_populated()
    unknown = [name for name in names if name not in _REGISTRY]
    if unknown:
        raise _unknown_error(unknown)


def create_classifier(name: str, ruleset: RuleSet, **options):
    """Build a ready-to-use classifier registered under ``name``.

    ``options`` are forwarded to the registered factory (baseline ``__init__``
    options, or the configurable architecture's config knobs).
    """
    _ensure_populated()
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise _unknown_error([name]) from None
    return entry.factory(ruleset, **options)


def available_classifiers() -> Tuple[str, ...]:
    """Names of every registered classifier, sorted."""
    _ensure_populated()
    return tuple(sorted(_REGISTRY))


def classifier_description(name: str) -> str:
    """One-line description of a registered classifier."""
    _ensure_populated()
    if name not in _REGISTRY:
        raise _unknown_error([name])
    return _REGISTRY[name].description

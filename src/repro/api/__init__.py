"""repro.api — the canonical entry point to the package.

One uniform classification surface over every engine in the library::

    from repro.api import available_classifiers, create_classifier

    classifier = create_classifier("configurable", ruleset, ip_algorithm="bst")
    result = classifier.classify(packet)           # -> Classification
    batch = classifier.classify_batch(trace)       # -> BatchResult

    for name in available_classifiers():           # sweeps are one loop
        print(name, create_classifier(name, ruleset).classify_batch(trace).hit_ratio)

Building blocks:

* :class:`~repro.api.protocol.PacketClassifier` — the structural protocol
  (``classify``, ``classify_batch``, ``control``, ``memory_bits``,
  ``stats``) every engine satisfies;
* :mod:`repro.api.control` — the transactional control plane: every engine
  exposes ``.control`` (a :class:`~repro.api.control.ControlPlane`), live
  mutations are staged as :class:`~repro.api.control.Txn` transactions and
  committed all-or-nothing into versioned
  :class:`~repro.api.control.RuleProgram` snapshots::

      txn = classifier.control.begin()
      txn.insert(rule).remove(17).reconfigure(ip_algorithm="bst")
      commit = txn.commit()          # -> CommitResult (version, epoch, inverse)

* :func:`~repro.api.registry.create_classifier` /
  :func:`~repro.api.registry.available_classifiers` /
  :func:`~repro.api.registry.register_classifier` — the name-keyed registry;
* :class:`~repro.api.builder.ConfigBuilder` (``ClassifierConfig.builder()``)
  — fluent configuration of the paper's architecture;
* :class:`~repro.api.session.ClassificationSession` — chunked streaming over
  any engine with uniform statistics.
"""

from repro.api.adapters import BaselineAdapter
from repro.api.builder import ConfigBuilder
from repro.api.control import (
    CommitResult,
    ControlPlane,
    Delta,
    RuleProgram,
    Txn,
    TxnOp,
    load_delta_file,
    parse_delta_lines,
)
from repro.api.protocol import (
    BatchResult,
    Classification,
    ClassifierStats,
    PacketClassifier,
)
from repro.api.registry import (
    UnknownClassifierError,
    available_classifiers,
    classifier_description,
    create_classifier,
    register_classifier,
    validate_classifier_names,
)
from repro.api.session import ClassificationSession, SessionStats

__all__ = [
    "PacketClassifier",
    "Classification",
    "BatchResult",
    "ClassifierStats",
    "BaselineAdapter",
    "ConfigBuilder",
    "ClassificationSession",
    "SessionStats",
    "ControlPlane",
    "Txn",
    "TxnOp",
    "Delta",
    "RuleProgram",
    "CommitResult",
    "parse_delta_lines",
    "load_delta_file",
    "register_classifier",
    "create_classifier",
    "available_classifiers",
    "classifier_description",
    "validate_classifier_names",
    "UnknownClassifierError",
]

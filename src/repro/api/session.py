"""Streaming classification sessions.

A :class:`ClassificationSession` feeds packet traces — lists, generators,
live feeds — through any :class:`~repro.api.protocol.PacketClassifier` in
fixed-size chunks and aggregates throughput/latency/memory statistics
uniformly across engines.  Aggregation is incremental (running counters):
:meth:`ClassificationSession.run` retains nothing per packet, so arbitrarily
long streams run in constant memory, while :meth:`ClassificationSession.feed`
additionally returns the fed packets' results for callers that want them.
This is the unified runner behind the CLI's
``classify``/``sweep`` subcommands and the scale-oriented harnesses: because
it only speaks the protocol, swapping the paper's architecture for any
baseline (or any future sharded/async engine) is a registry name change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, NamedTuple, Optional, Sequence

from repro.api.protocol import PacketClassifier
from repro.core.result import BatchResult, Classification
from repro.exceptions import ConfigurationError
from repro.rules.packet import PacketHeader

__all__ = [
    "ClassificationSession",
    "SessionStats",
    "BatchCounters",
    "RunningCounters",
    "iter_chunks",
    "measure_results",
]


def iter_chunks(
    packets: Iterable[PacketHeader], size: int
) -> Iterator[List[PacketHeader]]:
    """Lazily batch an iterable into ``size``-packet chunks (tail included).

    The chunker behind the synchronous streaming runner
    (:class:`ClassificationSession`).  The dispatch chunkers of
    :mod:`repro.perf.parallel` (``_iter_dispatch_chunks`` and its async
    twin) mirror this flush rule for header streams — change them in
    lock-step.
    """
    chunk: List[PacketHeader] = []
    for packet in packets:
        chunk.append(packet)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class BatchCounters(NamedTuple):
    """Statistics fold of one batch of classifications.

    The single accounting definition shared by
    :class:`ClassificationSession` and the :mod:`repro.perf.parallel`
    workers (which ship these counters back across process boundaries), so
    merged parallel statistics cannot drift from single-session statistics.
    """

    packets: int
    matched: int
    truncated: int
    access_sum: int
    access_worst: int
    latency_sum: int
    latency_count: int
    latency_worst: int


def measure_results(results: Sequence[Classification]) -> BatchCounters:
    """Fold a batch's classifications into :class:`BatchCounters`."""
    matched = 0
    truncated = 0
    access_sum = 0
    access_worst = 0
    latency_sum = 0
    latency_count = 0
    latency_worst = 0
    for result in results:
        if result.matched:
            matched += 1
        if result.truncated:
            truncated += 1
        accesses = result.memory_accesses
        access_sum += accesses
        if accesses > access_worst:
            access_worst = accesses
        latency = result.latency_cycles
        if latency is not None:
            latency_sum += latency
            latency_count += 1
            if latency > latency_worst:
                latency_worst = latency
    return BatchCounters(
        packets=len(results),
        matched=matched,
        truncated=truncated,
        access_sum=access_sum,
        access_worst=access_worst,
        latency_sum=latency_sum,
        latency_count=latency_count,
        latency_worst=latency_worst,
    )


class RunningCounters:
    """Mutable running fold of :class:`BatchCounters` chunks.

    The one accounting accumulator behind every streaming runner:
    :class:`ClassificationSession` folds its chunks into one instance, and
    :class:`~repro.perf.parallel.ParallelSession` keeps one per worker and
    merges them — so sharded, asynchronous and single-session statistics all
    share the same arithmetic and cannot drift apart.
    """

    __slots__ = (
        "packets", "matched", "truncated", "chunks", "access_sum",
        "access_worst", "latency_sum", "latency_count", "latency_worst",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.packets = 0
        self.matched = 0
        self.truncated = 0
        self.chunks = 0
        self.access_sum = 0
        self.access_worst = 0
        self.latency_sum = 0
        self.latency_count = 0
        self.latency_worst = 0

    def absorb(self, counters: BatchCounters) -> None:
        """Fold one chunk's :class:`BatchCounters` in (counts one chunk)."""
        self.packets += counters.packets
        self.matched += counters.matched
        self.truncated += counters.truncated
        self.chunks += 1
        self.access_sum += counters.access_sum
        self.access_worst = max(self.access_worst, counters.access_worst)
        self.latency_sum += counters.latency_sum
        self.latency_count += counters.latency_count
        self.latency_worst = max(self.latency_worst, counters.latency_worst)

    def merge(self, other: "RunningCounters") -> None:
        """Fold another accumulator in (sums counts, maxes worst cases)."""
        self.packets += other.packets
        self.matched += other.matched
        self.truncated += other.truncated
        self.chunks += other.chunks
        self.access_sum += other.access_sum
        self.access_worst = max(self.access_worst, other.access_worst)
        self.latency_sum += other.latency_sum
        self.latency_count += other.latency_count
        self.latency_worst = max(self.latency_worst, other.latency_worst)

    def to_stats(
        self,
        classifier: str,
        memory_bits: int,
        flow: Optional[Mapping[str, int]] = None,
    ) -> "SessionStats":
        """Render the running counters as immutable :class:`SessionStats`.

        ``flow`` optionally carries a flow-cache counter snapshot (the
        ``lookups`` / ``hits`` / ``evictions`` keys of
        :meth:`repro.perf.flowcache.FlowCache.stats`).
        """
        flow = flow or {}
        return SessionStats(
            classifier=classifier,
            packets=self.packets,
            matched=self.matched,
            chunks=self.chunks,
            average_memory_accesses=(
                self.access_sum / self.packets if self.packets else 0.0
            ),
            worst_memory_accesses=self.access_worst,
            average_latency_cycles=(
                self.latency_sum / self.latency_count if self.latency_count else None
            ),
            worst_latency_cycles=self.latency_worst if self.latency_count else None,
            memory_bits=memory_bits,
            truncated_lookups=self.truncated,
            flow_lookups=int(flow.get("lookups", 0)),
            flow_hits=int(flow.get("hits", 0)),
            flow_evictions=int(flow.get("evictions", 0)),
        )


@dataclass(frozen=True)
class SessionStats:
    """Aggregate statistics of one classification session."""

    classifier: str
    packets: int
    matched: int
    chunks: int
    average_memory_accesses: float
    worst_memory_accesses: int
    average_latency_cycles: Optional[float]
    worst_latency_cycles: Optional[int]
    memory_bits: int
    #: Packets whose lookup was probe-budget truncated (see
    #: :class:`~repro.core.label_combiner.CombinerOutcome`) — a non-zero value
    #: warns that some classifications may be inexact.
    truncated_lookups: int = 0
    #: Flow-cache serving counters (all zero when no flow cache is attached):
    #: lookups served by the tier, exact-match hits, and entries evicted
    #: (timeout + capacity).
    flow_lookups: int = 0
    flow_hits: int = 0
    flow_evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of streamed packets that hit a rule."""
        return self.matched / self.packets if self.packets else 0.0

    @property
    def flow_hit_rate(self) -> float:
        """Fraction of flow-cache lookups served from the exact-match tier."""
        return self.flow_hits / self.flow_lookups if self.flow_lookups else 0.0

    @property
    def memory_megabits(self) -> float:
        """Engine structure size in Mbit."""
        return self.memory_bits / 1e6

    @classmethod
    def merge(cls, parts: Sequence["SessionStats"]) -> "SessionStats":
        """Aggregate the statistics of several (sharded) sessions into one.

        Counts sum; averages are packet-weighted; worst cases take the
        maximum; ``memory_bits`` sums, since a multi-pipeline deployment
        replicates the search structures per worker.
        """
        parts = list(parts)
        if not parts:
            raise ConfigurationError("cannot merge an empty list of session stats")
        names = {part.classifier for part in parts}
        name = names.pop() if len(names) == 1 else "+".join(sorted(names))
        if len(parts) > 1:
            name = f"{name}x{len(parts)}"
        packets = sum(part.packets for part in parts)
        latency_parts = [part for part in parts if part.average_latency_cycles is not None]
        latency_packets = sum(part.packets for part in latency_parts)
        return cls(
            classifier=name,
            packets=packets,
            matched=sum(part.matched for part in parts),
            chunks=sum(part.chunks for part in parts),
            average_memory_accesses=(
                sum(part.average_memory_accesses * part.packets for part in parts) / packets
                if packets
                else 0.0
            ),
            worst_memory_accesses=max(part.worst_memory_accesses for part in parts),
            average_latency_cycles=(
                sum(p.average_latency_cycles * p.packets for p in latency_parts) / latency_packets
                if latency_packets
                else None
            ),
            worst_latency_cycles=(
                max(p.worst_latency_cycles for p in latency_parts) if latency_parts else None
            ),
            memory_bits=sum(part.memory_bits for part in parts),
            truncated_lookups=sum(part.truncated_lookups for part in parts),
            flow_lookups=sum(part.flow_lookups for part in parts),
            flow_hits=sum(part.flow_hits for part in parts),
            flow_evictions=sum(part.flow_evictions for part in parts),
        )


class ClassificationSession:
    """Feed traces through one classifier in chunks and aggregate stats."""

    def __init__(self, classifier: PacketClassifier, chunk_size: int = 256) -> None:
        if chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
        self.classifier = classifier
        self.chunk_size = chunk_size
        self.reset()

    # -- streaming -----------------------------------------------------------
    def _consume(
        self, packets: Iterable[PacketHeader], retain: bool
    ) -> Optional[List[Classification]]:
        fed: Optional[List[Classification]] = [] if retain else None
        for chunk in iter_chunks(packets, self.chunk_size):
            batch = self.classifier.classify_batch(chunk)
            self._counters.absorb(measure_results(batch.results))
            if fed is not None:
                fed.extend(batch.results)
        return fed

    def feed(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Stream ``packets`` through the classifier; returns this feed's batch.

        Accepts any iterable — including generators — so traces never need to
        be materialised by the caller.  Only running counters persist across
        feeds (see :meth:`stats`); the returned :class:`BatchResult` holds
        this feed's results alone.
        """
        return BatchResult(tuple(self._consume(packets, retain=True)))

    def run(self, packets: Iterable[PacketHeader]) -> SessionStats:
        """Feed one trace and return the session statistics.

        Unlike :meth:`feed` this retains nothing per packet — only the
        running counters — so arbitrarily long streams run in constant
        memory.
        """
        self._consume(packets, retain=False)
        return self.stats()

    def reset(self) -> None:
        """Zero the aggregate counters (the classifier keeps its rules)."""
        self._counters = RunningCounters()

    # -- aggregation ---------------------------------------------------------
    def stats(self) -> SessionStats:
        """Aggregate statistics over everything streamed so far.

        When the classifier carries a flow cache its serving counters ride
        along (``flow_lookups`` / ``flow_hits`` / ``flow_evictions`` and the
        derived :attr:`SessionStats.flow_hit_rate`).
        """
        flow_cache = getattr(self.classifier, "flow_cache", None)
        return self._counters.to_stats(
            self.classifier.name,
            self.classifier.memory_bits(),
            flow=flow_cache.stats() if flow_cache is not None else None,
        )

    def __repr__(self) -> str:
        return (
            f"ClassificationSession({self.classifier.name}, "
            f"chunk_size={self.chunk_size}, packets={self._counters.packets})"
        )

"""The unified packet-classification protocol.

Every classification engine in the package — the paper's configurable
architecture and all the baseline algorithms — satisfies the structural
:class:`PacketClassifier` protocol: one packet in, one engine-independent
:class:`~repro.core.result.Classification` out, plus batch classification,
a transactional :attr:`~PacketClassifier.control` plane
(:class:`~repro.api.control.ControlPlane` — the sole supported mutation
path), and uniform memory/stats introspection.  Experiments, the CLI and
the streaming :class:`~repro.api.session.ClassificationSession` are all
written against this protocol, so a new engine only needs a registry entry
(:func:`~repro.api.registry.register_classifier`) to join every sweep.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.api.control import ControlPlane
from repro.core.result import BatchResult, Classification, ClassifierStats
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule

__all__ = ["PacketClassifier", "Classification", "BatchResult", "ClassifierStats"]


@runtime_checkable
class PacketClassifier(Protocol):
    """Structural protocol every registered classification engine satisfies."""

    #: Registry name of the engine (e.g. ``"configurable"``, ``"hypercuts"``).
    name: str

    def classify(self, packet: PacketHeader) -> Classification:
        """Classify one packet and return the unified outcome."""

    def classify_batch(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Classify every packet of ``packets`` and return the batch record."""

    @property
    def control(self) -> ControlPlane:
        """The transactional mutation surface (begin()/commit() transactions)."""

    def install(self, rule: Rule) -> object:
        """Install one rule (internal bootstrap primitive; prefer ``control``)."""

    def remove(self, rule_id: int) -> object:
        """Remove one installed rule by id (internal; prefer ``control``)."""

    def memory_bits(self) -> int:
        """Total size of the search structures in bits."""

    def stats(self) -> ClassifierStats:
        """Engine-independent snapshot of the classifier."""

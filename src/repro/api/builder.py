"""Fluent builder for :class:`~repro.core.config.ClassifierConfig`.

Replaces scattered keyword plumbing with a chainable configuration surface::

    config = (ClassifierConfig.builder()
              .ip_algorithm("bst")
              .combiner("first_label")
              .provisioning(rule_filter_entries=16384)
              .clock_mhz(200.0)
              .build())

Every setter accepts either the typed enum/object or its plain-string /
keyword spelling, so CLI layers and notebooks can drive the architecture
without importing the enums.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple, Union

from repro.core.config import (
    ClassifierConfig,
    CombinerMode,
    IpAlgorithm,
    MemoryProvisioning,
)
from repro.exceptions import ConfigurationError
from repro.hardware.hash_unit import LabelKeyLayout

__all__ = ["ConfigBuilder"]


class ConfigBuilder:
    """Chainable builder producing an immutable :class:`ClassifierConfig`."""

    def __init__(self, base: Optional[ClassifierConfig] = None) -> None:
        self._config = base or ClassifierConfig()

    # -- knobs ---------------------------------------------------------------
    def ip_algorithm(self, algorithm: Union[str, IpAlgorithm]) -> "ConfigBuilder":
        """Select the ``IPalg_s`` position (``"mbt"`` or ``"bst"``)."""
        if isinstance(algorithm, str):
            try:
                algorithm = IpAlgorithm(algorithm.lower())
            except ValueError:
                raise ConfigurationError(
                    f"unknown IP algorithm {algorithm!r}; "
                    f"expected one of {[a.value for a in IpAlgorithm]}"
                ) from None
        self._config = replace(self._config, ip_algorithm=algorithm)
        return self

    def combiner(self, mode: Union[str, CombinerMode]) -> "ConfigBuilder":
        """Select the label combination mode (``"first_label"``/``"cross_product"``)."""
        if isinstance(mode, str):
            try:
                mode = CombinerMode(mode.lower())
            except ValueError:
                raise ConfigurationError(
                    f"unknown combiner mode {mode!r}; "
                    f"expected one of {[m.value for m in CombinerMode]}"
                ) from None
        self._config = replace(self._config, combiner_mode=mode)
        return self

    def provisioning(
        self, provisioning: Optional[MemoryProvisioning] = None, **overrides
    ) -> "ConfigBuilder":
        """Set the provisioned memory geometry, whole or by field overrides."""
        if provisioning is not None and overrides:
            raise ConfigurationError("pass either a MemoryProvisioning or field overrides")
        if provisioning is None:
            provisioning = replace(self._config.provisioning, **overrides)
        self._config = replace(self._config, provisioning=provisioning)
        return self

    def label_layout(self, layout: LabelKeyLayout) -> "ConfigBuilder":
        """Set the per-dimension label bit widths."""
        self._config = replace(self._config, label_layout=layout)
        return self

    def mbt_strides(self, strides: Tuple[int, ...]) -> "ConfigBuilder":
        """Set the MBT segment strides (must sum to 16)."""
        self._config = replace(self._config, mbt_strides=tuple(strides))
        return self

    def mbt_cycles_per_level(self, cycles: int) -> "ConfigBuilder":
        """Set the per-level MBT read cost in cycles."""
        self._config = replace(self._config, mbt_cycles_per_level=cycles)
        return self

    def clock_mhz(self, mhz: float) -> "ConfigBuilder":
        """Set the device clock frequency."""
        self._config = replace(self._config, clock_mhz=mhz)
        return self

    def min_packet_bytes(self, size: int) -> "ConfigBuilder":
        """Set the minimum packet size used for line-rate throughput."""
        self._config = replace(self._config, min_packet_bytes=size)
        return self

    # -- terminal ------------------------------------------------------------
    def build(self) -> ClassifierConfig:
        """Return the accumulated immutable configuration."""
        return self._config

    def __repr__(self) -> str:
        return f"ConfigBuilder({self._config!r})"

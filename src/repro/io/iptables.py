"""Bidirectional iptables-save ↔ internal rule model translation.

Real firewall configurations live in ``iptables-save`` dumps; this module
imports the supported subset of that format into
:class:`~repro.rules.ruleset.RuleSet` objects and exports any rule source
(:class:`~repro.rules.ruleset.RuleSet`, a
:class:`~repro.api.control.RuleProgram` snapshot, or a plain rule iterable)
back to loadable iptables-save text — the interop layer the ROADMAP's
real-workload item asks for, following the jkoeppeler pcap-utils
ClassBench↔iptables converter (SNIPPETS.md §3), including its
range-expansion pitfalls.

Import (:func:`parse_iptables_save` / :func:`load_iptables_file`):

* ``-s``/``-d`` CIDR prefixes, ``-p`` by name or number (``all`` = wildcard);
* ``--sport``/``--dport`` single ports, ``lo:hi`` ranges and the open-ended
  ``:hi`` / ``lo:`` forms (normalised to ``0:hi`` / ``lo:65535`` — the
  port-range representation pitfall);
* ``-m multiport --sports/--dports`` comma lists — every list element (port
  or range) becomes its own rule, and when both directions carry lists the
  cross product is emitted, exactly the expansion real converters perform;
* ``-j`` targets mapped onto :class:`~repro.rules.rule.RuleAction`
  (table below), ``-m comment`` preserved (``rid:<n>`` comments written by
  the exporter restore the source rule id into ``metadata``);
* everything else — negation, interfaces, conntrack state, tcp flags,
  non-``filter`` tables, unknown matches/targets — rejected with a
  :class:`~repro.exceptions.TraceIOError` naming the line number and the
  offending token.  Rejecting precisely beats importing wrongly.

Export (:func:`format_iptables_save` / :func:`dump_iptables_file`):

=====================  ======================================
internal action        iptables target
=====================  ======================================
``forward``            ``ACCEPT``
``drop``               ``DROP`` (import also accepts ``REJECT``)
``modify``             ``MARK --set-xmark 0x1/0xffffffff``
``redirect_group``     ``REPRO-REDIRECT`` (user-defined chain —
                       the nat-only ``REDIRECT`` target would not
                       load in the filter table; import accepts both)
``send_to_controller`` ``NFQUEUE --queue-num 0``
=====================  ======================================

The one semantic gap: iptables cannot attach port constraints to a
wildcard-protocol rule (``--sport`` needs ``-p tcp``-family).  In the default
``mode="expand"`` such a rule is emitted as a ``-p tcp`` + ``-p udp`` pair
sharing one ``rid`` comment — exact over *realizable* packets (where
non-port protocols carry ports ``(0, 0)``, the transport reading of
:mod:`repro.io.pcap`) unless both port ranges contain 0, which the
:class:`ExportReport` flags as lossy.  Port constraints on an exact non-port
protocol are dropped (ranges containing 0 — vacuous over realizable
packets) or the whole rule omitted (a range excluding 0 — unmatchable over
realizable packets), both reported.  ``mode="strict"`` turns every such
rewrite into an error instead.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import TraceIOError
from repro.fields.prefix import Prefix, format_ipv4_prefix
from repro.fields.range_utils import PORT_MAX, PortRange
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.rules.ruleset import RuleSet

__all__ = [
    "ExportNote",
    "ExportReport",
    "parse_iptables_save",
    "load_iptables_file",
    "format_iptables_save",
    "dump_iptables_file",
]

#: The chain the exporter writes into (classification rules gate forwarded
#: traffic) and the user-defined chain standing in for ``redirect_group``.
EXPORT_CHAIN = "FORWARD"
_REDIRECT_CHAIN = "REPRO-REDIRECT"

_PROTOCOL_NAMES = {
    "tcp": 6, "udp": 17, "icmp": 1, "gre": 47, "esp": 50, "ah": 51,
    "sctp": 132, "udplite": 136,
}
_PROTOCOL_NUMBERS = {number: name for name, number in _PROTOCOL_NAMES.items()}

#: Protocols iptables lets port options attach to (``-m tcp/udp/...``).
_PORT_CAPABLE = frozenset({6, 17, 132, 136})
#: Protocols the exporter emits port options for (the pair the expansion
#: mode uses; sctp/udplite would need the ``-m sctp`` match extension).
_PORT_EXPORTABLE = frozenset({6, 17})

_TARGET_ACTIONS = {
    "ACCEPT": RuleAction.FORWARD,
    "DROP": RuleAction.DROP,
    "REJECT": RuleAction.DROP,  # lenient import; exported as DROP thereafter
    "MARK": RuleAction.MODIFY,
    "NFQUEUE": RuleAction.SEND_TO_CONTROLLER,
    "REDIRECT": RuleAction.REDIRECT_GROUP,
    _REDIRECT_CHAIN: RuleAction.REDIRECT_GROUP,
}

#: Options we recognise well enough to refuse precisely.
_UNSUPPORTED_OPTIONS = {
    "-i": "input interface matches", "--in-interface": "input interface matches",
    "-o": "output interface matches", "--out-interface": "output interface matches",
    "-f": "fragment matches", "--fragment": "fragment matches",
    "-g": "goto chains", "--goto": "goto chains",
    "--tcp-flags": "tcp flag matches", "--syn": "tcp flag matches",
    "--icmp-type": "icmp type matches",
    "--state": "connection state matches", "--ctstate": "connection state matches",
    "--ports": "multiport --ports (sport-OR-dport disjunction)",
}
_UNSUPPORTED_MATCHES = {
    "state": "stateful tracking", "conntrack": "stateful tracking",
    "limit": "rate limiting", "owner": "process owner matches",
    "mac": "MAC address matches", "set": "ipset matches",
    "iprange": "arbitrary IP ranges",
}


def _error(lineno: int, message: str) -> TraceIOError:
    return TraceIOError(f"line {lineno}: {message}")


def _parse_port_range(token: str, lineno: int, option: str) -> PortRange:
    """Parse ``80`` / ``lo:hi`` / ``:hi`` / ``lo:`` into a PortRange."""
    low_text, sep, high_text = token.partition(":")
    try:
        if not sep:
            value = int(token)
            return PortRange(value, value)
        low = int(low_text) if low_text else 0
        high = int(high_text) if high_text else PORT_MAX
        return PortRange(low, high)
    except (ValueError, TraceIOError):
        raise _error(lineno, f"{option} {token!r} is not a port or port range") from None
    except Exception as exc:  # inverted/out-of-range ranges raise RuleError
        raise _error(lineno, f"{option} {token!r}: {exc}") from None


def _parse_multiport(token: str, lineno: int, option: str) -> List[PortRange]:
    items = [item for item in token.split(",") if item]
    if not items:
        raise _error(lineno, f"{option} got an empty port list")
    return [_parse_port_range(item, lineno, option) for item in items]


def _parse_prefix(token: str, lineno: int, option: str) -> Prefix:
    text = token if "/" in token else token + "/32"
    try:
        return Prefix.parse(text)
    except Exception as exc:
        raise _error(lineno, f"{option} {token!r} is not an IPv4 CIDR: {exc}") from None


def _parse_protocol(token: str, lineno: int) -> ProtocolMatch:
    if token == "all":
        return ProtocolMatch.any()
    if token in _PROTOCOL_NAMES:
        return ProtocolMatch.exact(_PROTOCOL_NAMES[token])
    try:
        value = int(token)
    except ValueError:
        raise _error(lineno, f"unknown protocol {token!r}") from None
    if not 0 <= value <= 255:
        raise _error(lineno, f"protocol number {value} out of 8-bit range")
    return ProtocolMatch.exact(value)


@dataclass
class _PendingRule:
    """One ``-A`` line, parsed but not yet expanded into model rules."""

    lineno: int
    chain: str
    src: Prefix
    dst: Prefix
    protocol: ProtocolMatch
    sports: List[PortRange]
    dports: List[PortRange]
    action: RuleAction
    metadata: Dict[str, str]


def _take_value(tokens: Sequence[str], index: int, lineno: int, option: str) -> str:
    if index + 1 >= len(tokens):
        raise _error(lineno, f"{option} is missing its argument")
    return tokens[index + 1]


def _parse_append_line(tokens: Sequence[str], lineno: int) -> _PendingRule:
    chain = tokens[1] if len(tokens) > 1 else None
    if not chain:
        raise _error(lineno, "-A is missing its chain name")
    src = Prefix.parse("0.0.0.0/0")
    dst = Prefix.parse("0.0.0.0/0")
    protocol = ProtocolMatch.any()
    sports: Optional[List[PortRange]] = None
    dports: Optional[List[PortRange]] = None
    target: Optional[str] = None
    multiport = False
    metadata: Dict[str, str] = {}
    index = 2
    while index < len(tokens):
        token = tokens[index]
        if token == "!":
            raise _error(lineno, "match negation ('!') is not supported")
        if token in _UNSUPPORTED_OPTIONS:
            raise _error(
                lineno, f"{token} is not supported ({_UNSUPPORTED_OPTIONS[token]})"
            )
        if token in ("-s", "--source", "--src"):
            src = _parse_prefix(_take_value(tokens, index, lineno, token), lineno, token)
            index += 2
        elif token in ("-d", "--destination", "--dst"):
            dst = _parse_prefix(_take_value(tokens, index, lineno, token), lineno, token)
            index += 2
        elif token in ("-p", "--protocol"):
            protocol = _parse_protocol(_take_value(tokens, index, lineno, token), lineno)
            index += 2
        elif token in ("-m", "--match"):
            module = _take_value(tokens, index, lineno, token)
            if module in _UNSUPPORTED_MATCHES:
                raise _error(
                    lineno,
                    f"match extension {module!r} is not supported "
                    f"({_UNSUPPORTED_MATCHES[module]})",
                )
            if module == "multiport":
                multiport = True
            elif module not in ("tcp", "udp", "sctp", "udplite", "comment"):
                raise _error(lineno, f"match extension {module!r} is not supported")
            index += 2
        elif token in ("--sport", "--source-port"):
            sports = [_parse_port_range(_take_value(tokens, index, lineno, token), lineno, token)]
            index += 2
        elif token in ("--dport", "--destination-port"):
            dports = [_parse_port_range(_take_value(tokens, index, lineno, token), lineno, token)]
            index += 2
        elif token in ("--sports", "--source-ports"):
            if not multiport:
                raise _error(lineno, f"{token} needs '-m multiport'")
            sports = _parse_multiport(_take_value(tokens, index, lineno, token), lineno, token)
            index += 2
        elif token in ("--dports", "--destination-ports"):
            if not multiport:
                raise _error(lineno, f"{token} needs '-m multiport'")
            dports = _parse_multiport(_take_value(tokens, index, lineno, token), lineno, token)
            index += 2
        elif token == "--comment":
            comment = _take_value(tokens, index, lineno, token)
            if comment.startswith("rid:"):
                metadata["source_rule_id"] = comment[len("rid:"):]
            else:
                metadata["comment"] = comment
            index += 2
        elif token in ("-j", "--jump"):
            target = _take_value(tokens, index, lineno, token)
            index += 2
        elif token in ("--set-mark", "--set-xmark", "--queue-num", "--to-ports",
                       "--reject-with"):
            # Target options: recorded, not modelled (the architecture
            # returns the action, it never executes it).
            metadata[token.lstrip("-").replace("-", "_")] = _take_value(
                tokens, index, lineno, token
            )
            index += 2
        else:
            raise _error(lineno, f"unsupported option {token!r}")
    if target is None:
        raise _error(lineno, "rule has no -j target (counter-only rules carry no action)")
    if target not in _TARGET_ACTIONS:
        raise _error(lineno, f"unsupported target {target!r}")
    if (sports or dports) and protocol.wildcard:
        raise _error(lineno, "port matches need an explicit -p protocol")
    if (sports or dports) and not protocol.wildcard and protocol.value not in _PORT_CAPABLE:
        name = _PROTOCOL_NUMBERS.get(protocol.value, str(protocol.value))
        raise _error(lineno, f"port matches are meaningless for protocol {name}")
    return _PendingRule(
        lineno=lineno,
        chain=chain,
        src=src,
        dst=dst,
        protocol=protocol,
        sports=sports or [PortRange.wildcard()],
        dports=dports or [PortRange.wildcard()],
        action=_TARGET_ACTIONS[target],
        metadata=metadata,
    )


def parse_iptables_save(
    lines: Iterable[str], name: str = "iptables"
) -> RuleSet:
    """Parse iptables-save text into a :class:`RuleSet`.

    Rule priority is file order (earlier lines win, the iptables first-match
    convention).  Multiport lists expand into one rule per list element —
    per direction-pair combination when both directions carry lists — in
    list order, so expanded rules keep their relative position.  Only the
    ``filter`` table is supported; any rule in another table is a precise,
    line-numbered error.
    """
    pending: List[_PendingRule] = []
    declared_chains: List[str] = []
    table: Optional[str] = None
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("*"):
            table = line[1:].strip()
            continue
        if line.startswith(":"):
            declared_chains.append(line[1:].split()[0])
            continue
        if line == "COMMIT":
            table = None
            continue
        try:
            tokens = shlex.split(line)
        except ValueError as exc:
            raise _error(lineno, f"unbalanced quoting: {exc}") from None
        if tokens[0] in ("-A", "--append"):
            if table is not None and table != "filter":
                raise _error(
                    lineno, f"table {table!r} is not supported (only 'filter')"
                )
            pending.append(_parse_append_line(tokens, lineno))
        else:
            raise _error(lineno, f"unsupported directive {tokens[0]!r}")
    ruleset = RuleSet(name=name)
    position = 0
    for entry in pending:
        for sport in entry.sports:
            for dport in entry.dports:
                metadata = dict(entry.metadata)
                metadata["iptables_chain"] = entry.chain
                metadata["iptables_line"] = str(entry.lineno)
                ruleset.add(
                    Rule(
                        rule_id=position,
                        priority=position,
                        src_prefix=entry.src,
                        dst_prefix=entry.dst,
                        src_port=sport,
                        dst_port=dport,
                        protocol=entry.protocol,
                        action=entry.action,
                        metadata=metadata,
                    )
                )
                position += 1
    return ruleset


def load_iptables_file(path: Union[str, Path], name: Optional[str] = None) -> RuleSet:
    """Load an iptables-save dump from disk."""
    path = Path(path)
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError as exc:
        raise TraceIOError(f"{path}: {exc.strerror or exc}") from None
    with handle:
        return parse_iptables_save(handle, name=name or path.stem)


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExportNote:
    """One per-rule export caveat (see :class:`ExportReport`)."""

    rule_id: int
    category: str
    detail: str


@dataclass
class ExportReport:
    """What the exporter did beyond 1:1 translation.

    ``expanded`` lists rules emitted as a ``-p tcp`` + ``-p udp`` pair
    (wildcard protocol with port constraints — exact over realizable
    packets).  ``notes`` carries the caveated rewrites: category ``lossy``
    (an expansion whose port ranges both contain 0, so ports-``(0,0)``
    packets of other protocols are no longer caught), ``ports_dropped``
    (port constraint on a non-port protocol, vacuous over realizable
    packets, dropped) and ``omitted`` (unmatchable over realizable packets,
    not emitted at all).  ``exact`` is True when the export is semantically
    identical over realizable packets.
    """

    rules_in: int = 0
    lines_out: int = 0
    expanded: List[int] = field(default_factory=list)
    notes: List[ExportNote] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return not self.notes


def _rule_source(source) -> List[Rule]:
    """Rules in priority order from a RuleSet, RuleProgram or iterable."""
    rules = getattr(source, "rules", None)
    if callable(rules):  # RuleSet
        ordered = rules()
    elif rules is not None:  # RuleProgram (a tuple attribute)
        ordered = list(rules)
    else:
        ordered = list(source)
    return sorted(ordered, key=lambda rule: rule.priority)


def _format_port(port_range: PortRange) -> str:
    if port_range.is_exact:
        return str(port_range.low)
    return f"{port_range.low}:{port_range.high}"


def _format_line(
    rule: Rule, chain: str, protocol: Optional[int], with_ports: bool
) -> str:
    parts = ["-A", chain]
    if not rule.src_prefix.is_wildcard:
        parts += ["-s", format_ipv4_prefix(rule.src_prefix.value, rule.src_prefix.length)]
    if not rule.dst_prefix.is_wildcard:
        parts += ["-d", format_ipv4_prefix(rule.dst_prefix.value, rule.dst_prefix.length)]
    if protocol is not None:
        parts += ["-p", _PROTOCOL_NUMBERS.get(protocol, str(protocol))]
    if with_ports:
        if not rule.src_port.is_wildcard:
            parts += ["--sport", _format_port(rule.src_port)]
        if not rule.dst_port.is_wildcard:
            parts += ["--dport", _format_port(rule.dst_port)]
    parts += ["-m", "comment", "--comment", f'"rid:{rule.rule_id}"']
    action = rule.action
    if action is RuleAction.FORWARD:
        parts += ["-j", "ACCEPT"]
    elif action is RuleAction.DROP:
        parts += ["-j", "DROP"]
    elif action is RuleAction.MODIFY:
        parts += ["-j", "MARK", "--set-xmark", "0x1/0xffffffff"]
    elif action is RuleAction.SEND_TO_CONTROLLER:
        parts += ["-j", "NFQUEUE", "--queue-num", "0"]
    else:  # REDIRECT_GROUP
        parts += ["-j", _REDIRECT_CHAIN]
    return " ".join(parts)


def format_iptables_save(
    source,
    chain: str = EXPORT_CHAIN,
    mode: str = "expand",
) -> Tuple[str, ExportReport]:
    """Render rules as loadable iptables-save text; returns (text, report).

    ``source`` is a :class:`RuleSet`, a :class:`~repro.api.control.RuleProgram`
    or any iterable of rules; output order is priority order.  ``mode``
    selects what happens to rules iptables cannot express 1:1 (module
    docstring): ``"expand"`` rewrites them exactly-over-realizable-packets
    and reports, ``"strict"`` raises :class:`TraceIOError` instead.
    """
    if mode not in ("expand", "strict"):
        raise TraceIOError(f"unknown export mode {mode!r}; choose 'expand' or 'strict'")
    rules = _rule_source(source)
    report = ExportReport(rules_in=len(rules))
    lines: List[str] = []
    uses_redirect = False
    for rule in rules:
        has_ports = not (rule.src_port.is_wildcard and rule.dst_port.is_wildcard)
        uses_redirect = uses_redirect or rule.action is RuleAction.REDIRECT_GROUP
        if not has_ports:
            protocol = None if rule.protocol.wildcard else rule.protocol.value
            lines.append(_format_line(rule, chain, protocol, with_ports=False))
            continue
        if not rule.protocol.wildcard and rule.protocol.value in _PORT_EXPORTABLE:
            lines.append(_format_line(rule, chain, rule.protocol.value, with_ports=True))
            continue
        if rule.protocol.wildcard:
            # Inexpressible: port matches need a -p protocol.  Expand into a
            # tcp+udp pair (one rid, adjacent lines, order preserved).
            lossy = rule.src_port.contains(0) and rule.dst_port.contains(0)
            if mode == "strict":
                raise TraceIOError(
                    f"rule {rule.rule_id}: wildcard-protocol rules with port "
                    "constraints cannot be expressed in iptables (strict mode)"
                )
            report.expanded.append(rule.rule_id)
            if lossy:
                report.notes.append(
                    ExportNote(
                        rule.rule_id,
                        "lossy",
                        "tcp+udp expansion, but both port ranges contain 0: "
                        "ports-(0,0) packets of other protocols escape it",
                    )
                )
            lines.append(_format_line(rule, chain, 6, with_ports=True))
            lines.append(_format_line(rule, chain, 17, with_ports=True))
            continue
        # Exact non-port protocol with port constraints.  Realizable packets
        # of such protocols carry ports (0, 0) (see repro.io.pcap).
        if rule.src_port.contains(0) and rule.dst_port.contains(0):
            if mode == "strict":
                raise TraceIOError(
                    f"rule {rule.rule_id}: port constraints on a non-port "
                    "protocol cannot be expressed in iptables (strict mode)"
                )
            report.notes.append(
                ExportNote(
                    rule.rule_id,
                    "ports_dropped",
                    "port constraint on a non-port protocol dropped "
                    "(vacuous over realizable packets)",
                )
            )
            lines.append(_format_line(rule, chain, rule.protocol.value, with_ports=False))
        else:
            if mode == "strict":
                raise TraceIOError(
                    f"rule {rule.rule_id}: port constraints on a non-port "
                    "protocol cannot be expressed in iptables (strict mode)"
                )
            report.notes.append(
                ExportNote(
                    rule.rule_id,
                    "omitted",
                    "matches no realizable packet (non-port protocol with a "
                    "port range excluding 0); not emitted",
                )
            )
    report.lines_out = len(lines)
    preamble = ["*filter", f":{chain} ACCEPT [0:0]"]
    if uses_redirect:
        preamble.append(f":{_REDIRECT_CHAIN} - [0:0]")
    text = "\n".join(preamble + lines + ["COMMIT"]) + "\n"
    return text, report


def dump_iptables_file(
    source,
    path: Union[str, Path],
    chain: str = EXPORT_CHAIN,
    mode: str = "expand",
) -> ExportReport:
    """Write an iptables-save dump to disk; returns the :class:`ExportReport`."""
    text, report = format_iptables_save(source, chain=chain, mode=mode)
    Path(path).write_text(text, encoding="utf-8")
    return report

"""Streaming classic-pcap trace front-end.

Real capture files are the workload the ROADMAP's ingestion item asks for:
this module streams 5-tuples out of classic pcap (``tcpdump``) files straight
into the packed 104-bit header codec of :mod:`repro.perf.transport` — the
read path never materialises a :class:`~repro.rules.packet.PacketHeader`, it
yields plain integer tuples that :func:`~repro.perf.transport.iter_packed_chunks`
packs into bounded :class:`~repro.perf.transport.PackedChunk` words ready for
:class:`~repro.perf.parallel.ParallelSession` descriptor dispatch.

Format coverage (stdlib-only, ``struct`` over a buffered file):

* all four classic magics — microsecond and nanosecond resolution, either
  byte order (``0xa1b2c3d4`` / ``0xa1b23c4d`` and their swaps);
* linktype 1 (``EN10MB`` ethernet, including stacked 802.1Q/802.1ad VLAN
  tags) and linktype 101 (``RAW`` IP);
* IPv4 with options (IHL honoured) and fragments (non-first fragments carry
  no L4 header, so their ports read as zero);
* TCP/UDP/SCTP/UDP-Lite source/destination ports; other protocols and
  non-IPv4 frames are counted, not errors (see :class:`PcapStats`).

Two port-extraction modes bridge the gap between "what the transport layer
means" and "what a hardware header extractor does":

* ``ports="transport"`` (default) — real L4 ports for the port-bearing
  protocols, zeros otherwise.  The faithful reading of a real capture.
* ``ports="word"`` — the first 4 bytes after the IP header, unconditionally,
  the way a fixed-offset hardware extractor slices the header word.  This is
  the exact inverse of :func:`write_pcap` for *every* protocol, so synthetic
  traces (whose non-port protocols carry nonzero port fields) round-trip to
  capture files bit-exactly.

:func:`write_pcap` is the seeded inverse: it renders any 5-tuple stream as a
loadable capture file (deterministic MACs/timestamps given ``seed``), used
for the checked-in golden fixtures and the ``ingest`` differential column.

pcapng is out of scope here (see ROADMAP follow-ups); classic pcap is what
``tcpdump -w`` and the public trace archives ship.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import TraceIOError
from repro.perf.transport import FiveTuple, PackedChunk, iter_packed_chunks
from repro.rules.packet import PacketHeader

__all__ = [
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW_IP",
    "PORT_PROTOCOLS",
    "PcapStats",
    "scan_pcap",
    "read_pcap",
    "read_pcap_packed",
    "write_pcap",
]

#: DLT_EN10MB — frames start with a 14-byte ethernet header.
LINKTYPE_ETHERNET = 1
#: DLT_RAW / LINKTYPE_RAW — frames start directly at the IP header.
LINKTYPE_RAW_IP = 101

#: Protocols whose L4 header leads with 16-bit source/destination ports.
PORT_PROTOCOLS = frozenset({6, 17, 132, 136})  # TCP, UDP, SCTP, UDP-Lite

_MAGIC_MICRO = 0xA1B2C3D4
_MAGIC_NANO = 0xA1B23C4D

_MAGICS = frozenset({_MAGIC_MICRO, _MAGIC_NANO})

_ETHERTYPE_IPV4 = 0x0800
#: 802.1Q / 802.1ad / QinQ tag protocol identifiers — each adds 4 bytes.
_VLAN_ETHERTYPES = frozenset({0x8100, 0x88A8, 0x9100})

_GLOBAL_HEADER_REST = 20  # after the 4-byte magic
_RECORD_HEADER_BYTES = 16

_PORT_WORD = struct.Struct(">HH")


@dataclass
class PcapStats:
    """Frame accounting for one pcap scan.

    ``packets`` counts yielded IPv4 5-tuples; ``skipped`` counts whole frames
    that were not IPv4 (ARP, IPv6, LLDP, malformed IP version/IHL);
    ``truncated`` counts records whose captured bytes were too short to reach
    the IP header (snaplen cuts and torn file tails).  A torn tail — a record
    header or body cut off by the end of the file — ends the scan gracefully
    and counts as one truncated record: real captures are routinely torn by
    the capturing process dying.
    """

    packets: int = 0
    skipped: int = 0
    truncated: int = 0

    @property
    def frames(self) -> int:
        """Total records seen, whatever became of them."""
        return self.packets + self.skipped + self.truncated


def _open_global_header(stream: IO[bytes], path: str) -> Tuple[str, bool, int]:
    """Validate the 24-byte global header; returns (byte order, ns?, linktype)."""
    raw_magic = stream.read(4)
    if len(raw_magic) < 4:
        raise TraceIOError(f"{path}: not a pcap file (shorter than the magic number)")
    for order in ("<", ">"):
        magic = struct.unpack(order + "I", raw_magic)[0]
        if magic in _MAGICS:
            nanosecond = magic == _MAGIC_NANO
            break
    else:
        raise TraceIOError(
            f"{path}: unknown capture magic 0x{raw_magic.hex()} at offset 0 "
            "(classic pcap expected; pcapng is not supported yet)"
        )
    rest = stream.read(_GLOBAL_HEADER_REST)
    if len(rest) < _GLOBAL_HEADER_REST:
        raise TraceIOError(f"{path}: truncated pcap global header")
    _major, _minor, _zone, _sigfigs, _snaplen, network = struct.unpack(
        order + "HHiIII", rest
    )
    if network not in (LINKTYPE_ETHERNET, LINKTYPE_RAW_IP):
        raise TraceIOError(
            f"{path}: unsupported linktype {network} "
            f"(supported: {LINKTYPE_ETHERNET} ethernet, {LINKTYPE_RAW_IP} raw IP)"
        )
    return order, nanosecond, network


def _ip_offset(frame: bytes, linktype: int) -> Optional[int]:
    """Byte offset of the IPv4 header inside ``frame``, or None if not IPv4."""
    if linktype == LINKTYPE_RAW_IP:
        return 0 if frame and frame[0] >> 4 == 4 else None
    offset = 14
    if len(frame) < offset:
        return None
    ethertype = (frame[12] << 8) | frame[13]
    while ethertype in _VLAN_ETHERTYPES:
        # 4-byte tag: 2 bytes TCI, then the encapsulated ethertype.
        if len(frame) < offset + 4:
            return None
        ethertype = (frame[offset + 2] << 8) | frame[offset + 3]
        offset += 4
    return offset if ethertype == _ETHERTYPE_IPV4 else None


def scan_pcap(
    path: str,
    ports: str = "transport",
    stats: Optional[PcapStats] = None,
) -> Iterator[Tuple[int, int, int, int, int]]:
    """Stream plain ``(src_ip, dst_ip, src_port, dst_port, protocol)`` tuples.

    The allocation-free core every other reader builds on: one record is
    held in memory at a time and no :class:`PacketHeader` is ever created.
    ``ports`` selects the extraction mode (module docstring); pass a
    :class:`PcapStats` to receive frame accounting as the scan progresses.
    """
    if ports not in ("transport", "word"):
        raise TraceIOError(f"unknown port mode {ports!r}; choose 'transport' or 'word'")
    if stats is None:
        stats = PcapStats()
    word_mode = ports == "word"
    try:
        stream = open(path, "rb")
    except OSError as exc:
        raise TraceIOError(f"{path}: {exc.strerror or exc}") from None
    with stream:
        order, _nanosecond, linktype = _open_global_header(stream, path)
        record_header = struct.Struct(order + "IIII")
        unpack_port_word = _PORT_WORD.unpack_from
        while True:
            header = stream.read(_RECORD_HEADER_BYTES)
            if not header:
                break  # clean end of capture
            if len(header) < _RECORD_HEADER_BYTES:
                stats.truncated += 1  # torn tail: record header cut off
                break
            _ts_sec, _ts_frac, caplen, _origlen = record_header.unpack(header)
            frame = stream.read(caplen)
            if len(frame) < caplen:
                stats.truncated += 1  # torn tail: record body cut off
                break
            ip = _ip_offset(frame, linktype)
            if ip is None:
                stats.skipped += 1
                continue
            if len(frame) < ip + 20:
                stats.truncated += 1
                continue
            version_ihl = frame[ip]
            ihl = (version_ihl & 0x0F) * 4
            if version_ihl >> 4 != 4 or ihl < 20:
                stats.skipped += 1
                continue
            if len(frame) < ip + ihl:
                stats.truncated += 1
                continue
            protocol = frame[ip + 9]
            src_ip = int.from_bytes(frame[ip + 12: ip + 16], "big")
            dst_ip = int.from_bytes(frame[ip + 16: ip + 20], "big")
            fragment_offset = ((frame[ip + 6] << 8) | frame[ip + 7]) & 0x1FFF
            l4 = ip + ihl
            src_port = dst_port = 0
            if (
                fragment_offset == 0
                and len(frame) >= l4 + 4
                and (word_mode or protocol in PORT_PROTOCOLS)
            ):
                src_port, dst_port = unpack_port_word(frame, l4)
            stats.packets += 1
            yield src_ip, dst_ip, src_port, dst_port, protocol


def read_pcap_packed(
    path: str,
    chunk_size: int = 256,
    ports: str = "transport",
    stats: Optional[PcapStats] = None,
) -> Iterator[PackedChunk]:
    """Stream a capture as bounded packed chunks — the zero-allocation path.

    Each yielded :class:`~repro.perf.transport.PackedChunk` holds up to
    ``chunk_size`` packed 104-bit header words; feed them straight to
    :meth:`ParallelSession.run <repro.perf.parallel.ParallelSession.run>` for
    descriptor-only dispatch.  No ``PacketHeader`` is allocated anywhere on
    this path (guarded by a test that poisons the constructor).
    """
    return iter_packed_chunks(scan_pcap(path, ports=ports, stats=stats), chunk_size)


def read_pcap(
    path: str,
    ports: str = "transport",
    stats: Optional[PcapStats] = None,
) -> List[PacketHeader]:
    """Read a capture into header objects — the convenience path.

    Materialises the whole trace; use :func:`read_pcap_packed` (streaming,
    allocation-free) for anything performance-sensitive.
    """
    return [PacketHeader(*five) for five in scan_pcap(path, ports=ports, stats=stats)]


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

#: 2014-06-08 00:00:00 UTC — the paper's publication season, an arbitrary but
#: recognisable fixed capture epoch (timestamps carry no classification
#: meaning; determinism is what matters).
_CAPTURE_EPOCH = 1402185600

_IPV4_HEADER = struct.Struct(">BBHHHBBHII")
_TCP_TAIL = struct.Struct(">IIBBHHH")
_UDP_TAIL = struct.Struct(">HH")


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for index in range(0, len(header), 2):
        total += (header[index] << 8) | header[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _l4_block(src_port: int, dst_port: int, protocol: int) -> bytes:
    """Render the L4 header: the port word always leads, so ``ports="word"``
    reads back exactly what was written for any protocol."""
    ports = _PORT_WORD.pack(src_port, dst_port)
    if protocol == 6:
        # Minimal 20-byte TCP header: seq/ack 0, data offset 5, ACK flag,
        # an open window, checksum left 0 (offline captures tolerate it).
        return ports + _TCP_TAIL.pack(0, 0, 0x50, 0x10, 0xFFFF, 0, 0)
    if protocol == 17:
        return ports + _UDP_TAIL.pack(8, 0)  # UDP length covers the header
    # Generic 8-byte block for everything else (ICMP, GRE, ESP...): the
    # synthetic generators put nonzero "port" fields on these protocols and
    # the word extractor slices them back out of the first 4 bytes.
    return ports + b"\x00\x00\x00\x00"


def write_pcap(
    path: str,
    headers: Iterable[FiveTuple],
    linktype: int = LINKTYPE_ETHERNET,
    byte_order: str = "little",
    nanosecond: bool = False,
    seed: int = 0,
) -> int:
    """Render a 5-tuple stream as a classic pcap file; returns packets written.

    Accepts header objects or plain 5-tuples (anything the packed codec
    accepts), streams — never materialises the trace — and is byte-for-byte
    deterministic given ``seed`` (which picks the ethernet MACs and the
    sub-second timestamp jitter).  ``byte_order``/``nanosecond`` select the
    capture magic so fixtures exist for every reader branch.
    """
    if linktype not in (LINKTYPE_ETHERNET, LINKTYPE_RAW_IP):
        raise TraceIOError(
            f"unsupported linktype {linktype} "
            f"(supported: {LINKTYPE_ETHERNET} ethernet, {LINKTYPE_RAW_IP} raw IP)"
        )
    if byte_order not in ("little", "big"):
        raise TraceIOError(f"byte_order must be 'little' or 'big', got {byte_order!r}")
    order = "<" if byte_order == "little" else ">"
    magic = _MAGIC_NANO if nanosecond else _MAGIC_MICRO
    frac_modulus = 1_000_000_000 if nanosecond else 1_000_000
    rng = random.Random(seed)
    ether_prefix = b""
    if linktype == LINKTYPE_ETHERNET:
        # Locally-administered unicast MACs, fixed for the whole capture.
        dst_mac = bytes([0x02] + [rng.randrange(256) for _ in range(5)])
        src_mac = bytes([0x02] + [rng.randrange(256) for _ in range(5)])
        ether_prefix = dst_mac + src_mac + _ETHERTYPE_IPV4.to_bytes(2, "big")
    record_header = struct.Struct(order + "IIII")
    count = 0
    with open(path, "wb") as stream:
        stream.write(
            struct.pack(order + "IHHiIII", magic, 2, 4, 0, 0, 65535, linktype)
        )
        for header in headers:
            src_ip, dst_ip, src_port, dst_port, protocol = tuple(header)
            l4 = _l4_block(src_port, dst_port, protocol)
            ip_header = bytearray(
                _IPV4_HEADER.pack(
                    0x45, 0, 20 + len(l4), count & 0xFFFF, 0, 64, protocol,
                    0, src_ip, dst_ip,
                )
            )
            ip_header[10:12] = _ipv4_checksum(ip_header).to_bytes(2, "big")
            frame = ether_prefix + bytes(ip_header) + l4
            ts_sec = _CAPTURE_EPOCH + count // 1000
            ts_frac = rng.randrange(frac_modulus)
            stream.write(record_header.pack(ts_sec, ts_frac, len(frame), len(frame)))
            stream.write(frame)
            count += 1
    return count

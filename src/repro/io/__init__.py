"""repro.io — real-workload interchange: pcap traces and iptables rulesets.

Everything upstream of this package is synthetic (ClassBench rulesets,
generated traces); this package is the interop layer with the real world:

* :mod:`repro.io.pcap` — a stdlib-only streaming reader/writer for classic
  pcap capture files.  The read path yields plain 5-tuples packed straight
  into the 104-bit header codec (:func:`~repro.io.pcap.read_pcap_packed`
  yields :class:`~repro.perf.transport.PackedChunk` words ready for
  descriptor dispatch) — no :class:`~repro.rules.packet.PacketHeader` is
  ever materialised; :func:`~repro.io.pcap.write_pcap` renders any 5-tuple
  stream (synthetic traces included) as a deterministic capture file.
* :mod:`repro.io.iptables` — bidirectional iptables-save ↔
  :class:`~repro.rules.ruleset.RuleSet` translation with precise
  line-numbered rejection of the unsupported surface and an
  :class:`~repro.io.iptables.ExportReport` accounting for every rewrite
  the format forces.

CLI: ``repro import`` / ``repro export`` / ``repro replay``, plus
``--trace capture.pcap`` on ``repro classify`` and ``repro fabric``.
"""

from repro.io.iptables import (
    ExportNote,
    ExportReport,
    dump_iptables_file,
    format_iptables_save,
    load_iptables_file,
    parse_iptables_save,
)
from repro.io.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PORT_PROTOCOLS,
    PcapStats,
    read_pcap,
    read_pcap_packed,
    scan_pcap,
    write_pcap,
)

__all__ = [
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW_IP",
    "PORT_PROTOCOLS",
    "PcapStats",
    "scan_pcap",
    "read_pcap",
    "read_pcap_packed",
    "write_pcap",
    "ExportNote",
    "ExportReport",
    "parse_iptables_save",
    "load_iptables_file",
    "format_iptables_save",
    "dump_iptables_file",
]

"""Multi-switch fabric: topology, partitioned rule placement, atomic fabric sync.

The controller so far manages switches one at a time; this module scales the
SDN layer to a *fabric* — the "heavy traffic from millions of users" scenario
of the ROADMAP made concrete:

* :class:`Topology` — N switches + links with deterministic shortest-path
  routing (BFS, lowest-dpid tie-break) and a route table mapping each ingress
  switch to its egress.  :meth:`Topology.line` and :meth:`Topology.fattree`
  build the two canonical shapes.
* :func:`plan_placement` — partitions a rule program across the switches of
  each flow path instead of fully replicating it.  The unit of placement is
  an **overlap component** of :class:`~repro.analysis.depindex.DependencyIndex`:
  all rules a single packet can match form a clique in the overlap graph, so
  they always sit in one component — hosting whole components means every
  switch resolves its local highest-priority match *exactly* as the full
  program would, and the fabric-wide winner is simply the best match seen
  along the path.  Components map to ``k = min path length`` fixed buckets by
  ``min(component) % k`` and each bucket is pinned to the least-loaded hop of
  every served path, so the whole assignment is a pure function of the rule
  ids and the topology: a one-rule commit moves one rule, never reshuffles
  the fabric.
* :func:`commit_switch_deltas` / :class:`FabricController` — topology-wide
  transactional updates.  A fabric commit diffs every switch's installed
  program against its planned subset and applies the per-switch deltas
  all-or-nothing across the fabric: if any switch rejects its delta, every
  switch that already committed is rolled back to the **pre-commit program
  version** via :meth:`~repro.api.control.ControlPlane.rollback` (PR 5's
  inverse deltas, version-exact).  :class:`FabricController` is itself a
  :class:`~repro.api.control.ControlPlane`, so ``begin()``/``commit()``
  transactions and `RuleProgram` snapshots work fabric-wide.
* :meth:`FabricController.serve` — drives an ingress-tagged trace
  (:func:`~repro.rules.trace.generate_fabric_trace`) through the fabric:
  per-switch :class:`~repro.perf.parallel.ParallelSession` serving, per-hop
  lookups combined into one fabric classification per packet, per-switch hit
  accounting and merged fabric-wide statistics.  Statistics commit only
  after every switch finished its share — a poisoned switch cancels the
  whole serve with no partial stats.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.depindex import DependencyIndex
from repro.api.control import CommitResult, ControlPlane, Delta, RuleProgram, TxnOp
from repro.api.session import SessionStats
from repro.controller.controller import SdnController
from repro.controller.switch import Switch
from repro.core.config import ClassifierConfig
from repro.core.result import Classification
from repro.exceptions import ControlPlaneError, UpdateError
from repro.perf.parallel import ParallelSession, merge_flow_cache_stats
from repro.perf.transport import pack_header
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.rules.trace import FabricPacket

__all__ = [
    "FabricPath",
    "Topology",
    "PlacementPlan",
    "plan_placement",
    "SwitchCommit",
    "FabricCommitError",
    "commit_switch_deltas",
    "SwitchServeStats",
    "FabricServeResult",
    "FabricController",
    "assign_ingresses",
]


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricPath(object):
    """One routed flow path: ingress switch, egress switch, hop sequence."""

    ingress: int
    egress: int
    hops: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.hops)


class Topology:
    """Switch graph with deterministic shortest-path routing.

    ``switches`` are datapath ids, ``links`` undirected edges between them,
    ``routes`` maps each *ingress* switch to the egress its traffic is
    destined for.  Paths are computed once, by BFS with sorted neighbour
    expansion, so the hop sequence for a route is deterministic (among
    equal-length paths the lexicographically smallest wins).
    """

    def __init__(
        self,
        switches: Sequence[int],
        links: Iterable[Tuple[int, int]],
        routes: Mapping[int, int],
        name: str = "fabric",
    ) -> None:
        self.name = name
        if not switches:
            raise ControlPlaneError("a topology needs at least one switch")
        if len(set(switches)) != len(list(switches)):
            raise ControlPlaneError("duplicate datapath ids in topology")
        self._switches: Tuple[int, ...] = tuple(sorted(switches))
        known = set(self._switches)
        adjacency: Dict[int, set] = {dpid: set() for dpid in self._switches}
        for a, b in links:
            if a not in known or b not in known:
                raise ControlPlaneError(f"link ({a}, {b}) references an unknown switch")
            if a == b:
                raise ControlPlaneError(f"switch {a} cannot link to itself")
            adjacency[a].add(b)
            adjacency[b].add(a)
        self._adjacency = {dpid: tuple(sorted(peers)) for dpid, peers in adjacency.items()}
        self._paths: Dict[int, FabricPath] = {}
        for ingress, egress in sorted(routes.items()):
            if ingress not in known or egress not in known:
                raise ControlPlaneError(
                    f"route {ingress} -> {egress} references an unknown switch"
                )
            hops = self._shortest_path(ingress, egress)
            if hops is None:
                raise ControlPlaneError(
                    f"no path from switch {ingress} to switch {egress}"
                )
            self._paths[ingress] = FabricPath(ingress=ingress, egress=egress, hops=hops)
        if not self._paths:
            raise ControlPlaneError("a topology needs at least one route")

    def _shortest_path(self, source: int, target: int) -> Optional[Tuple[int, ...]]:
        if source == target:
            return (source,)
        parents: Dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for peer in self._adjacency[node]:
                    if peer in parents:
                        continue
                    parents[peer] = node
                    if peer == target:
                        hops = [peer]
                        while hops[-1] != source:
                            hops.append(parents[hops[-1]])
                        return tuple(reversed(hops))
                    next_frontier.append(peer)
            frontier = next_frontier
        return None

    # -- inspection ----------------------------------------------------------
    @property
    def switches(self) -> Tuple[int, ...]:
        """Every datapath id, ascending."""
        return self._switches

    def neighbors(self, dpid: int) -> Tuple[int, ...]:
        """Directly linked switches of ``dpid``, ascending."""
        if dpid not in self._adjacency:
            raise ControlPlaneError(f"unknown datapath id {dpid}")
        return self._adjacency[dpid]

    def ingresses(self) -> Tuple[int, ...]:
        """The switches traffic can enter the fabric at, ascending."""
        return tuple(sorted(self._paths))

    def route_path(self, ingress: int) -> FabricPath:
        """The routed path for traffic entering at ``ingress``."""
        try:
            return self._paths[ingress]
        except KeyError as exc:
            raise ControlPlaneError(f"switch {ingress} is not a fabric ingress") from exc

    def served_paths(self) -> List[FabricPath]:
        """Every routed path, in ingress order."""
        return [self._paths[ingress] for ingress in sorted(self._paths)]

    @property
    def min_path_length(self) -> int:
        """Hops of the shortest served path — the placement partition width."""
        return min(len(path) for path in self._paths.values())

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, switches={len(self._switches)}, "
            f"routes={len(self._paths)})"
        )

    # -- canonical shapes ----------------------------------------------------
    @classmethod
    def line(cls, switches: int) -> "Topology":
        """A linear chain ``0 - 1 - ... - n-1``.

        Traffic entering at the left half travels to the right end and vice
        versa, so every switch is an ingress and every path spans at least
        half the chain.
        """
        if switches < 1:
            raise ControlPlaneError(f"a line needs at least 1 switch, got {switches}")
        dpids = list(range(switches))
        links = [(i, i + 1) for i in range(switches - 1)]
        routes = {
            i: (switches - 1 if i <= (switches - 1) // 2 else 0) for i in dpids
        }
        return cls(dpids, links, routes, name=f"line{switches}")

    @classmethod
    def fattree(cls, switches: int) -> "Topology":
        """A tiny two-level fat-tree: 1 core, 2 aggregations, N-3 edges.

        Switch 0 is the core, 1 and 2 the aggregation switches, 3..N-1 the
        edge switches; edge ``i`` homes into aggregation ``1 + (i % 2)``
        (two pods).  Each edge switch routes to the next edge switch
        round-robin, so same-pod traffic takes ``edge - agg - edge`` (3 hops)
        and cross-pod traffic crosses the core (5 hops).
        """
        if switches < 5:
            raise ControlPlaneError(
                f"the fat-tree shape needs at least 5 switches, got {switches}"
            )
        dpids = list(range(switches))
        edges = dpids[3:]
        links = [(0, 1), (0, 2)]
        for index, edge in enumerate(edges):
            links.append((1 + (index % 2), edge))
        routes = {
            edge: edges[(index + 1) % len(edges)] for index, edge in enumerate(edges)
        }
        return cls(dpids, links, routes, name=f"fattree{switches}")


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlacementPlan:
    """Where every rule of a program lives in the fabric.

    ``groups[b]`` is the ascending rule ids of bucket ``b`` (overlap
    components merged by ``min(component) % k``); ``hosts[b]`` the switches
    hosting that bucket (one per served path, load-balanced); and
    ``switch_rules`` the per-switch installed subset, in the program's
    global install order — rule priorities are **never renumbered**, so a
    switch's local highest-priority match over its subset is exact.
    """

    rule_count: int
    groups: Tuple[Tuple[int, ...], ...]
    hosts: Tuple[Tuple[int, ...], ...]
    switch_rules: Dict[int, Tuple[Rule, ...]] = field(compare=False)

    @property
    def k(self) -> int:
        """Number of placement buckets (= the fabric's shortest path length)."""
        return len(self.groups)

    @property
    def total_rule_slots(self) -> int:
        """Installed rule slots across the fabric (full replication: N * rules)."""
        return sum(len(rules) for rules in self.switch_rules.values())

    @property
    def max_switch_rules(self) -> int:
        """Largest per-switch installed subset."""
        if not self.switch_rules:
            return 0
        return max(len(rules) for rules in self.switch_rules.values())

    @property
    def replication_factor(self) -> float:
        """Average number of switches each rule is installed on."""
        if not self.rule_count:
            return 0.0
        return self.total_rule_slots / self.rule_count

    def rules_for(self, dpid: int) -> Tuple[Rule, ...]:
        """The planned installed subset of one switch."""
        return self.switch_rules.get(dpid, ())

    def switches_for_rule(self, rule_id: int) -> Tuple[int, ...]:
        """The switches hosting a rule's bucket, ascending."""
        for bucket, ids in enumerate(self.groups):
            if rule_id in ids:
                return self.hosts[bucket]
        raise ControlPlaneError(f"rule {rule_id} is not part of this placement plan")


def plan_placement(
    rules: Sequence[Rule],
    topology: Topology,
    index: Optional[DependencyIndex] = None,
) -> PlacementPlan:
    """Partition ``rules`` across ``topology`` along its served paths.

    Overlap components (every rule set a packet can co-match is a clique,
    hence inside one component) are bucketed by ``min(component) % k`` with
    ``k`` the shortest served path length — a *stable* assignment: commits
    that do not split or merge components never move unrelated rules.  Each
    bucket is then hosted on one switch of every served path, chosen as the
    hop carrying the fewest buckets so far (ties to the lowest dpid); since
    the choice depends only on ``k`` and the topology, the host map is
    identical across commits.  Every switch's subset keeps the global
    install order and the original priorities.
    """
    if index is None:
        index = DependencyIndex(rules)
    k = topology.min_path_length
    buckets: List[List[int]] = [[] for _ in range(k)]
    for component in index.components():
        buckets[min(component) % k].extend(component)
    groups = tuple(tuple(sorted(ids)) for ids in buckets)

    loads: Dict[int, int] = {dpid: 0 for dpid in topology.switches}
    hosts: List[Tuple[int, ...]] = []
    for bucket in range(k):
        assigned: List[int] = []
        for path in topology.served_paths():
            if any(dpid in assigned for dpid in path.hops):
                continue
            choice = min(path.hops, key=lambda dpid: (loads[dpid], dpid))
            assigned.append(choice)
            loads[choice] += 1
        hosts.append(tuple(sorted(assigned)))

    position = {rule.rule_id: index_ for index_, rule in enumerate(rules)}
    by_id = {rule.rule_id: rule for rule in rules}
    switch_ids: Dict[int, List[int]] = {dpid: [] for dpid in topology.switches}
    for bucket, ids in enumerate(groups):
        for dpid in hosts[bucket]:
            switch_ids[dpid].extend(ids)
    switch_rules = {
        dpid: tuple(by_id[rid] for rid in sorted(ids, key=lambda rid: position[rid]))
        for dpid, ids in switch_ids.items()
    }
    return PlacementPlan(
        rule_count=len(rules),
        groups=groups,
        hosts=tuple(hosts),
        switch_rules=switch_rules,
    )


# ---------------------------------------------------------------------------
# Transactional fabric sync
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwitchCommit(object):
    """One switch's share of a fabric commit."""

    datapath_id: int
    commit: CommitResult

    @property
    def structural(self) -> bool:
        """True when the switch's delta changed an algorithm structure."""
        return self.commit.structural

    @property
    def update_cycles(self) -> int:
        """Modelled update-interface cycles the switch spent on its delta."""
        return self.commit.update_cycles


class FabricCommitError(UpdateError):
    """A fabric commit failed on one switch and was rolled back everywhere.

    ``failed_switch`` is the datapath id that rejected its delta,
    ``rolled_back`` the switches whose already-applied deltas were undone
    (restored to their pre-commit program version), and
    ``rollback_failures`` any ``(datapath_id, error)`` pairs where even the
    inverse replay failed — non-empty means the fabric is partially
    committed, which the controller surfaces via ``partial_commits``.
    """

    def __init__(
        self,
        message: str,
        failed_switch: int,
        rolled_back: Tuple[int, ...] = (),
        rollback_failures: Tuple[Tuple[int, str], ...] = (),
    ) -> None:
        super().__init__(message)
        self.failed_switch = failed_switch
        self.rolled_back = rolled_back
        self.rollback_failures = rollback_failures


def commit_switch_deltas(
    entries: Sequence[Tuple[int, ControlPlane, Delta]],
) -> List[SwitchCommit]:
    """Apply per-switch deltas all-or-nothing across the fabric.

    ``entries`` are ``(datapath_id, control plane, delta)`` triples; they are
    applied in ascending datapath order.  If any plane rejects its delta,
    every plane that already committed a non-empty delta is rolled back in
    reverse order via :meth:`~repro.api.control.ControlPlane.rollback` —
    version-exact, so each switch ends at its pre-commit ``program_version``
    — and :class:`FabricCommitError` is raised.  Empty deltas are
    version-preserving no-ops on their switch.
    """
    ordered = sorted(entries, key=lambda entry: entry[0])
    committed: List[Tuple[int, ControlPlane, CommitResult]] = []
    for dpid, plane, delta in ordered:
        try:
            commit = plane.apply_delta(delta)
        except Exception as exc:
            rollback_failures: List[Tuple[int, str]] = []
            rolled_back: List[int] = []
            for done_dpid, done_plane, done_commit in reversed(committed):
                try:
                    done_plane.rollback(done_commit)
                    rolled_back.append(done_dpid)
                except Exception as rollback_exc:  # pragma: no cover - defensive
                    rollback_failures.append((done_dpid, str(rollback_exc)))
            raise FabricCommitError(
                f"fabric commit failed on switch {dpid}: {exc}",
                failed_switch=dpid,
                rolled_back=tuple(rolled_back),
                rollback_failures=tuple(rollback_failures),
            ) from exc
        committed.append((dpid, plane, commit))
    return [SwitchCommit(datapath_id=dpid, commit=commit) for dpid, _, commit in committed]


# ---------------------------------------------------------------------------
# Serving
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwitchServeStats(object):
    """One switch's share of a fabric serve."""

    datapath_id: int
    rules_installed: int
    packets: int
    hits: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of this switch's lookups that matched a local rule."""
        return self.hits / self.packets if self.packets else 0.0


@dataclass(frozen=True)
class FabricServeResult(object):
    """Outcome of serving one ingress-tagged trace through the fabric."""

    #: Fabric-wide classification per packet, in input order.
    results: Tuple[Classification, ...]
    packets: int
    matched: int
    #: Total per-switch lookups (every packet is looked up once per hop).
    hop_lookups: int
    per_switch: Dict[int, SwitchServeStats]
    #: Merged :class:`~repro.api.session.SessionStats` across the per-switch
    #: sessions.
    session: SessionStats
    #: Merged flow-cache stats across switches (None when no caches attached).
    flow: Optional[Dict[str, object]] = None

    @property
    def hit_ratio(self) -> float:
        """Fraction of fabric packets that matched some installed rule."""
        return self.matched / self.packets if self.packets else 0.0


def _better(a: Classification, b: Classification) -> Classification:
    """The winning record of two per-hop lookups (lower priority value wins)."""
    if not b.matched:
        return a
    if not a.matched:
        return b
    return min(a, b, key=lambda record: (record.priority, record.rule_id))


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------


def assign_ingresses(
    packets: Iterable, ingresses: Sequence[int]
) -> Iterator[FabricPacket]:
    """Deterministically pin untagged headers to ingress switches.

    The externally-supplied-trace policy: a pcap capture (or any plain
    header stream) carries no ingress tags, so each header hashes to an
    ingress by CRC-32 of its packed 104-bit wire word modulo the ingress
    count.  The hash is over the canonical wire bytes, so the assignment is
    stable across processes and platforms (unlike ``hash()``), and every
    packet of a 5-tuple flow enters at the same switch — the way a host's
    traffic always enters through its edge switch.  Already-tagged
    :class:`~repro.rules.trace.FabricPacket` items pass through untouched;
    plain 5-tuples are promoted to headers.
    """
    pool = tuple(ingresses)
    if not pool:
        raise ControlPlaneError("ingress assignment needs at least one ingress switch")
    for packet in packets:
        if isinstance(packet, FabricPacket):
            yield packet
            continue
        if not isinstance(packet, PacketHeader):
            packet = PacketHeader(*packet)
        ingress = pool[zlib.crc32(pack_header(packet)) % len(pool)]
        yield FabricPacket(ingress, packet)


class FabricController(ControlPlane):
    """Transactional control plane over a whole switch fabric.

    Owns an internal :class:`~repro.controller.SdnController` with one
    :class:`~repro.controller.Switch` per topology node.  The *logical*
    program (what ``program()`` reports and transactions mutate) is the full
    rule set; each commit re-plans placement and converges every switch onto
    its planned subset with minimal per-switch deltas, all-or-nothing
    fabric-wide (:func:`commit_switch_deltas`).  ``fast``/``vectorized``
    attach the corresponding accelerator to every switch's classifier.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[ClassifierConfig] = None,
        *,
        fast: bool = False,
        vectorized: bool = False,
        name: str = "fabric",
    ) -> None:
        super().__init__()
        self.topology = topology
        self.name = name
        self.controller = SdnController(name=name)
        for dpid in topology.switches:
            switch = self.controller.add_switch(dpid, config)
            if fast or vectorized:
                switch.classifier.enable_fast_path(vectorized=vectorized)
        self._rules: Dict[int, Rule] = {}
        self._plan = plan_placement((), topology)
        #: Successful fabric-wide commits.
        self.commits = 0
        #: Fabric commits that failed on a switch and were fully rolled back.
        self.rolled_back_commits = 0
        #: Failed commits where even rollback failed somewhere — must stay 0.
        self.partial_commits = 0

    # -- introspection -------------------------------------------------------
    @property
    def plan(self) -> PlacementPlan:
        """The placement plan of the currently installed program."""
        return self._plan

    def switch(self, dpid: int) -> Switch:
        """One fabric switch by datapath id."""
        return self.controller.switch(dpid)

    def switches(self) -> List[Switch]:
        """Every fabric switch, in topology order."""
        return [self.controller.switch(dpid) for dpid in self.topology.switches]

    def program(self) -> RuleProgram:
        first = self.controller.switch(self.topology.switches[0])
        return RuleProgram(
            version=self._version,
            rules=tuple(self._rules.values()),
            config=first.classifier.control.program().config,
        )

    # -- transactional mutation ----------------------------------------------
    def _apply(self, delta: Delta) -> Tuple[List[object], List[TxnOp]]:
        staged = dict(self._rules)
        reconfigure: Dict[str, str] = {}
        inverse: List[TxnOp] = []
        first = self.controller.switch(self.topology.switches[0])
        old_settings = first.classifier.control.program().settings
        for op in delta.ops:
            if op.kind == "insert":
                if op.rule.rule_id in staged:
                    raise UpdateError(
                        f"rule {op.rule.rule_id} is already installed in the fabric"
                    )
                staged[op.rule.rule_id] = op.rule
                inverse.append(TxnOp(kind="remove", rule_id=op.rule.rule_id))
            elif op.kind == "remove":
                if op.rule_id not in staged:
                    raise UpdateError(f"rule {op.rule_id} is not installed in the fabric")
                inverse.append(TxnOp(kind="insert", rule=staged.pop(op.rule_id)))
            elif op.kind == "reconfigure":
                if op.ip_algorithm is not None:
                    reconfigure["ip_algorithm"] = op.ip_algorithm
                if op.combiner is not None:
                    reconfigure["combiner_mode"] = op.combiner
                inverse.append(
                    TxnOp(
                        kind="reconfigure",
                        ip_algorithm=(
                            old_settings.get("ip_algorithm") if op.ip_algorithm else None
                        ),
                        combiner=(
                            old_settings.get("combiner_mode") if op.combiner else None
                        ),
                    )
                )
            else:
                raise UpdateError(f"unknown transaction op kind {op.kind!r}")

        plan = plan_placement(tuple(staged.values()), self.topology)
        entries: List[Tuple[int, ControlPlane, Delta]] = []
        for dpid in self.topology.switches:
            plane = self.controller.switch(dpid).classifier.control
            current = plane.program()
            settings = dict(current.settings)
            settings.update(reconfigure)
            desired = RuleProgram(
                version=current.version,
                rules=plan.rules_for(dpid),
                config=tuple(sorted(settings.items())),
            )
            entries.append((dpid, plane, current.diff(desired)))

        try:
            commits = commit_switch_deltas(entries)
        except FabricCommitError as exc:
            self.rolled_back_commits += 1
            if exc.rollback_failures:
                self.partial_commits += 1
            raise

        self._rules = staged
        self._plan = plan
        self.commits += 1
        results: List[object] = list(commits)
        return results, list(reversed(inverse))

    def install(self, ruleset: RuleSet) -> CommitResult:
        """Install a whole rule set as one fabric transaction."""
        txn = self.begin()
        for rule in ruleset.rules():
            txn.insert(rule)
        return txn.commit()

    # -- data plane -----------------------------------------------------------
    def classify(self, packet: FabricPacket) -> Classification:
        """Classify one fabric packet along its routed path (no accounting)."""
        path = self.topology.route_path(packet.ingress)
        best: Optional[Classification] = None
        for dpid in path.hops:
            record = self.controller.switch(dpid).classifier.classify(packet.header)
            best = record if best is None else _better(best, record)
        assert best is not None  # a path always has at least one hop
        return best

    def serve(
        self, packets: Sequence, chunk_size: int = 256
    ) -> FabricServeResult:
        """Serve a trace through the fabric (ingress-tagged or plain).

        Packets are grouped by ingress, looked up on every hop of their
        routed path through a per-switch
        :class:`~repro.perf.parallel.ParallelSession`, and the per-hop
        records combine into one fabric classification per packet: the
        highest-priority match along the path (exact, because placement
        keeps overlap components whole), or the ingress switch's miss
        record.  Per-switch and fabric-wide statistics update only after
        **every** switch finished — a failing switch aborts the serve with
        all counters untouched.

        ``packets`` may mix ingress-tagged
        :class:`~repro.rules.trace.FabricPacket` items with plain headers or
        5-tuples — an external trace (a pcap capture via
        :func:`repro.io.pcap.read_pcap`) carries no tags, so untagged
        packets are pinned deterministically by :func:`assign_ingresses`.
        """
        packets = list(assign_ingresses(packets, self.topology.ingresses()))
        if not packets:
            raise ControlPlaneError("cannot serve an empty fabric trace")
        paths = {packet.ingress: self.topology.route_path(packet.ingress) for packet in packets}
        workloads: Dict[int, List[Tuple[int, FabricPacket]]] = {}
        for index, packet in enumerate(packets):
            for dpid in paths[packet.ingress].hops:
                workloads.setdefault(dpid, []).append((index, packet))

        per_switch_results: Dict[int, List[Classification]] = {}
        session_parts: List[SessionStats] = []
        flow_parts: List[Optional[Dict[str, object]]] = []
        sessions: List[ParallelSession] = []
        try:
            for dpid in sorted(workloads):
                classifier = self.controller.switch(dpid).classifier
                session = ParallelSession([classifier], chunk_size=chunk_size)
                sessions.append(session)
                batch = session.feed(
                    packet.header for _, packet in workloads[dpid]
                )
                per_switch_results[dpid] = list(batch.results)
                session_parts.append(session.stats())
                flow_parts.append(session.flow_cache_stats())
        finally:
            for session in sessions:
                session.close()

        combined: List[Optional[Classification]] = [None] * len(packets)
        ingress_records: List[Optional[Classification]] = [None] * len(packets)
        per_switch_hits: Dict[int, int] = {dpid: 0 for dpid in workloads}
        for dpid, records in per_switch_results.items():
            for (index, packet), record in zip(workloads[dpid], records):
                if record.matched:
                    per_switch_hits[dpid] += 1
                if packet.ingress == dpid:
                    ingress_records[index] = record
                current = combined[index]
                combined[index] = record if current is None else _better(current, record)
        # A fabric miss reports the *ingress* hop's miss record: every hop's
        # miss is semantically identical but their cost counters are not, so
        # pin the choice for determinism.
        for index in range(len(packets)):
            if not combined[index].matched:
                combined[index] = ingress_records[index]

        results = tuple(combined)
        matched = sum(1 for record in results if record.matched)
        per_switch: Dict[int, SwitchServeStats] = {}
        for dpid in sorted(workloads):
            switch = self.controller.switch(dpid)
            lookups = len(workloads[dpid])
            hits = per_switch_hits[dpid]
            switch.stats.packets_classified += lookups
            switch.stats.packets_matched += hits
            per_switch[dpid] = SwitchServeStats(
                datapath_id=dpid,
                rules_installed=switch.classifier.installed_rules,
                packets=lookups,
                hits=hits,
            )
        return FabricServeResult(
            results=results,
            packets=len(packets),
            matched=matched,
            hop_lookups=sum(len(entries) for entries in workloads.values()),
            per_switch=per_switch,
            session=SessionStats.merge(session_parts),
            flow=merge_flow_cache_stats(flow_parts),
        )

    def __repr__(self) -> str:
        return (
            f"FabricController({self.name!r}, switches={len(self.topology.switches)}, "
            f"rules={len(self._rules)}, version={self._version})"
        )

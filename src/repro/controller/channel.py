"""In-process control channel between the controller and switches.

A real deployment would carry OpenFlow over TCP/TLS; the behavioural model
only needs ordered, reliable, countable message delivery, so the channel is a
pair of in-process queues that *serialise and deserialise every message* (so
byte counts are honest and the codec is exercised on every exchange) and keep
per-direction statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.controller.openflow import decode_message, encode_message
from repro.exceptions import ControlPlaneError

__all__ = ["ChannelStats", "ControlChannel"]


@dataclass
class ChannelStats:
    """Per-direction message and byte counters."""

    messages_to_switch: int = 0
    messages_to_controller: int = 0
    bytes_to_switch: int = 0
    bytes_to_controller: int = 0

    @property
    def total_messages(self) -> int:
        """Messages exchanged in both directions."""
        return self.messages_to_switch + self.messages_to_controller

    @property
    def total_bytes(self) -> int:
        """Bytes exchanged in both directions."""
        return self.bytes_to_switch + self.bytes_to_controller


class ControlChannel:
    """Ordered, lossless, in-process controller <-> switch channel."""

    def __init__(self, name: str = "channel") -> None:
        self.name = name
        self._to_switch: Deque[bytes] = deque()
        self._to_controller: Deque[bytes] = deque()
        self.stats = ChannelStats()

    # -- controller side ---------------------------------------------------------
    def send_to_switch(self, message) -> int:
        """Enqueue a controller → switch message; returns its encoded size."""
        blob = encode_message(message)
        self._to_switch.append(blob)
        self.stats.messages_to_switch += 1
        self.stats.bytes_to_switch += len(blob)
        return len(blob)

    def receive_from_switch(self):
        """Dequeue the next switch → controller message (None when idle)."""
        if not self._to_controller:
            return None
        return decode_message(self._to_controller.popleft())

    def drain_from_switch(self) -> List[object]:
        """Dequeue every pending switch → controller message."""
        messages = []
        while self._to_controller:
            messages.append(decode_message(self._to_controller.popleft()))
        return messages

    # -- switch side -----------------------------------------------------------------
    def send_to_controller(self, message) -> int:
        """Enqueue a switch → controller message; returns its encoded size."""
        blob = encode_message(message)
        self._to_controller.append(blob)
        self.stats.messages_to_controller += 1
        self.stats.bytes_to_controller += len(blob)
        return len(blob)

    def receive_from_controller(self):
        """Dequeue the next controller → switch message (None when idle)."""
        if not self._to_switch:
            return None
        return decode_message(self._to_switch.popleft())

    # -- introspection -----------------------------------------------------------------
    @property
    def pending_to_switch(self) -> int:
        """Messages queued towards the switch."""
        return len(self._to_switch)

    @property
    def pending_to_controller(self) -> int:
        """Messages queued towards the controller."""
        return len(self._to_controller)

    def require_empty(self) -> None:
        """Assert that both directions are fully drained (used by tests)."""
        if self._to_switch or self._to_controller:
            raise ControlPlaneError(
                f"channel {self.name!r} still has pending messages "
                f"({len(self._to_switch)} to switch, {len(self._to_controller)} to controller)"
            )

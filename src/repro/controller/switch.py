"""SDN switch (data-plane device) hosting the configurable classifier.

The switch owns one :class:`~repro.core.classifier.ConfigurableClassifier`
instance, consumes control messages from its channel (FlowMod, ConfigMod,
Barrier, StatsRequest) and classifies data-plane packets with the installed
rule set — the Infrastructure-layer box of the paper's Fig. 1.

Control messages land through the classifier's transactional control plane
(:mod:`repro.api.control`): each FlowMod/ConfigMod becomes a single-op
transaction committed all-or-nothing, so the device's rule program advances
in epoch-stamped versions and a rejected message leaves it bit-exact where
it was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.controller.channel import ControlChannel
from repro.controller.openflow import (
    BarrierReply,
    BarrierRequest,
    ConfigMod,
    FlowMod,
    FlowModCommand,
    FlowModReply,
    StatsReply,
    StatsRequest,
)
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig
from repro.core.result import BatchResult, Classification, LookupResult
from repro.exceptions import ControlPlaneError, RemovedApiError, ReproError
from repro.rules.packet import PacketHeader

__all__ = ["SwitchStats", "Switch"]


@dataclass
class SwitchStats:
    """Data-plane and control-plane counters of one switch."""

    packets_classified: int = 0
    packets_matched: int = 0
    flow_mods_applied: int = 0
    flow_mods_failed: int = 0
    reconfigurations: int = 0

    @property
    def match_ratio(self) -> float:
        """Fraction of classified packets that hit an installed rule."""
        if not self.packets_classified:
            return 0.0
        return self.packets_matched / self.packets_classified


class Switch:
    """A data-plane device: classifier + control channel endpoint."""

    def __init__(
        self,
        datapath_id: int,
        channel: ControlChannel,
        config: Optional[ClassifierConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.datapath_id = datapath_id
        self.name = name or f"switch-{datapath_id}"
        self.channel = channel
        self.classifier = ConfigurableClassifier(config)
        self.stats = SwitchStats()

    # -- control plane -----------------------------------------------------------
    def process_control_messages(self, limit: Optional[int] = None) -> int:
        """Apply pending controller messages in order; returns how many were handled."""
        handled = 0
        while limit is None or handled < limit:
            message = self.channel.receive_from_controller()
            if message is None:
                break
            self._dispatch(message)
            handled += 1
        return handled

    def _dispatch(self, message) -> None:
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, ConfigMod):
            self._handle_config_mod(message)
        elif isinstance(message, BarrierRequest):
            self.channel.send_to_controller(BarrierReply(xid=message.xid))
        elif isinstance(message, StatsRequest):
            self._handle_stats_request(message)
        else:
            raise ControlPlaneError(
                f"{self.name} received an unexpected control message: {type(message).__name__}"
            )

    def _handle_flow_mod(self, message: FlowMod) -> None:
        try:
            txn = self.classifier.control.begin()
            if message.command is FlowModCommand.ADD:
                txn.insert(message.rule)
            else:
                txn.remove(message.target_rule_id)
            commit = txn.commit()
            self.stats.flow_mods_applied += 1
            reply = FlowModReply(
                xid=message.xid,
                rule_id=message.target_rule_id,
                success=True,
                structural=commit.structural,
                cycles=commit.update_cycles,
            )
        except ReproError as exc:
            self.stats.flow_mods_failed += 1
            reply = FlowModReply(
                xid=message.xid,
                rule_id=message.target_rule_id,
                success=False,
                error=str(exc),
            )
        self.channel.send_to_controller(reply)

    def _handle_config_mod(self, message: ConfigMod) -> None:
        if message.ip_algorithm is not None or message.combiner_mode is not None:
            txn = self.classifier.control.begin().reconfigure(
                ip_algorithm=message.ip_algorithm, combiner=message.combiner_mode
            )
            txn.commit()
            if message.ip_algorithm is not None:
                self.stats.reconfigurations += 1
        self.channel.send_to_controller(BarrierReply(xid=message.xid))

    def _handle_stats_request(self, message: StatsRequest) -> None:
        report = self.classifier.report()
        stats: Dict[str, object] = {
            "datapath_id": self.datapath_id,
            "rules_installed": report.rules_installed,
            "rule_capacity": report.rule_capacity,
            "ip_algorithm": report.ip_algorithm,
            "throughput_gbps": report.throughput_gbps,
            "memory_bits_used": report.total_memory_bits_used,
            "packets_classified": self.stats.packets_classified,
            "match_ratio": self.stats.match_ratio,
            "program_version": self.classifier.control.version,
            "program_epoch": self.classifier.control.epoch,
        }
        self.channel.send_to_controller(StatsReply(xid=message.xid, stats=stats))

    # -- data plane -----------------------------------------------------------------
    def classify(self, packet: PacketHeader) -> Classification:
        """Classify one data-plane packet with the installed rules (unified API)."""
        result = self.classifier.classify(packet)
        self.stats.packets_classified += 1
        if result.matched:
            self.stats.packets_matched += 1
        return result

    def classify_batch(self, trace) -> BatchResult:
        """Classify a whole packet trace (unified API)."""
        return BatchResult(tuple(self.classify(packet) for packet in trace))

    def classify_trace(self, trace) -> List[LookupResult]:
        """Removed pre-unified-API batch entry point (error stub).

        .. deprecated:: 1.1 (removed in 1.3)
           Use :meth:`classify_batch`.
        """
        raise RemovedApiError(
            "Switch.classify_trace() was removed; use classify_batch() "
            "(per-packet LookupResults ride along as Classification.detail)"
        )

    def __repr__(self) -> str:
        return (
            f"Switch(dpid={self.datapath_id}, rules={self.classifier.installed_rules}, "
            f"ip={self.classifier.config.ip_algorithm.value})"
        )

"""SDN controller.

The control-plane half of the paper's architecture (section III.A): the
controller owns the rule sets, chooses the optimal per-field algorithm
combination for each application's requirements, pushes rules to the devices
through the OpenFlow-lite channel and performs incremental updates.

The algorithm-selection policy reproduces the paper's motivating example: a
latency/throughput-critical application (e.g. multi-end video conferencing)
gets the fast MBT configuration, while an application with a very large rule
filter gets the memory-efficient BST configuration — decided by
:meth:`SdnController.select_ip_algorithm` from the application requirements
and the device's rule capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.controller.channel import ControlChannel
from repro.controller.openflow import (
    BarrierReply,
    BarrierRequest,
    ConfigMod,
    FlowMod,
    FlowModCommand,
    FlowModReply,
    StatsReply,
    StatsRequest,
)
from repro.controller.switch import Switch
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.exceptions import ControlPlaneError
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["ApplicationRequirements", "PushReport", "SdnController"]


def _estimate_bst_throughput(config: ClassifierConfig) -> float:
    """Worst-case throughput of the BST configuration (Gbit/s, 40-byte packets).

    The BST engine needs up to 16 iterative comparisons per packet, so its
    sustained rate is Fmax / 16 lookups per second (Table VI).
    """
    from repro.hardware.clock import ClockModel

    clock = ClockModel(frequency_hz=config.clock_mhz * 1e6)
    return clock.throughput_gbps(cycles_per_packet=16, packet_bytes=config.min_packet_bytes)


@dataclass(frozen=True)
class ApplicationRequirements:
    """What a network application asks of the classification datapath."""

    name: str
    #: Minimum sustained throughput the application needs (Gbit/s).
    min_throughput_gbps: float = 1.0
    #: Number of flow rules the application expects to install.
    expected_rules: int = 1000
    #: True when lookup latency matters more than rule capacity.
    latency_critical: bool = False


@dataclass
class PushReport:
    """Outcome of pushing a batch of rules to one switch."""

    datapath_id: int
    requested: int = 0
    accepted: int = 0
    rejected: int = 0
    structural_updates: int = 0
    total_update_cycles: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when every requested rule was accepted."""
        return self.rejected == 0


class SdnController:
    """The control-plane application managing the classification devices."""

    def __init__(self, name: str = "controller") -> None:
        self.name = name
        self._switches: Dict[int, Switch] = {}
        self._channels: Dict[int, ControlChannel] = {}
        self._next_xid = 1

    # -- topology management ------------------------------------------------------
    def add_switch(
        self, datapath_id: int, config: Optional[ClassifierConfig] = None
    ) -> Switch:
        """Create and register a switch reachable through a fresh channel."""
        if datapath_id in self._switches:
            raise ControlPlaneError(f"datapath id {datapath_id} already registered")
        channel = ControlChannel(name=f"{self.name}<->dp{datapath_id}")
        switch = Switch(datapath_id=datapath_id, channel=channel, config=config)
        self._switches[datapath_id] = switch
        self._channels[datapath_id] = channel
        return switch

    def switch(self, datapath_id: int) -> Switch:
        """Return a registered switch."""
        try:
            return self._switches[datapath_id]
        except KeyError as exc:
            raise ControlPlaneError(f"unknown datapath id {datapath_id}") from exc

    def switches(self) -> List[Switch]:
        """Every registered switch."""
        return list(self._switches.values())

    def channel(self, datapath_id: int) -> ControlChannel:
        """Control channel of one switch (mainly for statistics)."""
        self.switch(datapath_id)
        return self._channels[datapath_id]

    def _xid(self) -> int:
        xid = self._next_xid
        self._next_xid += 1
        return xid

    # -- algorithm selection (the paper's configurability) ---------------------------
    def select_ip_algorithm(
        self, requirements: ApplicationRequirements, config: Optional[ClassifierConfig] = None
    ) -> IpAlgorithm:
        """Choose MBT or BST for an application's requirements.

        Policy: latency-critical applications, or any application whose
        throughput target exceeds what the BST configuration can sustain, get
        the MBT; applications whose expected rule count does not fit the MBT
        configuration's rule capacity get the BST (which reclaims the MBT
        memory for extra rules); otherwise the MBT is the default because it
        is strictly faster.
        """
        config = config or ClassifierConfig()
        mbt_capacity = config.with_ip_algorithm(IpAlgorithm.MBT).rule_capacity()
        bst_config = config.with_ip_algorithm(IpAlgorithm.BST)
        bst_capacity = bst_config.rule_capacity()
        bst_throughput = _estimate_bst_throughput(bst_config)
        if requirements.expected_rules > bst_capacity:
            raise ControlPlaneError(
                f"application {requirements.name!r} needs {requirements.expected_rules} rules, "
                f"above the device capacity of {bst_capacity}"
            )
        if requirements.expected_rules > mbt_capacity:
            if requirements.latency_critical or requirements.min_throughput_gbps > bst_throughput:
                raise ControlPlaneError(
                    f"application {requirements.name!r} needs {requirements.expected_rules} rules "
                    f"and {requirements.min_throughput_gbps} Gbps; no configuration satisfies both"
                )
            return IpAlgorithm.BST
        if requirements.latency_critical or requirements.min_throughput_gbps > bst_throughput:
            return IpAlgorithm.MBT
        # Both configurations satisfy the application; keep rule-capacity
        # headroom when the expected rule count already crowds the MBT filter,
        # otherwise default to the faster MBT.
        if requirements.expected_rules > 0.75 * mbt_capacity:
            return IpAlgorithm.BST
        return IpAlgorithm.MBT

    def configure_switch(
        self,
        datapath_id: int,
        ip_algorithm: Optional[IpAlgorithm] = None,
        combiner_mode: Optional[CombinerMode] = None,
    ) -> None:
        """Send a ConfigMod and wait for the switch to acknowledge it."""
        switch = self.switch(datapath_id)
        channel = self._channels[datapath_id]
        xid = self._xid()
        channel.send_to_switch(ConfigMod(ip_algorithm=ip_algorithm, combiner_mode=combiner_mode, xid=xid))
        switch.process_control_messages()
        reply = channel.receive_from_switch()
        if not isinstance(reply, BarrierReply) or reply.xid != xid:
            raise ControlPlaneError(f"unexpected reply to ConfigMod on dp{datapath_id}: {reply!r}")

    def deploy_application(
        self, datapath_id: int, requirements: ApplicationRequirements, ruleset: RuleSet
    ) -> PushReport:
        """Pick the algorithm for an application and push its rule set."""
        algorithm = self.select_ip_algorithm(requirements, self.switch(datapath_id).classifier.config)
        self.configure_switch(datapath_id, ip_algorithm=algorithm)
        return self.push_ruleset(datapath_id, ruleset)

    # -- rule management ----------------------------------------------------------------
    def push_rule(self, datapath_id: int, rule: Rule) -> FlowModReply:
        """Install a single rule and return the switch's acknowledgement."""
        report = self.push_rules(datapath_id, [rule])
        if report.rejected:
            raise ControlPlaneError(
                f"rule {rule.rule_id} rejected by dp{datapath_id}: {report.errors[0]}"
            )
        return FlowModReply(xid=0, rule_id=rule.rule_id, success=True)

    def push_ruleset(self, datapath_id: int, ruleset: RuleSet) -> PushReport:
        """Install every rule of a rule set (priority order preserved)."""
        return self.push_rules(datapath_id, ruleset.rules())

    def push_rules(self, datapath_id: int, rules: Iterable[Rule]) -> PushReport:
        """Install a batch of rules, collecting per-rule acknowledgements."""
        switch = self.switch(datapath_id)
        channel = self._channels[datapath_id]
        report = PushReport(datapath_id=datapath_id)
        for rule in rules:
            channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=rule, xid=self._xid()))
            report.requested += 1
        switch.process_control_messages()
        for reply in channel.drain_from_switch():
            if not isinstance(reply, FlowModReply):
                raise ControlPlaneError(f"unexpected reply during rule push: {reply!r}")
            if reply.success:
                report.accepted += 1
                report.total_update_cycles += reply.cycles
                if reply.structural:
                    report.structural_updates += 1
            else:
                report.rejected += 1
                if reply.error:
                    report.errors.append(reply.error)
        return report

    def sync_ruleset(self, datapath_id: int, target: RuleSet) -> PushReport:
        """Converge one switch onto ``target`` with a minimal, *atomic* delta.

        Snapshots the device's versioned :class:`~repro.api.control.RuleProgram`,
        diffs it against the target rule set
        (:meth:`~repro.api.control.RuleProgram.diff`) and commits the
        resulting removals and insertions as one transaction through the
        fabric commit path (:func:`~repro.controller.fabric.commit_switch_deltas`
        over a 1-switch fabric) — the whole delta lands or none of it does.
        Rules already installed and unchanged generate no work at all; a
        rejected delta reports every op as rejected and leaves the switch at
        its pre-sync program version.
        """
        from repro.api.control import RuleProgram
        from repro.controller.fabric import FabricCommitError, commit_switch_deltas

        switch = self.switch(datapath_id)
        plane = switch.classifier.control
        current = plane.program()
        desired = RuleProgram(
            version=current.version,
            rules=tuple(target.rules()),
            config=current.config,  # sync moves rules, not the datapath config
        )
        delta = current.diff(desired)
        report = PushReport(datapath_id=datapath_id, requested=len(delta.ops))
        if not delta.ops:
            return report
        try:
            (committed,) = commit_switch_deltas([(datapath_id, plane, delta)])
        except FabricCommitError as exc:
            report.rejected = report.requested
            report.errors.append(str(exc))
            switch.stats.flow_mods_failed += len(delta.ops)
            return report
        report.accepted = report.requested
        report.total_update_cycles = committed.commit.update_cycles
        report.structural_updates = sum(
            1 for result in committed.commit.results if getattr(result, "structural", False)
        )
        switch.stats.flow_mods_applied += len(delta.ops)
        return report

    def remove_rule(self, datapath_id: int, rule_id: int) -> FlowModReply:
        """Delete one rule from a switch."""
        switch = self.switch(datapath_id)
        channel = self._channels[datapath_id]
        xid = self._xid()
        channel.send_to_switch(FlowMod(command=FlowModCommand.DELETE, rule_id=rule_id, xid=xid))
        switch.process_control_messages()
        reply = channel.receive_from_switch()
        if not isinstance(reply, FlowModReply):
            raise ControlPlaneError(f"unexpected reply to rule deletion: {reply!r}")
        if not reply.success:
            raise ControlPlaneError(f"rule {rule_id} deletion failed: {reply.error}")
        return reply

    def barrier(self, datapath_id: int) -> None:
        """Fence: return only after the switch has applied every earlier message."""
        switch = self.switch(datapath_id)
        channel = self._channels[datapath_id]
        xid = self._xid()
        channel.send_to_switch(BarrierRequest(xid=xid))
        switch.process_control_messages()
        for reply in channel.drain_from_switch():
            if isinstance(reply, BarrierReply) and reply.xid == xid:
                return
        raise ControlPlaneError(f"barrier {xid} was not acknowledged by dp{datapath_id}")

    def request_stats(self, datapath_id: int) -> Dict[str, object]:
        """Ask one switch for its classifier statistics."""
        switch = self.switch(datapath_id)
        channel = self._channels[datapath_id]
        xid = self._xid()
        channel.send_to_switch(StatsRequest(xid=xid))
        switch.process_control_messages()
        for reply in channel.drain_from_switch():
            if isinstance(reply, StatsReply) and reply.xid == xid:
                return reply.stats
        raise ControlPlaneError(f"stats request {xid} was not answered by dp{datapath_id}")

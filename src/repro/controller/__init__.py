"""SDN control plane: controller, switches and the OpenFlow-lite channel.

The paper's architecture splits responsibilities between a software controller
(algorithm selection, label-table maintenance, incremental update computation)
and the hardware device (parallel lookup).  This package provides the
software half:

* :class:`~repro.controller.controller.SdnController` — algorithm selection
  policy, rule pushing, statistics collection;
* :class:`~repro.controller.switch.Switch` — a data-plane device hosting one
  :class:`~repro.core.classifier.ConfigurableClassifier`;
* :class:`~repro.controller.channel.ControlChannel` — ordered in-process
  message transport with byte accounting;
* :mod:`~repro.controller.openflow` — the FlowMod/ConfigMod/Barrier/Stats
  message vocabulary;
* :mod:`~repro.controller.fabric` — the multi-switch fabric: topology +
  shortest-path routing, overlap-component rule placement, topology-wide
  transactional commits and per-switch parallel serving.
"""

from repro.controller.channel import ChannelStats, ControlChannel
from repro.controller.controller import ApplicationRequirements, PushReport, SdnController
from repro.controller.fabric import (
    FabricCommitError,
    FabricController,
    FabricPath,
    FabricServeResult,
    PlacementPlan,
    SwitchCommit,
    SwitchServeStats,
    Topology,
    commit_switch_deltas,
    plan_placement,
)
from repro.controller.openflow import (
    BarrierReply,
    BarrierRequest,
    ConfigMod,
    FlowMod,
    FlowModCommand,
    FlowModReply,
    MessageType,
    StatsReply,
    StatsRequest,
    decode_message,
    encode_message,
)
from repro.controller.switch import Switch, SwitchStats

__all__ = [
    "SdnController",
    "ApplicationRequirements",
    "PushReport",
    "Switch",
    "SwitchStats",
    "ControlChannel",
    "ChannelStats",
    "FlowMod",
    "FlowModCommand",
    "FlowModReply",
    "ConfigMod",
    "BarrierRequest",
    "BarrierReply",
    "StatsRequest",
    "StatsReply",
    "MessageType",
    "encode_message",
    "decode_message",
    "Topology",
    "FabricPath",
    "PlacementPlan",
    "plan_placement",
    "FabricController",
    "FabricCommitError",
    "commit_switch_deltas",
    "SwitchCommit",
    "SwitchServeStats",
    "FabricServeResult",
]

"""OpenFlow-lite control messages.

The paper positions the classifier inside an SDN device whose rules are
"pushed to the network devices by means of an open protocol such as OpenFlow".
This module models the handful of message types that interaction needs — a
deliberately small, version-agnostic subset of OpenFlow 1.x semantics:

* :class:`FlowMod` — add or delete one classification rule;
* :class:`ConfigMod` — reconfigure the lookup datapath (the ``IPalg_s``
  selection and the combiner mode);
* :class:`BarrierRequest` / :class:`BarrierReply` — ordering fence;
* :class:`FlowModReply`, :class:`StatsRequest`, :class:`StatsReply` —
  acknowledgements and device statistics.

Messages are plain frozen dataclasses with a compact ``encode``/``decode``
round trip so channel byte counts can be reported, but no wire compatibility
with real OpenFlow is attempted (none is needed for the evaluation).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import CombinerMode, IpAlgorithm
from repro.exceptions import ControlPlaneError
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.fields.prefix import Prefix
from repro.fields.range_utils import PortRange

__all__ = [
    "MessageType",
    "FlowModCommand",
    "FlowMod",
    "FlowModReply",
    "ConfigMod",
    "BarrierRequest",
    "BarrierReply",
    "StatsRequest",
    "StatsReply",
    "encode_message",
    "decode_message",
]


class MessageType(enum.Enum):
    """Discriminator carried by every control message."""

    FLOW_MOD = "flow_mod"
    FLOW_MOD_REPLY = "flow_mod_reply"
    CONFIG_MOD = "config_mod"
    BARRIER_REQUEST = "barrier_request"
    BARRIER_REPLY = "barrier_reply"
    STATS_REQUEST = "stats_request"
    STATS_REPLY = "stats_reply"


class FlowModCommand(enum.Enum):
    """FlowMod sub-commands (the subset the classifier update path needs)."""

    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """Add or delete one rule on a switch."""

    command: FlowModCommand
    rule: Optional[Rule] = None
    rule_id: Optional[int] = None
    xid: int = 0

    def __post_init__(self) -> None:
        if self.command is FlowModCommand.ADD and self.rule is None:
            raise ControlPlaneError("FlowMod ADD requires a rule")
        if self.command is FlowModCommand.DELETE and self.rule_id is None and self.rule is None:
            raise ControlPlaneError("FlowMod DELETE requires a rule or a rule id")

    @property
    def type(self) -> MessageType:
        return MessageType.FLOW_MOD

    @property
    def target_rule_id(self) -> int:
        """Rule id this message refers to."""
        if self.rule is not None:
            return self.rule.rule_id
        assert self.rule_id is not None
        return self.rule_id


@dataclass(frozen=True)
class FlowModReply:
    """Per-FlowMod acknowledgement with the device-side update cost."""

    xid: int
    rule_id: int
    success: bool
    structural: bool = False
    cycles: int = 0
    error: Optional[str] = None

    @property
    def type(self) -> MessageType:
        return MessageType.FLOW_MOD_REPLY


@dataclass(frozen=True)
class ConfigMod:
    """Reconfigure the datapath: IP algorithm selection and combiner mode."""

    ip_algorithm: Optional[IpAlgorithm] = None
    combiner_mode: Optional[CombinerMode] = None
    xid: int = 0

    @property
    def type(self) -> MessageType:
        return MessageType.CONFIG_MOD


@dataclass(frozen=True)
class BarrierRequest:
    """Fence: the switch replies only after every earlier message is applied."""

    xid: int = 0

    @property
    def type(self) -> MessageType:
        return MessageType.BARRIER_REQUEST


@dataclass(frozen=True)
class BarrierReply:
    """Reply to a :class:`BarrierRequest`."""

    xid: int = 0

    @property
    def type(self) -> MessageType:
        return MessageType.BARRIER_REPLY


@dataclass(frozen=True)
class StatsRequest:
    """Ask the switch for its classifier report."""

    xid: int = 0

    @property
    def type(self) -> MessageType:
        return MessageType.STATS_REQUEST


@dataclass(frozen=True)
class StatsReply:
    """Device statistics (a flattened ClassifierReport)."""

    xid: int
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def type(self) -> MessageType:
        return MessageType.STATS_REPLY


# -- serialisation ---------------------------------------------------------------
def _rule_to_dict(rule: Rule) -> Dict[str, object]:
    return {
        "rule_id": rule.rule_id,
        "priority": rule.priority,
        "src": [rule.src_prefix.value, rule.src_prefix.length],
        "dst": [rule.dst_prefix.value, rule.dst_prefix.length],
        "src_port": [rule.src_port.low, rule.src_port.high],
        "dst_port": [rule.dst_port.low, rule.dst_port.high],
        "protocol": [rule.protocol.wildcard, rule.protocol.value],
        "action": rule.action.value,
    }


def _rule_from_dict(payload: Dict[str, object]) -> Rule:
    return Rule(
        rule_id=int(payload["rule_id"]),
        priority=int(payload["priority"]),
        src_prefix=Prefix(*payload["src"]),
        dst_prefix=Prefix(*payload["dst"]),
        src_port=PortRange(*payload["src_port"]),
        dst_port=PortRange(*payload["dst_port"]),
        protocol=ProtocolMatch(wildcard=payload["protocol"][0], value=payload["protocol"][1]),
        action=RuleAction(payload["action"]),
    )


def encode_message(message) -> bytes:
    """Serialise any control message to a compact JSON byte string."""
    body: Dict[str, object] = {"type": message.type.value, "xid": getattr(message, "xid", 0)}
    if isinstance(message, FlowMod):
        body["command"] = message.command.value
        body["rule"] = _rule_to_dict(message.rule) if message.rule is not None else None
        body["rule_id"] = message.rule_id
    elif isinstance(message, FlowModReply):
        body.update(
            rule_id=message.rule_id,
            success=message.success,
            structural=message.structural,
            cycles=message.cycles,
            error=message.error,
        )
    elif isinstance(message, ConfigMod):
        body["ip_algorithm"] = message.ip_algorithm.value if message.ip_algorithm else None
        body["combiner_mode"] = message.combiner_mode.value if message.combiner_mode else None
    elif isinstance(message, StatsReply):
        body["stats"] = message.stats
    elif isinstance(message, (BarrierRequest, BarrierReply, StatsRequest)):
        pass
    else:
        raise ControlPlaneError(f"cannot encode message of type {type(message).__name__}")
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def decode_message(blob: bytes):
    """Inverse of :func:`encode_message`."""
    try:
        body = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ControlPlaneError("malformed control message") from exc
    message_type = MessageType(body["type"])
    xid = int(body.get("xid", 0))
    if message_type is MessageType.FLOW_MOD:
        rule = _rule_from_dict(body["rule"]) if body.get("rule") else None
        return FlowMod(
            command=FlowModCommand(body["command"]),
            rule=rule,
            rule_id=body.get("rule_id"),
            xid=xid,
        )
    if message_type is MessageType.FLOW_MOD_REPLY:
        return FlowModReply(
            xid=xid,
            rule_id=int(body["rule_id"]),
            success=bool(body["success"]),
            structural=bool(body.get("structural", False)),
            cycles=int(body.get("cycles", 0)),
            error=body.get("error"),
        )
    if message_type is MessageType.CONFIG_MOD:
        algorithm = body.get("ip_algorithm")
        combiner = body.get("combiner_mode")
        return ConfigMod(
            ip_algorithm=IpAlgorithm(algorithm) if algorithm else None,
            combiner_mode=CombinerMode(combiner) if combiner else None,
            xid=xid,
        )
    if message_type is MessageType.BARRIER_REQUEST:
        return BarrierRequest(xid=xid)
    if message_type is MessageType.BARRIER_REPLY:
        return BarrierReply(xid=xid)
    if message_type is MessageType.STATS_REQUEST:
        return StatsRequest(xid=xid)
    if message_type is MessageType.STATS_REPLY:
        return StatsReply(xid=xid, stats=body.get("stats", {}))
    raise ControlPlaneError(f"unknown message type {message_type}")

"""Distributed Crossproducting of Field Labels (DCFL) baseline (Taylor & Turner, INFOCOM 2005).

DCFL is the decomposition method the paper's label technique descends from:
every unique field value gets a label, per-field lookups run in parallel and
return *sets* of matching labels, and an aggregation network combines the sets
pairwise — at each aggregation node, only the label pairs that actually occur
together in some rule survive (they are stored in a hash table mapping the
pair to a *meta-label*).  The final aggregation node yields the set of
matching rules, from which the best priority wins.

The aggregation order used here mirrors the field order of the paper:

    (src IP, dst IP) -> A
    (A, src port)    -> B
    (B, dst port)    -> C
    (C, protocol)    -> matching rules

Memory accesses are counted as: per-field lookups (interval search per field)
plus one hash probe per candidate label combination examined at every
aggregation node — the count that lands DCFL at ~23 average accesses in
Table I, between the trees (HyperCuts/RFC) and the proposed architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule

__all__ = ["DcflClassifier"]

#: Field order of the aggregation network.
_FIELDS: Tuple[str, ...] = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")


def _field_interval(rule: Rule, field: str) -> Tuple[int, int]:
    if field == "src_ip":
        return rule.src_prefix.low, rule.src_prefix.high
    if field == "dst_ip":
        return rule.dst_prefix.low, rule.dst_prefix.high
    if field == "src_port":
        return rule.src_port.low, rule.src_port.high
    if field == "dst_port":
        return rule.dst_port.low, rule.dst_port.high
    if rule.protocol.wildcard:
        return 0, 255
    return rule.protocol.value, rule.protocol.value


def _field_space(field: str) -> int:
    if field in ("src_ip", "dst_ip"):
        return 1 << 32
    if field in ("src_port", "dst_port"):
        return 1 << 16
    return 1 << 8


def _packet_value(packet: PacketHeader, field: str) -> int:
    return packet.field(field)


@dataclass
class _FieldLabeller:
    """Per-field label table + interval index answering point lookups."""

    field: str
    #: unique field value (as an interval) -> label.
    labels: Dict[Tuple[int, int], int]
    #: Sweep structure: sorted boundaries and, per elementary interval, the
    #: frozen set of labels covering it.
    boundaries: List[int]
    covering: List[FrozenSet[int]]

    def lookup(self, value: int) -> Tuple[FrozenSet[int], int]:
        """Return (matching labels, memory accesses) for a point value."""
        accesses = 0
        low, high = 0, len(self.boundaries) - 1
        position = 0
        while low <= high:
            mid = (low + high) // 2
            accesses += 1
            if self.boundaries[mid] <= value:
                position = mid
                low = mid + 1
            else:
                high = mid - 1
        accesses += 1  # fetch the label set of the elementary interval
        return self.covering[position], accesses

    def memory_bits(self, label_bits: int = 16) -> int:
        """Boundary array + per-interval label sets + the label table itself."""
        node_bits = len(self.boundaries) * (32 + 16)
        set_bits = sum(len(entry) for entry in self.covering) * label_bits
        table_bits = len(self.labels) * (64 + label_bits)
        return node_bits + set_bits + table_bits


@register_classifier("dcfl", description="distributed crossproducting of field labels")
class DcflClassifier(BaselineClassifier):
    """Label-based decomposition classifier with a pairwise aggregation network."""

    name = "DCFL"

    #: Bits of one aggregation hash-table entry (two input labels + meta label).
    AGGREGATION_ENTRY_BITS = 48

    def build(self) -> None:
        rules = self.ruleset.rules()
        self._rules = rules
        self._labellers: Dict[str, _FieldLabeller] = {
            field: self._build_labeller(field, rules) for field in _FIELDS
        }
        # Per rule, its label in every field.
        self._rule_labels: List[Tuple[int, ...]] = []
        for rule in rules:
            labels = tuple(
                self._labellers[field].labels[_field_interval(rule, field)] for field in _FIELDS
            )
            self._rule_labels.append(labels)
        # Aggregation tables: progressively longer label-tuple prefixes that
        # occur in at least one rule, mapped to a meta-label.  The meta-label
        # of the final stage indexes the set of rules sharing the full tuple.
        self._aggregation: List[Dict[Tuple[int, int], int]] = []
        self._stage_tuples: List[Dict[Tuple[int, ...], int]] = []
        previous: Dict[Tuple[int, ...], int] = {}
        for stage in range(1, len(_FIELDS)):
            table: Dict[Tuple[int, int], int] = {}
            current: Dict[Tuple[int, ...], int] = {}
            for labels in self._rule_labels:
                prefix = labels[: stage + 1]
                if prefix in current:
                    continue
                left = previous[prefix[:-1]] if stage > 1 else prefix[0]
                meta = len(current)
                current[prefix] = meta
                table[(left, prefix[-1])] = meta
            self._aggregation.append(table)
            self._stage_tuples.append(current)
            previous = current
        # Final meta-label -> best rule.
        self._best_rule_by_tuple: Dict[Tuple[int, ...], Rule] = {}
        for rule, labels in zip(rules, self._rule_labels):
            existing = self._best_rule_by_tuple.get(labels)
            if existing is None or rule.priority < existing.priority:
                self._best_rule_by_tuple[labels] = rule

    def _build_labeller(self, field: str, rules: Sequence[Rule]) -> _FieldLabeller:
        labels: Dict[Tuple[int, int], int] = {}
        for rule in rules:
            interval = _field_interval(rule, field)
            if interval not in labels:
                labels[interval] = len(labels)
        space = _field_space(field)
        start_events: Dict[int, List[int]] = {}
        end_events: Dict[int, List[int]] = {}
        boundaries = {0}
        for (low, high), label in labels.items():
            boundaries.add(low)
            start_events.setdefault(low, []).append(label)
            if high + 1 < space:
                boundaries.add(high + 1)
                end_events.setdefault(high + 1, []).append(label)
        ordered = sorted(boundaries)
        active: Set[int] = set()
        covering: List[FrozenSet[int]] = []
        for boundary in ordered:
            for label in end_events.get(boundary, ()):
                active.discard(label)
            for label in start_events.get(boundary, ()):
                active.add(label)
            covering.append(frozenset(active))
        return _FieldLabeller(field=field, labels=labels, boundaries=ordered, covering=covering)

    # -- lookup ---------------------------------------------------------------------
    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Parallel field lookups followed by the pairwise aggregation network."""
        accesses = 0
        field_sets: List[FrozenSet[int]] = []
        for field in _FIELDS:
            matched, field_accesses = self._labellers[field].lookup(_packet_value(packet, field))
            accesses += field_accesses
            if not matched:
                return ClassificationOutcome(rule=None, memory_accesses=accesses)
            field_sets.append(matched)
        # Aggregation: the surviving set starts as the src_ip labels and is
        # narrowed at each stage by probing the stage hash table.
        survivors: Set[Tuple[Tuple[int, ...], int]] = {((label,), label) for label in field_sets[0]}
        for stage in range(1, len(_FIELDS)):
            table = self._aggregation[stage - 1]
            next_survivors: Set[Tuple[Tuple[int, ...], int]] = set()
            for prefix, meta in survivors:
                for label in field_sets[stage]:
                    accesses += 1  # one hash probe per candidate combination
                    found = table.get((meta, label))
                    if found is not None:
                        next_survivors.add((prefix + (label,), found))
            survivors = next_survivors
            if not survivors:
                return ClassificationOutcome(rule=None, memory_accesses=accesses)
        best: Optional[Rule] = None
        for full_tuple, _ in survivors:
            accesses += 1  # read the rule entry of the surviving tuple
            rule = self._best_rule_by_tuple.get(full_tuple)
            if rule is not None and (best is None or rule.priority < best.priority):
                best = rule
        return ClassificationOutcome(rule=best, memory_accesses=accesses)

    # -- accounting -----------------------------------------------------------------
    def _memory_bits(self) -> int:
        """Field labellers + aggregation hash tables + the rule table."""
        total = sum(labeller.memory_bits() for labeller in self._labellers.values())
        # DCFL's hash tables are provisioned well above their load factor; the
        # 4x overprovisioning constant reflects the memory-inefficiency the
        # paper criticises ("the memory utilization is inefficient").
        overprovision = 4
        total += sum(
            len(table) * self.AGGREGATION_ENTRY_BITS * overprovision for table in self._aggregation
        )
        total += len(self._rules) * 160
        return total

    def aggregation_sizes(self) -> List[int]:
        """Entries per aggregation stage (diagnostics / tests)."""
        self.ensure_built()
        return [len(table) for table in self._aggregation]

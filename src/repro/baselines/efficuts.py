"""EffiCuts baseline (Vamanan et al., SIGCOMM 2010).

EffiCuts attacks HyperCuts' main weakness — rule replication caused by rules
that are "large" (wildcard-like) in some dimension being copied into every
child of a cut along that dimension.  Its key idea is *separable trees*: rules
are first partitioned by which dimensions they are large in (their largeness
signature), one decision tree is built per partition, and a lookup walks every
tree and keeps the best-priority match.  Memory shrinks dramatically (no
replication of large rules) at the price of a few extra memory accesses (one
tree walk per partition), which is exactly the trade-off the paper describes
("EffiCuts reduces memory space ... but with increased memory access time").

The implementation reuses :class:`~repro.baselines.hypercuts.HyperCutsClassifier`
for the per-partition trees.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.baselines.hypercuts import HyperCutsClassifier, _rule_interval
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["EffiCutsClassifier"]

#: Dimensions and the fraction of the field space above which a rule is
#: considered "large" in that dimension (the EffiCuts largeness threshold).
_DIMENSIONS: Tuple[Tuple[str, int], ...] = (
    ("src_ip", 32),
    ("dst_ip", 32),
    ("src_port", 16),
    ("dst_port", 16),
    ("protocol", 8),
)
_LARGENESS_THRESHOLD = 0.5


def _largeness_signature(rule: Rule) -> Tuple[bool, ...]:
    """True per dimension when the rule covers at least half the field space."""
    signature = []
    for dimension, width in _DIMENSIONS:
        low, high = _rule_interval(rule, dimension)
        span = high - low + 1
        signature.append(span >= _LARGENESS_THRESHOLD * (1 << width))
    return tuple(signature)


@register_classifier("efficuts", description="separable-tree HyperCuts variant")
class EffiCutsClassifier(BaselineClassifier):
    """Separable-tree variant of HyperCuts."""

    name = "EffiCuts"

    def __init__(self, ruleset: RuleSet, binth: int = 16, max_children: int = 32) -> None:
        self.binth = binth
        self.max_children = max_children
        super().__init__(ruleset)

    def build(self) -> None:
        """Partition rules by largeness signature and build one tree per partition."""
        partitions: Dict[Tuple[bool, ...], List[Rule]] = {}
        for rule in self.ruleset.rules():
            partitions.setdefault(_largeness_signature(rule), []).append(rule)
        self._trees: List[HyperCutsClassifier] = []
        self._signatures: List[Tuple[bool, ...]] = []
        for signature, rules in sorted(partitions.items()):
            subset = RuleSet(rules, name=f"{self.ruleset.name}/{signature}")
            self._trees.append(
                HyperCutsClassifier.create(subset, binth=self.binth, max_children=self.max_children)
            )
            self._signatures.append(signature)

    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Walk every partition tree and keep the best-priority match."""
        best = None
        accesses = 0
        for tree in self._trees:
            outcome = tree.match_packet(packet)
            accesses += outcome.memory_accesses
            if outcome.rule is not None and (best is None or outcome.rule.priority < best.priority):
                best = outcome.rule
        return ClassificationOutcome(rule=best, memory_accesses=accesses)

    def _memory_bits(self) -> int:
        """Sum of the partition trees (each stores only its own rules)."""
        return sum(tree.memory_bits() for tree in self._trees)

    @property
    def partition_count(self) -> int:
        """Number of separable partitions (diagnostics / tests)."""
        self.ensure_built()
        return len(self._trees)

    def replication_factor(self) -> float:
        """Leaf rule pointers per rule — EffiCuts' headline improvement metric."""
        pointers = sum(tree.rule_pointer_count for tree in self._trees)
        return pointers / max(1, len(self.ruleset))

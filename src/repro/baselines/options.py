"""The "Option 1" and "Option 2" single-field combinations of Table I.

The authors' earlier comparison paper [17] identified two promising
combinations of one-dimensional lookup algorithms:

* **Option 1** — a 5-level multi-bit trie for the 32-bit IP address fields, a
  4-level segment trie for the port fields and a register-based lookup table
  for the protocol field;
* **Option 2** — a 4-level multi-bit trie for the IP fields, a 5-level segment
  trie for the ports and the same protocol table.

Both decompose the classification exactly like the proposed architecture
(labels per unique field value, cross-product resolution against the rule
tuples); they differ from it only in the choice of per-field engines — which
is precisely the point of the configurable design.  The classifier below is
therefore a generic "combination classifier" parameterised by an engine
factory per field; the two Options are thin presets over it.

Memory-access accounting: sum of the per-field engine accesses plus one hash
probe per label combination examined — the methodology behind the Option rows
of Table I (49.3 and 31.33 average accesses).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.fields.base import SingleFieldEngine
from repro.fields.multibit_trie import MultibitTrie
from repro.fields.protocol_table import ProtocolTable
from repro.fields.segment_trie import SegmentTrie
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["SingleFieldCombinationClassifier", "Option1Classifier", "Option2Classifier"]

#: Field order used for label tuples.
_FIELDS: Tuple[str, ...] = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")


def _rule_spec(rule: Rule, field: str):
    if field == "src_ip":
        return (rule.src_prefix.value, rule.src_prefix.length)
    if field == "dst_ip":
        return (rule.dst_prefix.value, rule.dst_prefix.length)
    if field == "src_port":
        return (rule.src_port.low, rule.src_port.high)
    if field == "dst_port":
        return (rule.dst_port.low, rule.dst_port.high)
    return rule.protocol.key()


def _packet_value(packet: PacketHeader, field: str) -> int:
    return packet.field(field)


class SingleFieldCombinationClassifier(BaselineClassifier):
    """Generic combination of five single-field engines with label resolution."""

    name = "SingleFieldCombination"

    def __init__(self, ruleset: RuleSet, engine_factories: Dict[str, Callable[[], SingleFieldEngine]]) -> None:
        missing = [field for field in _FIELDS if field not in engine_factories]
        if missing:
            raise ValueError(f"engine factories missing for fields: {missing}")
        self._factories = engine_factories
        super().__init__(ruleset)

    def build(self) -> None:
        """Label every unique field value and insert it into its field engine."""
        self.engines: Dict[str, SingleFieldEngine] = {
            field: self._factories[field]() for field in _FIELDS
        }
        self._labels: Dict[str, Dict[object, int]] = {field: {} for field in _FIELDS}
        self._rules_by_tuple: Dict[Tuple[int, ...], Rule] = {}
        for rule in self.ruleset.rules():
            tuple_labels: List[int] = []
            for field in _FIELDS:
                spec = _rule_spec(rule, field)
                table = self._labels[field]
                label = table.get(spec)
                if label is None:
                    label = len(table)
                    table[spec] = label
                    self.engines[field].insert(spec, label, rule.priority)
                tuple_labels.append(label)
            key = tuple(tuple_labels)
            existing = self._rules_by_tuple.get(key)
            if existing is None or rule.priority < existing.priority:
                self._rules_by_tuple[key] = rule

    # -- lookup ---------------------------------------------------------------------
    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Per-field lookups followed by cross-product resolution."""
        accesses = 0
        field_matches: List[Tuple[Tuple[int, int], ...]] = []
        for field in _FIELDS:
            result = self.engines[field].lookup(_packet_value(packet, field))
            accesses += result.memory_accesses
            if not result.matched:
                return ClassificationOutcome(rule=None, memory_accesses=accesses)
            field_matches.append(result.matches)
        best: Optional[Rule] = None
        best_key = None
        # Walk the combinations (label lists are short for real rule sets);
        # each combination costs one hash probe into the rule-tuple table.
        stack: List[Tuple[int, Tuple[int, ...]]] = [(0, ())]
        while stack:
            depth, partial = stack.pop()
            if depth == len(_FIELDS):
                accesses += 1
                rule = self._rules_by_tuple.get(partial)
                if rule is not None and (best is None or rule.priority < best.priority):
                    best = rule
                    best_key = partial
                continue
            for label, _priority in field_matches[depth]:
                stack.append((depth + 1, partial + (label,)))
        return ClassificationOutcome(rule=best, memory_accesses=accesses)

    # -- accounting -----------------------------------------------------------------
    def _memory_bits(self) -> int:
        """Field engines + label tables + the rule tuple table."""
        total = sum(engine.memory_bits() for engine in self.engines.values())
        total += sum(len(table) * 64 for table in self._labels.values())
        total += len(self._rules_by_tuple) * 160
        return total


def _ip_trie_factory(levels: int) -> Callable[[], SingleFieldEngine]:
    """A 32-bit multi-bit trie with ``levels`` near-equal strides."""
    base = 32 // levels
    remainder = 32 - base * levels
    strides = tuple(base + (1 if index < remainder else 0) for index in range(levels))

    def factory() -> SingleFieldEngine:
        return MultibitTrie(name=f"ip_mbt_{levels}l", width=32, strides=strides)

    return factory


def _port_trie_factory(levels: int) -> Callable[[], SingleFieldEngine]:
    def factory() -> SingleFieldEngine:
        return SegmentTrie(name=f"port_segment_{levels}l", levels=levels)

    return factory


@register_classifier("option1", description="Option 1 single-field combination of Table I")
class Option1Classifier(SingleFieldCombinationClassifier):
    """Option 1 of Table I: 5-level MBT (IP), 4-level segment trie (ports), protocol LUT."""

    name = "Option1"

    def __init__(self, ruleset: RuleSet) -> None:
        super().__init__(
            ruleset,
            {
                "src_ip": _ip_trie_factory(5),
                "dst_ip": _ip_trie_factory(5),
                "src_port": _port_trie_factory(4),
                "dst_port": _port_trie_factory(4),
                "protocol": lambda: ProtocolTable(name="protocol_lut"),
            },
        )


@register_classifier("option2", description="Option 2 single-field combination of Table I")
class Option2Classifier(SingleFieldCombinationClassifier):
    """Option 2 of Table I: 4-level MBT (IP), segment trie (ports), protocol LUT.

    The paper's Option 2 uses a 5-level segment trie; a 16-bit port space does
    not divide into five equal strides, so the closest realisable structure —
    a 2-level segment trie with wider segments (8/8) — is used and noted in
    EXPERIMENTS.md.  The distinguishing property (fewer IP levels, different
    port trie depth than Option 1) is preserved.
    """

    name = "Option2"

    def __init__(self, ruleset: RuleSet) -> None:
        super().__init__(
            ruleset,
            {
                "src_ip": _ip_trie_factory(4),
                "dst_ip": _ip_trie_factory(4),
                "src_port": _port_trie_factory(2),
                "dst_port": _port_trie_factory(2),
                "protocol": lambda: ProtocolTable(name="protocol_lut"),
            },
        )

"""HyperCuts baseline (Singh et al., SIGCOMM 2003).

HyperCuts is the reference decision-tree multi-field classifier: every
internal node cuts the remaining rule hyper-rectangle along one or several
dimensions into equal-sized children; rules are pushed into every child they
overlap, and leaves below a bucket threshold are searched linearly.

The implementation here follows the standard heuristics:

* the cut dimensions at a node are those with the largest number of distinct
  rule projections (up to ``max_cut_dimensions`` of them);
* the number of cuts per chosen dimension follows the ``sqrt(N)`` rule of the
  original paper, capped so a node's child count never exceeds
  ``max_children``;
* recursion stops when a node holds at most ``binth`` rules or no cut makes
  progress.

Lookup cost is one memory access per tree node traversed plus one per rule
scanned in the leaf bucket, which is the access-count methodology behind the
HyperCuts row of Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule

__all__ = ["HyperCutsClassifier", "HyperCutsNode"]

#: The five classification dimensions with their bit widths.
_DIMENSION_WIDTHS: Tuple[Tuple[str, int], ...] = (
    ("src_ip", 32),
    ("dst_ip", 32),
    ("src_port", 16),
    ("dst_port", 16),
    ("protocol", 8),
)


def _rule_interval(rule: Rule, dimension: str) -> Tuple[int, int]:
    """Projection of a rule onto one dimension as an inclusive interval."""
    if dimension == "src_ip":
        return rule.src_prefix.low, rule.src_prefix.high
    if dimension == "dst_ip":
        return rule.dst_prefix.low, rule.dst_prefix.high
    if dimension == "src_port":
        return rule.src_port.low, rule.src_port.high
    if dimension == "dst_port":
        return rule.dst_port.low, rule.dst_port.high
    if rule.protocol.wildcard:
        return 0, 255
    return rule.protocol.value, rule.protocol.value


def _packet_value(packet: PacketHeader, dimension: str) -> int:
    """Value of a packet header along one dimension."""
    return packet.field(dimension)


@dataclass
class HyperCutsNode:
    """One node of the HyperCuts decision tree."""

    #: The region of header space this node covers: dimension -> (low, high).
    region: Dict[str, Tuple[int, int]]
    #: Rules intersecting the region (only stored at leaves).
    rules: List[Rule] = field(default_factory=list)
    #: Cut description: list of (dimension, number of cuts).
    cuts: List[Tuple[str, int]] = field(default_factory=list)
    children: List[Optional["HyperCutsNode"]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True when the node holds its rules directly."""
        return not self.cuts


@register_classifier("hypercuts", description="decision tree with multi-dimensional cuts")
class HyperCutsClassifier(BaselineClassifier):
    """Decision-tree classifier with multi-dimensional cuts."""

    name = "HyperCuts"

    def __init__(
        self,
        ruleset,
        binth: int = 16,
        max_cut_dimensions: int = 2,
        max_children: int = 64,
        space_factor: float = 2.0,
        max_depth: int = 32,
    ) -> None:
        self.binth = binth
        self.max_cut_dimensions = max_cut_dimensions
        self.max_children = max_children
        self.space_factor = space_factor
        self.max_depth = max_depth
        self.node_count = 0
        self.rule_pointer_count = 0
        super().__init__(ruleset)

    # -- construction ------------------------------------------------------------
    def build(self) -> None:
        """Recursively build the decision tree."""
        full_region = {name: (0, (1 << width) - 1) for name, width in _DIMENSION_WIDTHS}
        self.node_count = 0
        self.rule_pointer_count = 0
        self.root = self._build_node(full_region, self.ruleset.rules(), depth=0)

    def _build_node(
        self, region: Dict[str, Tuple[int, int]], rules: List[Rule], depth: int
    ) -> HyperCutsNode:
        node = HyperCutsNode(region=region)
        self.node_count += 1
        if len(rules) <= self.binth or depth >= self.max_depth:
            node.rules = sorted(rules, key=lambda rule: rule.priority)
            self.rule_pointer_count += len(node.rules)
            return node
        cuts = self._choose_cuts(region, rules)
        if not cuts:
            node.rules = sorted(rules, key=lambda rule: rule.priority)
            self.rule_pointer_count += len(node.rules)
            return node
        node.cuts = cuts
        child_regions = self._child_regions(region, cuts)
        made_progress = False
        children: List[Optional[HyperCutsNode]] = []
        child_rule_sets: List[List[Rule]] = []
        for child_region in child_regions:
            child_rules = [rule for rule in rules if self._rule_intersects(rule, child_region)]
            child_rule_sets.append(child_rules)
            if len(child_rules) < len(rules):
                made_progress = True
        if not made_progress:
            node.cuts = []
            node.rules = sorted(rules, key=lambda rule: rule.priority)
            self.rule_pointer_count += len(node.rules)
            return node
        for child_region, child_rules in zip(child_regions, child_rule_sets):
            if not child_rules:
                children.append(None)
            else:
                children.append(self._build_node(child_region, child_rules, depth + 1))
        node.children = children
        return node

    def _choose_cuts(
        self, region: Dict[str, Tuple[int, int]], rules: List[Rule]
    ) -> List[Tuple[str, int]]:
        """Pick cut dimensions (most distinct projections) and cut counts (sqrt rule)."""
        distinct: List[Tuple[int, str]] = []
        for dimension, _ in _DIMENSION_WIDTHS:
            low, high = region[dimension]
            if high <= low:
                continue
            projections = {
                self._clip(_rule_interval(rule, dimension), low, high) for rule in rules
            }
            if len(projections) > 1:
                distinct.append((len(projections), dimension))
        if not distinct:
            return []
        distinct.sort(reverse=True)
        chosen = [dimension for _, dimension in distinct[: self.max_cut_dimensions]]
        total_budget = max(4, int(self.space_factor * math.sqrt(len(rules))))
        per_dimension = max(2, int(round(total_budget ** (1.0 / len(chosen)))))
        cuts: List[Tuple[str, int]] = []
        child_product = 1
        for dimension in chosen:
            low, high = region[dimension]
            span = high - low + 1
            count = min(per_dimension, span, max(2, self.max_children // child_product))
            count = 1 << (count.bit_length() - 1)  # power of two cuts
            if count < 2:
                continue
            cuts.append((dimension, count))
            child_product *= count
            if child_product >= self.max_children:
                break
        return cuts

    @staticmethod
    def _clip(interval: Tuple[int, int], low: int, high: int) -> Tuple[int, int]:
        return max(interval[0], low), min(interval[1], high)

    @staticmethod
    def _child_regions(
        region: Dict[str, Tuple[int, int]], cuts: Sequence[Tuple[str, int]]
    ) -> List[Dict[str, Tuple[int, int]]]:
        regions = [dict(region)]
        for dimension, count in cuts:
            low, high = region[dimension]
            span = high - low + 1
            step = max(1, span // count)
            expanded: List[Dict[str, Tuple[int, int]]] = []
            for base in regions:
                for index in range(count):
                    slice_low = low + index * step
                    slice_high = high if index == count - 1 else min(high, slice_low + step - 1)
                    if slice_low > high:
                        continue
                    child = dict(base)
                    child[dimension] = (slice_low, slice_high)
                    expanded.append(child)
            regions = expanded
        return regions

    @staticmethod
    def _rule_intersects(rule: Rule, region: Dict[str, Tuple[int, int]]) -> bool:
        for dimension, (low, high) in region.items():
            rule_low, rule_high = _rule_interval(rule, dimension)
            if rule_high < low or rule_low > high:
                return False
        return True

    # -- lookup ---------------------------------------------------------------------
    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Walk the tree, then scan the leaf bucket in priority order."""
        accesses = 0
        node = self.root
        while node is not None and not node.is_leaf:
            accesses += 1
            index = self._child_index(node, packet)
            node = node.children[index] if 0 <= index < len(node.children) else None
        if node is None:
            return ClassificationOutcome(rule=None, memory_accesses=accesses)
        accesses += 1  # read the leaf header
        for rule in node.rules:
            accesses += 1
            if rule.matches(packet):
                return ClassificationOutcome(rule=rule, memory_accesses=accesses)
        return ClassificationOutcome(rule=None, memory_accesses=accesses)

    def _child_index(self, node: HyperCutsNode, packet: PacketHeader) -> int:
        index = 0
        for dimension, count in node.cuts:
            low, high = node.region[dimension]
            span = high - low + 1
            step = max(1, span // count)
            value = _packet_value(packet, dimension)
            offset = min(count - 1, max(0, (value - low) // step))
            index = index * count + offset
        return index

    # -- accounting -----------------------------------------------------------------
    def _memory_bits(self) -> int:
        """Node headers + child pointer arrays + leaf rule pointers + rule table."""
        node_header_bits = 64
        pointer_bits = 20
        child_pointer_bits = sum(
            len(node.children) * pointer_bits for node in self._iter_nodes() if not node.is_leaf
        )
        rule_pointer_bits = self.rule_pointer_count * pointer_bits
        rule_table_bits = len(self.ruleset) * 160
        return self.node_count * node_header_bits + child_pointer_bits + rule_pointer_bits + rule_table_bits

    def _iter_nodes(self):
        self.ensure_built()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            yield node
            if not node.is_leaf:
                stack.extend(child for child in node.children if child is not None)

    def tree_depth(self) -> int:
        """Maximum depth of the decision tree (diagnostics / tests)."""
        self.ensure_built()

        def depth(node: Optional[HyperCutsNode]) -> int:
            if node is None or node.is_leaf:
                return 1
            return 1 + max(depth(child) for child in node.children)

        return depth(self.root)

"""Baseline classifiers used for the comparative evaluation (Table I / VII).

* :class:`~repro.baselines.linear_search.LinearSearchClassifier` — ground truth;
* :class:`~repro.baselines.hypercuts.HyperCutsClassifier` — decision tree with
  multi-dimensional cuts;
* :class:`~repro.baselines.efficuts.EffiCutsClassifier` — separable-tree
  HyperCuts variant;
* :class:`~repro.baselines.rfc.RfcClassifier` — Recursive Flow Classification;
* :class:`~repro.baselines.dcfl.DcflClassifier` — Distributed Crossproducting
  of Field Labels;
* :class:`~repro.baselines.bitvector.BitVectorClassifier` — parallel bit-vector
  decomposition;
* :class:`~repro.baselines.options.Option1Classifier` /
  :class:`~repro.baselines.options.Option2Classifier` — the single-field
  combinations of Table I.
"""

from repro.baselines.base import (
    BaselineClassifier,
    BaselineEvaluation,
    ClassificationOutcome,
    evaluate_baseline,
)
from repro.baselines.bitvector import BitVectorClassifier
from repro.baselines.dcfl import DcflClassifier
from repro.baselines.efficuts import EffiCutsClassifier
from repro.baselines.hypercuts import HyperCutsClassifier
from repro.baselines.linear_search import LinearSearchClassifier
from repro.baselines.options import (
    Option1Classifier,
    Option2Classifier,
    SingleFieldCombinationClassifier,
)
from repro.baselines.rfc import RfcClassifier

__all__ = [
    "BaselineClassifier",
    "ClassificationOutcome",
    "BaselineEvaluation",
    "evaluate_baseline",
    "LinearSearchClassifier",
    "HyperCutsClassifier",
    "EffiCutsClassifier",
    "RfcClassifier",
    "DcflClassifier",
    "BitVectorClassifier",
    "SingleFieldCombinationClassifier",
    "Option1Classifier",
    "Option2Classifier",
]

"""Common interface of the baseline classifiers.

Table I of the paper compares the proposed approach against the most popular
multi-field and decomposition algorithms on two metrics: the average number of
memory accesses per lookup and the total memory space.  Every baseline in this
package therefore implements the same small interface —
:meth:`BaselineClassifier.match_packet` returning the matched rule together
with the number of memory accesses, plus :meth:`BaselineClassifier.memory_bits`
— so the Table I harness can sweep them uniformly, and every one of them is
validated against the linear-search ground truth in the test suite.

Baselines plug into the unified :mod:`repro.api` classification protocol via
:class:`repro.api.adapters.BaselineAdapter`; the canonical way to obtain a
built instance is :meth:`BaselineClassifier.create` (or, one level up,
:func:`repro.api.create_classifier`).  Construction no longer builds the
search structure implicitly: ``__init__`` only records the rule set and the
subclass options, and the factory path invokes :meth:`build` afterwards, so
subclasses may define ``__init__`` options in any order without the base
class consuming half-initialised state.
"""

from __future__ import annotations

import abc
import functools
import inspect
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import RemovedApiError
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["ClassificationOutcome", "BaselineClassifier", "evaluate_baseline", "BaselineEvaluation"]


@dataclass(frozen=True)
class ClassificationOutcome:
    """Result of classifying one packet with a baseline."""

    rule: Optional[Rule]
    memory_accesses: int

    @property
    def matched(self) -> bool:
        """True when some rule matched."""
        return self.rule is not None

    @property
    def rule_id(self) -> Optional[int]:
        """Id of the matched rule, or None."""
        return self.rule.rule_id if self.rule else None


class BaselineClassifier(abc.ABC):
    """A packet classifier built once from a rule set.

    Instances are constructed lazily: :meth:`build` runs the first time the
    structure is needed, or eagerly through the :meth:`create` factory.
    """

    #: Human-readable algorithm name (used in the Table I rows).
    name: str = "baseline"

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self._built = False
        #: Constructor options of this instance (recorded automatically by
        #: ``__init_subclass__``); replayed to rebuild an equivalent
        #: structure after a rule change (see BaselineAdapter).
        self._create_options: dict = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        init = cls.__dict__.get("__init__")
        if init is None or getattr(init, "_records_options", False):
            return
        signature = inspect.signature(init)

        @functools.wraps(init)
        def wrapper(self, *args, **options):
            recorded = {}
            try:
                bound = signature.bind(self, *args, **options)
                # Everything beyond (self, ruleset) is a tuning option; a
                # **kwargs bucket is flattened so replaying via create(**...)
                # reproduces the original call.
                for name, value in list(bound.arguments.items())[2:]:
                    kind = signature.parameters[name].kind
                    if kind is inspect.Parameter.VAR_KEYWORD:
                        recorded.update(value)
                    elif kind is not inspect.Parameter.VAR_POSITIONAL:
                        recorded[name] = value
            except TypeError:
                recorded = {}
            init(self, *args, **options)
            self._create_options = recorded

        wrapper._records_options = True
        cls.__init__ = wrapper

    @classmethod
    def create(cls, ruleset: RuleSet, **options) -> "BaselineClassifier":
        """Factory path: construct with ``options`` and build the structure.

        This is the supported way to obtain a ready-to-use baseline; it lets
        subclasses accept ``__init__`` options freely because :meth:`build`
        only runs after the instance is fully initialised.
        """
        classifier = cls(ruleset, **options)
        classifier.ensure_built()
        return classifier

    def ensure_built(self) -> None:
        """Build the search structure once (idempotent)."""
        if not self._built:
            self.build()
            self._built = True

    @property
    def built(self) -> bool:
        """True once :meth:`build` has run."""
        return self._built

    @abc.abstractmethod
    def build(self) -> None:
        """Construct the search structure from ``self.ruleset``."""

    @abc.abstractmethod
    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Subclass lookup kernel; only runs on a built structure."""

    def match_packet(self, packet: PacketHeader) -> ClassificationOutcome:
        """Return the HPMR for ``packet`` and the memory accesses spent.

        Builds the search structure on first use, so a directly constructed
        baseline behaves like one from the :meth:`create` factory.
        """
        self.ensure_built()
        return self._match(packet)

    def classify(self, packet: PacketHeader) -> ClassificationOutcome:
        """Removed pre-unified-API entry point (error stub).

        .. deprecated:: 1.1 (removed in 1.3)
           Use :meth:`match_packet` for the raw outcome, or go through
           :func:`repro.api.create_classifier` for the unified
           ``classify() -> Classification`` protocol.
        """
        raise RemovedApiError(
            f"{type(self).__name__}.classify() was removed; use match_packet() "
            "for the raw outcome or the unified repro.api classification protocol"
        )

    @abc.abstractmethod
    def _memory_bits(self) -> int:
        """Subclass accounting kernel; only runs on a built structure."""

    def memory_bits(self) -> int:
        """Total size of the search structure in bits (builds on first use)."""
        self.ensure_built()
        return self._memory_bits()

    def memory_megabits(self) -> float:
        """Memory space in Mbit — the unit of Table I."""
        return self.memory_bits() / 1e6

    def describe(self) -> dict:
        """Structured summary used by reports."""
        return {
            "algorithm": self.name,
            "rules": len(self.ruleset),
            "memory_bits": self.memory_bits(),
        }


@dataclass(frozen=True)
class BaselineEvaluation:
    """Aggregate lookup statistics of one baseline over a trace (a Table I row)."""

    algorithm: str
    rules: int
    packets: int
    average_memory_accesses: float
    worst_memory_accesses: int
    memory_megabits: float
    hit_ratio: float


def evaluate_baseline(
    classifier: BaselineClassifier, trace: Sequence[PacketHeader]
) -> BaselineEvaluation:
    """Run ``classifier`` over ``trace`` and aggregate the Table I metrics."""
    accesses: List[int] = []
    hits = 0
    for packet in trace:
        outcome = classifier.match_packet(packet)
        accesses.append(outcome.memory_accesses)
        if outcome.matched:
            hits += 1
    packets = len(trace)
    return BaselineEvaluation(
        algorithm=classifier.name,
        rules=len(classifier.ruleset),
        packets=packets,
        average_memory_accesses=sum(accesses) / packets if packets else 0.0,
        worst_memory_accesses=max(accesses) if accesses else 0,
        memory_megabits=classifier.memory_megabits(),
        hit_ratio=hits / packets if packets else 0.0,
    )

"""Common interface of the baseline classifiers.

Table I of the paper compares the proposed approach against the most popular
multi-field and decomposition algorithms on two metrics: the average number of
memory accesses per lookup and the total memory space.  Every baseline in this
package therefore implements the same small interface —
:meth:`BaselineClassifier.classify` returning the matched rule together with
the number of memory accesses, plus :meth:`BaselineClassifier.memory_bits` —
so the Table I harness can sweep them uniformly, and every one of them is
validated against the linear-search ground truth in the test suite.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["ClassificationOutcome", "BaselineClassifier", "evaluate_baseline", "BaselineEvaluation"]


@dataclass(frozen=True)
class ClassificationOutcome:
    """Result of classifying one packet with a baseline."""

    rule: Optional[Rule]
    memory_accesses: int

    @property
    def matched(self) -> bool:
        """True when some rule matched."""
        return self.rule is not None

    @property
    def rule_id(self) -> Optional[int]:
        """Id of the matched rule, or None."""
        return self.rule.rule_id if self.rule else None


class BaselineClassifier(abc.ABC):
    """A packet classifier built once from a rule set."""

    #: Human-readable algorithm name (used in the Table I rows).
    name: str = "baseline"

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self.build()

    @abc.abstractmethod
    def build(self) -> None:
        """Construct the search structure from ``self.ruleset``."""

    @abc.abstractmethod
    def classify(self, packet: PacketHeader) -> ClassificationOutcome:
        """Return the HPMR for ``packet`` and the memory accesses spent."""

    @abc.abstractmethod
    def memory_bits(self) -> int:
        """Total size of the search structure in bits."""

    def memory_megabits(self) -> float:
        """Memory space in Mbit — the unit of Table I."""
        return self.memory_bits() / 1e6

    def describe(self) -> dict:
        """Structured summary used by reports."""
        return {
            "algorithm": self.name,
            "rules": len(self.ruleset),
            "memory_bits": self.memory_bits(),
        }


@dataclass(frozen=True)
class BaselineEvaluation:
    """Aggregate lookup statistics of one baseline over a trace (a Table I row)."""

    algorithm: str
    rules: int
    packets: int
    average_memory_accesses: float
    worst_memory_accesses: int
    memory_megabits: float
    hit_ratio: float


def evaluate_baseline(
    classifier: BaselineClassifier, trace: Sequence[PacketHeader]
) -> BaselineEvaluation:
    """Run ``classifier`` over ``trace`` and aggregate the Table I metrics."""
    accesses: List[int] = []
    hits = 0
    for packet in trace:
        outcome = classifier.classify(packet)
        accesses.append(outcome.memory_accesses)
        if outcome.matched:
            hits += 1
    packets = len(trace)
    return BaselineEvaluation(
        algorithm=classifier.name,
        rules=len(classifier.ruleset),
        packets=packets,
        average_memory_accesses=sum(accesses) / packets if packets else 0.0,
        worst_memory_accesses=max(accesses) if accesses else 0,
        memory_megabits=classifier.memory_megabits(),
        hit_ratio=hits / packets if packets else 0.0,
    )

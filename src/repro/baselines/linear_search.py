"""Linear search baseline.

The simplest possible classifier: scan the rules in priority order and return
the first match.  It is the ground truth every other classifier (the
configurable architecture and all baselines) is validated against, and the
natural worst case for the memory-access metric of Table I.
"""

from __future__ import annotations

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.rules.packet import PacketHeader

__all__ = ["LinearSearchClassifier"]

#: Storage of one rule entry in a flat rule table: two 32-bit prefixes with
#: 6-bit lengths, two 32-bit port ranges, 9-bit protocol spec, action pointer.
RULE_ENTRY_BITS = 2 * (32 + 6) + 2 * 32 + 9 + 16


@register_classifier("linear_search", description="priority-ordered linear scan (ground truth)")
class LinearSearchClassifier(BaselineClassifier):
    """Priority-ordered linear scan over the rule set."""

    name = "LinearSearch"

    def build(self) -> None:
        """Materialise the priority-ordered rule list once."""
        self._ordered = self.ruleset.rules()

    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Scan rules until the first match; one memory access per rule visited."""
        accesses = 0
        for rule in self._ordered:
            accesses += 1
            if rule.matches(packet):
                return ClassificationOutcome(rule=rule, memory_accesses=accesses)
        return ClassificationOutcome(rule=None, memory_accesses=accesses)

    def _memory_bits(self) -> int:
        """One flat table entry per rule."""
        return len(self._ordered) * RULE_ENTRY_BITS

"""Parallel Bit-Vector decomposition baseline (Lakshman/Stiliadis style, as
used for OpenFlow-scale classification on multi-core processors in [10]).

Each field keeps an independent structure (here: binary search over the
field's elementary intervals) whose result is a *bit vector* with one bit per
rule — bit ``i`` set when rule ``i``'s projection on that field matches the
packet.  The per-field vectors are ANDed and the first set bit (rules are
indexed in priority order) is the HPMR.

Memory accesses: the per-field interval search plus reading the bit vector
words (``ceil(N / word_size)`` words per field) plus the final AND scan —
which is why the method, while simple and parallelisable, "is not suitable for
high-speed lookup in current network systems" for large N (the paper's
criticism of [10]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.baselines.dcfl import _field_interval, _field_space, _packet_value
from repro.rules.packet import PacketHeader

__all__ = ["BitVectorClassifier"]

_FIELDS: Tuple[str, ...] = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")


@dataclass
class _FieldIndex:
    """Per-field elementary-interval index with one bit vector per interval."""

    boundaries: List[int]
    vectors: List[int]

    def lookup(self, value: int) -> Tuple[int, int]:
        """Return (bit vector, search accesses) for ``value``."""
        accesses = 0
        low, high = 0, len(self.boundaries) - 1
        position = 0
        while low <= high:
            mid = (low + high) // 2
            accesses += 1
            if self.boundaries[mid] <= value:
                position = mid
                low = mid + 1
            else:
                high = mid - 1
        return self.vectors[position], accesses


@register_classifier("bitvector", description="parallel bit-vector decomposition")
class BitVectorClassifier(BaselineClassifier):
    """Decomposition classifier combining per-field rule bit vectors."""

    name = "BitVector"

    #: Machine word used for the bit-vector access accounting.
    WORD_BITS = 64

    def build(self) -> None:
        rules = self.ruleset.rules()
        self._rules = rules
        self._indexes: Dict[str, _FieldIndex] = {}
        for field in _FIELDS:
            self._indexes[field] = self._build_index(field)

    def _build_index(self, field: str) -> _FieldIndex:
        space = _field_space(field)
        start_events: Dict[int, List[int]] = {}
        end_events: Dict[int, List[int]] = {}
        boundaries = {0}
        for position, rule in enumerate(self._rules):
            low, high = _field_interval(rule, field)
            boundaries.add(low)
            start_events.setdefault(low, []).append(position)
            if high + 1 < space:
                boundaries.add(high + 1)
                end_events.setdefault(high + 1, []).append(position)
        ordered = sorted(boundaries)
        vectors: List[int] = []
        current = 0
        for boundary in ordered:
            for position in end_events.get(boundary, ()):
                current &= ~(1 << position)
            for position in start_events.get(boundary, ()):
                current |= 1 << position
            vectors.append(current)
        return _FieldIndex(boundaries=ordered, vectors=vectors)

    # -- lookup ---------------------------------------------------------------------
    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """AND the per-field vectors and take the lowest set bit (best priority)."""
        accesses = 0
        words_per_vector = (len(self._rules) + self.WORD_BITS - 1) // self.WORD_BITS
        combined = (1 << len(self._rules)) - 1 if self._rules else 0
        for field in _FIELDS:
            vector, search_accesses = self._indexes[field].lookup(_packet_value(packet, field))
            accesses += search_accesses + words_per_vector
            combined &= vector
            if not combined:
                return ClassificationOutcome(rule=None, memory_accesses=accesses)
        position = (combined & -combined).bit_length() - 1
        accesses += 1  # rule table read
        return ClassificationOutcome(rule=self._rules[position], memory_accesses=accesses)

    # -- accounting -----------------------------------------------------------------
    def _memory_bits(self) -> int:
        """Interval boundaries plus one N-bit vector per elementary interval."""
        total = 0
        for index in self._indexes.values():
            total += len(index.boundaries) * 32
            total += len(index.vectors) * len(self._rules)
        total += len(self._rules) * 160
        return total

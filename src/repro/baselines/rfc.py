"""Recursive Flow Classification (RFC) baseline (Gupta & McKeown, SIGCOMM 1999).

RFC trades memory for speed: the packet header is split into chunks, each
chunk value is mapped through a phase-0 table to an equivalence-class id
(eqID), and successive phases combine pairs of eqIDs through precomputed
cross-product tables until a single table yields the matching rule.  Lookup is
a fixed, small number of table reads; memory grows with the product of the
equivalence-class counts, which is why the RFC row of Table I carries by far
the largest memory footprint.

Chunking follows the original paper: the two IP addresses contribute two
16-bit chunks each, the ports one 16-bit chunk each and the protocol one 8-bit
chunk (7 chunks), reduced through a three-level combination tree::

    phase 0:  c0 c1 c2 c3 c4 c5 c6          (per-chunk eqIDs)
    phase 1:  (c0,c1) (c2,c3) (c4,c5)       (source IP, destination IP, ports)
    phase 2:  (p1a,p1b) (p1c,c6)
    phase 3:  (p2a,p2b) -> matching rule

Equivalence classes are computed with rule-set bitmaps (Python integers used
as bit sets), and phase tables are dictionaries keyed by eqID pairs — the
behavioural equivalent of the dense arrays a hardware/C implementation would
use; the reported memory is that of the dense arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_classifier
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule

__all__ = ["RfcClassifier"]

#: Chunk definitions: (name, extractor width in bits).
_CHUNKS: Tuple[Tuple[str, int], ...] = (
    ("src_ip_hi", 16),
    ("src_ip_lo", 16),
    ("dst_ip_hi", 16),
    ("dst_ip_lo", 16),
    ("src_port", 16),
    ("dst_port", 16),
    ("protocol", 8),
)


def _chunk_value(packet: PacketHeader, name: str) -> int:
    if name == "src_ip_hi":
        return packet.src_ip >> 16
    if name == "src_ip_lo":
        return packet.src_ip & 0xFFFF
    if name == "dst_ip_hi":
        return packet.dst_ip >> 16
    if name == "dst_ip_lo":
        return packet.dst_ip & 0xFFFF
    if name == "src_port":
        return packet.src_port
    if name == "dst_port":
        return packet.dst_port
    return packet.protocol


def _rule_chunk_interval(rule: Rule, name: str) -> Tuple[int, int]:
    """Projection of one rule onto one chunk as an inclusive interval.

    IP prefixes project exactly onto 16-bit chunk intervals only when their
    length is 0, 16 or 32 relative to the chunk boundary; other lengths
    project onto an interval on the hi chunk with a full wildcard or full
    range on the lo chunk, which is exactly how the hi/lo decomposition of a
    prefix behaves (the hi chunk constrains, the lo chunk is either fully
    constrained-by-prefix or free).
    """
    if name in ("src_ip_hi", "src_ip_lo"):
        prefix = rule.src_prefix
    elif name in ("dst_ip_hi", "dst_ip_lo"):
        prefix = rule.dst_prefix
    elif name == "src_port":
        return rule.src_port.low, rule.src_port.high
    elif name == "dst_port":
        return rule.dst_port.low, rule.dst_port.high
    else:
        if rule.protocol.wildcard:
            return 0, 255
        return rule.protocol.value, rule.protocol.value
    low, high = prefix.low, prefix.high
    if name.endswith("_hi"):
        return low >> 16, high >> 16
    # Low chunk: constrained only when the prefix pins the full high chunk.
    if (low >> 16) == (high >> 16):
        return low & 0xFFFF, high & 0xFFFF
    return 0, 0xFFFF


@dataclass
class _Phase0Table:
    """One phase-0 chunk table: chunk value -> eqID, plus eqID -> rule bitmap."""

    name: str
    width: int
    boundaries: List[int]
    eq_ids: List[int]
    class_bitmaps: List[int]

    def lookup(self, value: int) -> int:
        """eqID of a chunk value (binary search over the boundary array).

        The hardware table is a dense array indexed by the chunk value (one
        access); the boundary search here is only a memory-compact way to
        reproduce that dense array's content.
        """
        low, high = 0, len(self.boundaries) - 1
        position = 0
        while low <= high:
            mid = (low + high) // 2
            if self.boundaries[mid] <= value:
                position = mid
                low = mid + 1
            else:
                high = mid - 1
        return self.eq_ids[position]

    def dense_entries(self) -> int:
        """Number of entries of the dense hardware table (2**width)."""
        return 1 << self.width


@dataclass
class _CombinationTable:
    """One recombination phase table: (eqID a, eqID b) -> new eqID."""

    name: str
    entries: Dict[Tuple[int, int], int]
    class_bitmaps: List[int]
    input_sizes: Tuple[int, int]

    def lookup(self, a: int, b: int) -> int:
        return self.entries.get((a, b), self._miss_class())

    def _miss_class(self) -> int:
        # Combinations never seen during preprocessing map to the all-zero
        # class, which always exists at index of the empty bitmap if present,
        # otherwise to class 0 (the most common case is that the empty class
        # exists because most chunk combinations match no rule).
        try:
            return self.class_bitmaps.index(0)
        except ValueError:
            return 0

    def dense_entries(self) -> int:
        """Entries of the dense table: |eq classes of a| x |eq classes of b|."""
        return self.input_sizes[0] * self.input_sizes[1]


@register_classifier("rfc", description="recursive flow classification")
class RfcClassifier(BaselineClassifier):
    """Recursive Flow Classification over 7 chunks and 3 recombination phases."""

    name = "RFC"

    #: Bits per eqID entry in the dense tables.
    EQ_ENTRY_BITS = 16

    def build(self) -> None:
        rules = self.ruleset.rules()
        self._rules = rules
        self._phase0: Dict[str, _Phase0Table] = {
            name: self._build_phase0(name, width, rules) for name, width in _CHUNKS
        }
        # Phase 1: source IP, destination IP, port pair.
        p1_src = self._combine("p1_src", self._phase0["src_ip_hi"], self._phase0["src_ip_lo"])
        p1_dst = self._combine("p1_dst", self._phase0["dst_ip_hi"], self._phase0["dst_ip_lo"])
        p1_ports = self._combine("p1_ports", self._phase0["src_port"], self._phase0["dst_port"])
        # Phase 2: addresses together, ports with protocol.
        p2_addr = self._combine("p2_addr", p1_src, p1_dst)
        p2_transport = self._combine("p2_transport", p1_ports, self._phase0["protocol"])
        # Phase 3: final table.
        p3_final = self._combine("p3_final", p2_addr, p2_transport)
        self._phases: List[_CombinationTable] = [p1_src, p1_dst, p1_ports, p2_addr, p2_transport, p3_final]
        self._tables = {"p1_src": p1_src, "p1_dst": p1_dst, "p1_ports": p1_ports,
                        "p2_addr": p2_addr, "p2_transport": p2_transport, "p3_final": p3_final}
        # Final class -> best rule.
        self._final_rules: List[Optional[Rule]] = []
        for bitmap in p3_final.class_bitmaps:
            self._final_rules.append(self._best_rule(bitmap))

    # -- construction helpers ------------------------------------------------------
    def _build_phase0(self, name: str, width: int, rules: Sequence[Rule]) -> _Phase0Table:
        """Sweep the chunk space, forming equivalence classes of rule bitmaps."""
        space = 1 << width
        start_events: Dict[int, List[int]] = {}
        end_events: Dict[int, List[int]] = {}
        boundaries = {0}
        for position, rule in enumerate(rules):
            low, high = _rule_chunk_interval(rule, name)
            boundaries.add(low)
            start_events.setdefault(low, []).append(position)
            if high + 1 < space:
                boundaries.add(high + 1)
                end_events.setdefault(high + 1, []).append(position)
        ordered = sorted(boundaries)
        bitmap = 0
        class_index: Dict[int, int] = {}
        class_bitmaps: List[int] = []
        eq_ids: List[int] = []
        for boundary in ordered:
            for position in end_events.get(boundary, ()):
                bitmap &= ~(1 << position)
            for position in start_events.get(boundary, ()):
                bitmap |= 1 << position
            index = class_index.get(bitmap)
            if index is None:
                index = len(class_bitmaps)
                class_index[bitmap] = index
                class_bitmaps.append(bitmap)
            eq_ids.append(index)
        return _Phase0Table(
            name=name, width=width, boundaries=ordered, eq_ids=eq_ids, class_bitmaps=class_bitmaps
        )

    def _combine(self, name: str, left, right) -> _CombinationTable:
        """Cross-product two tables' equivalence classes into a new table."""
        entries: Dict[Tuple[int, int], int] = {}
        class_index: Dict[int, int] = {}
        class_bitmaps: List[int] = []
        for a, bitmap_a in enumerate(left.class_bitmaps):
            for b, bitmap_b in enumerate(right.class_bitmaps):
                combined = bitmap_a & bitmap_b
                index = class_index.get(combined)
                if index is None:
                    index = len(class_bitmaps)
                    class_index[combined] = index
                    class_bitmaps.append(combined)
                entries[(a, b)] = index
        return _CombinationTable(
            name=name,
            entries=entries,
            class_bitmaps=class_bitmaps,
            input_sizes=(len(left.class_bitmaps), len(right.class_bitmaps)),
        )

    def _best_rule(self, bitmap: int) -> Optional[Rule]:
        if bitmap == 0:
            return None
        position = (bitmap & -bitmap).bit_length() - 1
        return self._rules[position]

    # -- lookup ---------------------------------------------------------------------
    def _match(self, packet: PacketHeader) -> ClassificationOutcome:
        """Chunk the header, walk the phase tables, read the final rule."""
        accesses = 0
        eq: Dict[str, int] = {}
        for name, _ in _CHUNKS:
            eq[name] = self._phase0[name].lookup(_chunk_value(packet, name))
            accesses += 1
        a = self._tables["p1_src"].lookup(eq["src_ip_hi"], eq["src_ip_lo"])
        b = self._tables["p1_dst"].lookup(eq["dst_ip_hi"], eq["dst_ip_lo"])
        c = self._tables["p1_ports"].lookup(eq["src_port"], eq["dst_port"])
        accesses += 3
        d = self._tables["p2_addr"].lookup(a, b)
        e = self._tables["p2_transport"].lookup(c, eq["protocol"])
        accesses += 2
        final = self._tables["p3_final"].lookup(d, e)
        accesses += 1
        rule = self._final_rules[final] if final < len(self._final_rules) else None
        accesses += 1  # final class -> rule pointer read
        return ClassificationOutcome(rule=rule, memory_accesses=accesses)

    # -- accounting -----------------------------------------------------------------
    def _memory_bits(self) -> int:
        """Dense-table memory: phase-0 arrays plus every recombination table."""
        total = sum(table.dense_entries() * self.EQ_ENTRY_BITS for table in self._phase0.values())
        total += sum(table.dense_entries() * self.EQ_ENTRY_BITS for table in self._phases)
        total += len(self._final_rules) * 32
        return total

    def equivalence_class_counts(self) -> Dict[str, int]:
        """Number of equivalence classes per table (diagnostics / tests)."""
        self.ensure_built()
        counts = {name: len(table.class_bitmaps) for name, table in self._phase0.items()}
        counts.update({name: len(table.class_bitmaps) for name, table in self._tables.items()})
        return counts

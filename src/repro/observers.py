"""Mutation-listener plumbing shared by memoization-aware components.

The :mod:`repro.perf` fast path memoizes lookup results against the state of
the single-field engines and the Rule Filter; both therefore expose the same
tiny observer surface — register a callback, fire it after every structural
mutation.  :class:`MutationNotifier` is that surface, factored out so the
semantics (ordering, lazy storage, deregistration) cannot diverge between
the components that carry it.

The listener list is created lazily on first registration: engines are plain
classes whose subclasses do not reliably chain ``__init__``, so the mixin
must not depend on construction-time setup.
"""

from __future__ import annotations

from typing import Callable, List

__all__ = ["MutationNotifier"]


class MutationNotifier:
    """Mixin: after-mutation callbacks for cache invalidation."""

    _mutation_listeners: List[Callable[[], None]]

    def add_mutation_listener(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run after every structural mutation."""
        listeners = getattr(self, "_mutation_listeners", None)
        if listeners is None:
            listeners = []
            self._mutation_listeners = listeners
        listeners.append(callback)

    def remove_mutation_listener(self, callback: Callable[[], None]) -> None:
        """Deregister a previously added mutation listener (no-op if absent)."""
        listeners = getattr(self, "_mutation_listeners", None)
        if listeners and callback in listeners:
            listeners.remove(callback)

    def notify_mutation(self) -> None:
        """Fire every registered mutation listener."""
        listeners = getattr(self, "_mutation_listeners", None)
        if listeners:
            for callback in listeners:
                callback()

"""Mutation-epoch plumbing shared by memoization-aware components.

The :mod:`repro.perf` fast path memoizes lookup results against the state of
the single-field engines and the Rule Filter.  Both therefore carry the same
tiny surface — a monotonically increasing **mutation epoch**, bumped after
every structural mutation.  A cache records the epoch it was filled at and
compares on the next read: a mismatch means the memoized results belong to a
previous rule program and must be dropped.

Epoch comparison replaced the old mutation-*listener* callbacks when the
transactional control plane (:mod:`repro.api.control`) landed: commits are
epoch-stamped, consumers invalidate by comparing numbers instead of being
called back, and — unlike callback registration — the scheme survives
pickling across process boundaries (a replica rebuilt in a worker process
starts at epoch 0 with cold caches, which is exactly right).

The epoch is stored lazily on first bump: engines are plain classes whose
subclasses do not reliably chain ``__init__``, so the mixin must not depend
on construction-time setup.
"""

from __future__ import annotations

__all__ = ["MutationEpoch"]


class MutationEpoch:
    """Mixin: a monotonically increasing counter of structural mutations.

    Consumers (the :mod:`repro.perf` caches, the vectorized batch walkers)
    snapshot :attr:`mutation_epoch` when they memoize and compare it before
    reusing memoized state; mutators call :meth:`bump_mutation_epoch` after
    any structural change.
    """

    _mutation_epoch: int

    @property
    def mutation_epoch(self) -> int:
        """Number of structural mutations applied to this component so far."""
        return getattr(self, "_mutation_epoch", 0)

    def bump_mutation_epoch(self) -> None:
        """Record one structural mutation (invalidates epoch-stamped caches)."""
        self._mutation_epoch = self.mutation_epoch + 1

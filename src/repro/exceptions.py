"""Exception hierarchy for the ``repro`` packet classification library.

All exceptions raised by the library derive from :class:`ReproError` so that a
caller can catch every library-specific failure with a single ``except``
clause while still letting programming errors (``TypeError`` and friends)
propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class RuleError(ReproError):
    """A rule or rule field is malformed (bad prefix length, inverted range, ...)."""


class RuleSetError(ReproError):
    """A rule set level problem: duplicate priority, unknown rule id, parse failure."""


class FieldLookupError(ReproError):
    """A single-field lookup engine was misused (value out of range, not built, ...)."""


class LabelError(ReproError):
    """Label table problem: label space exhausted, unknown label, counter underflow."""


class MemoryModelError(ReproError):
    """Hardware memory model problem: address out of range, capacity exceeded."""


class CapacityError(MemoryModelError):
    """A memory block or the rule filter cannot accept more entries."""


class ConfigurationError(ReproError):
    """The classifier or controller was configured inconsistently."""


class RemovedApiError(ReproError):
    """A removed (formerly deprecated) API entry point was called.

    PR 1 kept the pre-unified-API method names alive as
    ``DeprecationWarning`` shims; the transactional control-plane redesign
    retired them.  Each stub raises this error naming the replacement for
    one release before disappearing entirely.
    """


class UpdateError(ReproError):
    """An incremental update (rule insert/delete) could not be applied."""


class ControlPlaneError(ReproError):
    """Controller/switch channel failure (unknown switch, malformed message...)."""


class ExperimentError(ReproError):
    """An experiment driver was given parameters it cannot honour."""


class TraceIOError(ReproError):
    """A trace or ruleset interchange file could not be read or written.

    Raised by the :mod:`repro.io` front-ends — a malformed or truncated pcap
    capture, an iptables-save line using an unsupported match, a rule that
    cannot be expressed in the target format.  Messages carry the offending
    file offset or line number so real-world inputs fail precisely.
    """

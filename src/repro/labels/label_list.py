"""Priority-ordered label lists.

Every single-field lookup terminates on a *pointer to a list of matching
labels* (section III.B phase 2).  The list is kept sorted so that *"the
highest priority matching label (HPML) is in the first position"* (section
IV.A) — that invariant is what makes the paper's first-label combination
possible, and it is enforced here on every mutation.

The sort key is the best rule priority associated with the label (smaller =
higher priority), with the label value as a deterministic tie-break.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import LabelError

__all__ = ["LabelList", "LabelListStore"]


@dataclass(frozen=True, order=True)
class _Slot:
    """Internal sortable record: (priority, label)."""

    priority: int
    label: int


class LabelList:
    """A list of labels kept ordered by ascending rule priority."""

    def __init__(self, entries: Optional[Sequence[Tuple[int, int]]] = None) -> None:
        """``entries`` is an iterable of ``(label, priority)`` pairs."""
        self._slots: List[_Slot] = []
        if entries:
            for label, priority in entries:
                self.add(label, priority)

    # -- mutation -----------------------------------------------------------
    def add(self, label: int, priority: int) -> None:
        """Insert a label with its priority, keeping the list ordered.

        Adding a label that is already present updates its priority if the new
        priority is better (smaller); otherwise the call is a no-op — a label
        represents a unique field value, so it appears at most once per list.
        """
        for index, slot in enumerate(self._slots):
            if slot.label == label:
                if priority < slot.priority:
                    del self._slots[index]
                    bisect.insort(self._slots, _Slot(priority, label))
                return
        bisect.insort(self._slots, _Slot(priority, label))

    def remove(self, label: int) -> None:
        """Remove a label from the list."""
        for index, slot in enumerate(self._slots):
            if slot.label == label:
                del self._slots[index]
                return
        raise LabelError(f"label {label} not present in label list")

    def reprioritize(self, label: int, priority: int) -> None:
        """Force the priority of a label (used after rule deletion)."""
        self.remove(label)
        bisect.insort(self._slots, _Slot(priority, label))

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __bool__(self) -> bool:
        return bool(self._slots)

    def __contains__(self, label: object) -> bool:
        return any(slot.label == label for slot in self._slots)

    def __iter__(self) -> Iterator[int]:
        return (slot.label for slot in self._slots)

    def labels(self) -> List[int]:
        """Labels in priority order (highest priority first)."""
        return [slot.label for slot in self._slots]

    def pairs(self) -> List[Tuple[int, int]]:
        """``(label, priority)`` pairs in priority order."""
        return [(slot.label, slot.priority) for slot in self._slots]

    def first(self) -> int:
        """The highest-priority matching label (HPML)."""
        if not self._slots:
            raise LabelError("label list is empty; no HPML")
        return self._slots[0].label

    def first_priority(self) -> int:
        """Priority of the HPML."""
        if not self._slots:
            raise LabelError("label list is empty; no HPML")
        return self._slots[0].priority

    def is_sorted(self) -> bool:
        """Invariant check used by the property-based tests."""
        return all(a <= b for a, b in zip(self._slots, self._slots[1:]))

    def __repr__(self) -> str:
        return f"LabelList({self.pairs()!r})"


class LabelListStore:
    """A pool of label lists addressed by integer pointers.

    The hardware stores label lists in a dedicated Label memory block and the
    algorithm nodes only carry a pointer; this store reproduces that
    indirection (and its one-extra-memory-access cost is accounted by the
    classifier, which charges one access per list dereference).
    """

    def __init__(self, name: str = "label_store") -> None:
        self.name = name
        self._lists: List[LabelList] = []

    def new_list(self) -> int:
        """Allocate an empty list and return its pointer."""
        self._lists.append(LabelList())
        return len(self._lists) - 1

    def get(self, pointer: int) -> LabelList:
        """Dereference a label-list pointer."""
        if not 0 <= pointer < len(self._lists):
            raise LabelError(f"dangling label list pointer {pointer} in {self.name!r}")
        return self._lists[pointer]

    def __len__(self) -> int:
        return len(self._lists)

    def total_entries(self) -> int:
        """Total number of (label, priority) slots across every list."""
        return sum(len(lst) for lst in self._lists)

    def memory_bits(self, label_bits: int, priority_bits: int = 16) -> int:
        """Estimated storage of the label memory block."""
        return self.total_entries() * (label_bits + priority_bits)

"""Label tables with reference counters.

The update methodology of the paper (section IV.A, Fig. 4) revolves around a
*Label Table* per field: a lookup table mapping each unique field value to its
label together with a counter of how many rules currently reference that
value.  Inserting a rule whose field value already has a label only increments
the counter; inserting a brand-new value allocates a label and triggers the
(expensive) algorithm-structure update.  Deletion is symmetric: the counter is
decremented and the label is only removed from the hardware when the counter
reaches zero.

:class:`LabelTable` implements exactly that contract and records how many
insertions were "cheap" (counter bump only) versus "structural" (new label) —
those statistics are what the update-cost experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.exceptions import LabelError
from repro.labels.label_allocator import LabelAllocator

__all__ = ["LabelEntry", "LabelTable", "InsertOutcome", "RemoveOutcome"]


@dataclass
class LabelEntry:
    """One unique field value: its label, its reference count, its best priority."""

    label: int
    counter: int
    best_priority: int


@dataclass(frozen=True)
class InsertOutcome:
    """Result of inserting one field value occurrence."""

    label: int
    created: bool
    counter: int


@dataclass(frozen=True)
class RemoveOutcome:
    """Result of removing one field value occurrence."""

    label: int
    deleted: bool
    counter: int


class LabelTable:
    """Maps unique field values to labels, with reference counting."""

    def __init__(self, field_name: str, width_bits: int) -> None:
        self.field_name = field_name
        self.allocator = LabelAllocator(field_name, width_bits)
        self._entries: Dict[Hashable, LabelEntry] = {}
        self._values_by_label: Dict[int, Hashable] = {}
        self.structural_inserts = 0
        self.counter_only_inserts = 0
        self.structural_deletes = 0
        self.counter_only_deletes = 0

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._entries

    @property
    def unique_values(self) -> int:
        """Number of unique field values currently labelled (Table II metric)."""
        return len(self._entries)

    def label_of(self, value: Hashable) -> int:
        """Return the label of ``value``."""
        try:
            return self._entries[value].label
        except KeyError as exc:
            raise LabelError(f"value {value!r} has no label in field {self.field_name!r}") from exc

    def value_of(self, label: int) -> Hashable:
        """Return the field value owning ``label``."""
        try:
            return self._values_by_label[label]
        except KeyError as exc:
            raise LabelError(f"label {label} not live in field {self.field_name!r}") from exc

    def counter_of(self, value: Hashable) -> int:
        """Return the reference counter of ``value``."""
        return self._entries[value].counter if value in self._entries else 0

    def best_priority_of(self, label: int) -> int:
        """Return the best (smallest) priority among the rules using ``label``."""
        value = self.value_of(label)
        return self._entries[value].best_priority

    def entries(self) -> List[Tuple[Hashable, LabelEntry]]:
        """Every ``(value, entry)`` pair (stable order by label)."""
        return sorted(self._entries.items(), key=lambda item: item[1].label)

    # -- update path -----------------------------------------------------------
    def insert(self, value: Hashable, priority: int) -> InsertOutcome:
        """Record that one more rule (of the given priority) uses ``value``.

        Follows the Fig. 4 pseudo-code: existing value → counter increment;
        new value → allocate label, counter = 1.
        """
        entry = self._entries.get(value)
        if entry is not None:
            entry.counter += 1
            entry.best_priority = min(entry.best_priority, priority)
            self.counter_only_inserts += 1
            return InsertOutcome(label=entry.label, created=False, counter=entry.counter)
        label = self.allocator.allocate()
        self._entries[value] = LabelEntry(label=label, counter=1, best_priority=priority)
        self._values_by_label[label] = value
        self.structural_inserts += 1
        return InsertOutcome(label=label, created=True, counter=1)

    def remove(self, value: Hashable) -> RemoveOutcome:
        """Record that one rule using ``value`` was deleted.

        The label survives (counter decrement only) until the last referencing
        rule disappears, at which point the label is released and the caller
        must remove the value from the algorithm structure.
        """
        entry = self._entries.get(value)
        if entry is None:
            raise LabelError(
                f"cannot remove value {value!r}: not present in field {self.field_name!r}"
            )
        entry.counter -= 1
        if entry.counter > 0:
            self.counter_only_deletes += 1
            return RemoveOutcome(label=entry.label, deleted=False, counter=entry.counter)
        del self._entries[value]
        del self._values_by_label[entry.label]
        self.allocator.release(entry.label)
        self.structural_deletes += 1
        return RemoveOutcome(label=entry.label, deleted=True, counter=0)

    def rollback_insert(self, value: Hashable, previous_best: Optional[int]) -> None:
        """Undo the most recent :meth:`insert` of ``value``.

        The update engine needs this when a rule insert fails *after* some
        label tables were already touched (e.g. the Rule Filter is full): the
        partial per-dimension state must be unwound without leaving a trace —
        including the cheap-vs-structural statistics, which :meth:`remove`
        would perturb.  ``previous_best`` is the value's best priority before
        the insert, or None when the insert created the entry.
        """
        entry = self._entries.get(value)
        if entry is None:
            raise LabelError(
                f"cannot roll back value {value!r}: not present in field {self.field_name!r}"
            )
        if previous_best is None:
            if entry.counter != 1:
                raise LabelError(
                    f"cannot roll back creation of {value!r}: counter is {entry.counter}, not 1"
                )
            del self._entries[value]
            del self._values_by_label[entry.label]
            self.allocator.release(entry.label)
            self.structural_inserts -= 1
            return
        entry.counter -= 1
        entry.best_priority = previous_best
        self.counter_only_inserts -= 1

    def refresh_best_priority(self, value: Hashable, priorities: List[int]) -> None:
        """Recompute the best priority of ``value`` from the surviving rules.

        Needed after deleting the rule that *was* the best priority for this
        value; the update engine passes the remaining priorities.
        """
        entry = self._entries.get(value)
        if entry is None:
            raise LabelError(f"value {value!r} not present in field {self.field_name!r}")
        if not priorities:
            raise LabelError(
                f"refresh_best_priority needs at least one surviving priority for {value!r}"
            )
        entry.best_priority = min(priorities)

    # -- statistics ----------------------------------------------------------------
    def update_statistics(self) -> Dict[str, int]:
        """Counts of cheap vs structural updates since construction."""
        return {
            "structural_inserts": self.structural_inserts,
            "counter_only_inserts": self.counter_only_inserts,
            "structural_deletes": self.structural_deletes,
            "counter_only_deletes": self.counter_only_deletes,
        }

    def memory_bits(self, value_bits: int, counter_bits: int = 16) -> int:
        """Estimated storage of the label table itself.

        One entry holds the field value, the label and the counter; the table
        is sized for the label space so the hardware never reallocates.
        """
        entry_bits = value_bits + self.allocator.width_bits + counter_bits
        return self.allocator.capacity * entry_bits

    def __repr__(self) -> str:
        return (
            f"LabelTable(field={self.field_name!r}, unique={self.unique_values}, "
            f"width={self.allocator.width_bits})"
        )

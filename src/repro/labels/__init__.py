"""Label method substrate (DCFL-style unique-field labelling).

The label method tags every *unique* rule field value with a small label so
rules sharing a field value are stored once; see section III.C of the paper.
The package provides:

* :class:`~repro.labels.label_allocator.LabelAllocator` — width-bounded label
  value allocation with recycling;
* :class:`~repro.labels.label_table.LabelTable` — unique value → label mapping
  with the reference counters driving fast incremental update (Fig. 4);
* :class:`~repro.labels.label_list.LabelList` — priority-ordered lists of
  matching labels (the HPML-first invariant) and their pointer store.
"""

from repro.labels.label_allocator import LabelAllocator, PAPER_LABEL_WIDTHS
from repro.labels.label_list import LabelList, LabelListStore
from repro.labels.label_table import InsertOutcome, LabelEntry, LabelTable, RemoveOutcome

__all__ = [
    "LabelAllocator",
    "PAPER_LABEL_WIDTHS",
    "LabelTable",
    "LabelEntry",
    "InsertOutcome",
    "RemoveOutcome",
    "LabelList",
    "LabelListStore",
]

"""Label allocation policy.

Section IV.C.1 fixes the label widths: 13 bits for IP-segment labels, 7 bits
for port labels and 2 bits for protocol labels — wide enough for the unique
field counts of Table II (e.g. 108 unique destination ports fit in 7 bits).

:class:`LabelAllocator` hands out label values for one field, recycles the
values of deleted labels, and enforces the width limit so a rule set whose
unique-field count exceeds the hardware label space fails loudly (this is the
point where the real design would need wider labels, and the failure mode is
worth surfacing rather than silently wrapping).
"""

from __future__ import annotations

from typing import List, Set

from repro.exceptions import LabelError

__all__ = ["LabelAllocator", "PAPER_LABEL_WIDTHS"]

#: The per-field label widths of the paper (bits).
PAPER_LABEL_WIDTHS = {
    "ip": 13,
    "port": 7,
    "protocol": 2,
}


class LabelAllocator:
    """Allocates and recycles integer labels bounded by a bit width."""

    def __init__(self, field_name: str, width_bits: int) -> None:
        if width_bits <= 0:
            raise LabelError(f"label width must be positive, got {width_bits}")
        self.field_name = field_name
        self.width_bits = width_bits
        self._next = 0
        self._free: List[int] = []
        self._live: Set[int] = set()

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously live labels (2**width)."""
        return 1 << self.width_bits

    @property
    def live_count(self) -> int:
        """Number of labels currently allocated."""
        return len(self._live)

    @property
    def remaining(self) -> int:
        """Labels still available before the space is exhausted."""
        return self.capacity - self.live_count

    def allocate(self) -> int:
        """Return a fresh label value.

        Recycled values (from deleted labels) are reused first, keeping label
        values dense — which is what a hardware free-list would do.
        """
        if self._free:
            label = self._free.pop()
        elif self._next < self.capacity:
            label = self._next
            self._next += 1
        else:
            raise LabelError(
                f"label space exhausted for field {self.field_name!r}: "
                f"{self.capacity} labels of {self.width_bits} bits all live"
            )
        self._live.add(label)
        return label

    def release(self, label: int) -> None:
        """Return a label value to the free pool."""
        if label not in self._live:
            raise LabelError(
                f"cannot release label {label} of field {self.field_name!r}: not live"
            )
        self._live.remove(label)
        self._free.append(label)

    def is_live(self, label: int) -> bool:
        """Return True when ``label`` is currently allocated."""
        return label in self._live

    def __repr__(self) -> str:
        return (
            f"LabelAllocator(field={self.field_name!r}, width={self.width_bits}, "
            f"live={self.live_count}/{self.capacity})"
        )

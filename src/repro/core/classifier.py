"""The configurable packet classifier — the paper's primary contribution.

:class:`ConfigurableClassifier` instantiates the full architecture of Fig. 2:

* seven parallel single-field engines — the four 16-bit IP segment engines
  (Multi-bit Trie or Binary Search Tree, selected by ``IPalg_s``), two port
  register files and the protocol LUT;
* per-dimension Label Tables with reference counters (the update path);
* the Label Combiner and the hash-addressed Rule Filter (the lookup path);
* the shared-memory model, the provisioned memory inventory and the clock
  model feeding the Table V/VI/VII evaluations.

The classifier is deliberately a *behavioural* model: results are bit-exact
with respect to the classification semantics (validated against the linear
scan ground truth), while clock cycles and memory accesses are accounted
according to the cost model of section V rather than simulated at RTL level.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.core.dimensions import (
    DIMENSIONS,
    IP_DIMENSIONS,
    PORT_DIMENSIONS,
    packet_dimension_values,
)
from repro.core.label_combiner import LabelCombiner
from repro.core.result import (
    BatchResult,
    Classification,
    ClassifierReport,
    ClassifierStats,
    LookupResult,
    MatchedRule,
    UpdateResult,
)
from repro.core.update_engine import UpdateEngine
from repro.exceptions import ConfigurationError, RemovedApiError
from repro.fields.base import SingleFieldEngine
from repro.fields.binary_search_tree import BinarySearchTree
from repro.fields.multibit_trie import MultibitTrie
from repro.fields.port_registers import PortRegisterFile
from repro.fields.protocol_table import ProtocolTable
from repro.hardware.clock import ClockModel, CycleReport
from repro.hardware.memory import MemoryBank
from repro.hardware.memory_sharing import SharedMemoryBank, SharedView
from repro.hardware.rule_filter import RuleFilterMemory
from repro.labels.label_table import LabelTable
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["ConfigurableClassifier"]

#: Cycles of the dispatch phase (header segmentation, Lookup_s strobe).
DISPATCH_CYCLES = 1
#: Extra cycle to dereference the label-list pointer returned by an engine.
LABEL_FETCH_CYCLES = 1
#: Cycles of the final result phase (rule filter read + action output).
FINAL_CYCLES = 2


class ConfigurableClassifier:
    """Behavioural model of the configurable SDN packet classifier.

    Satisfies the unified :class:`repro.api.PacketClassifier` protocol
    directly: :meth:`classify` / :meth:`classify_batch` return the
    engine-independent :class:`~repro.core.result.Classification` records
    (the full :class:`~repro.core.result.LookupResult` breakdown rides along
    as ``Classification.detail``), and :meth:`install` / :meth:`remove` drive
    the incremental update path.
    """

    #: Registry name under the unified API.
    name = "configurable"

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()
        self._fast_path = None
        self._flow_cache = None
        self._control = None
        self._build()

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        layout = self.config.label_layout
        self.engines: Dict[str, SingleFieldEngine] = {}
        for dimension in IP_DIMENSIONS:
            self.engines[dimension] = self._make_ip_engine(dimension)
        for dimension in PORT_DIMENSIONS:
            self.engines[dimension] = PortRegisterFile(
                name=dimension, capacity=self.config.provisioning.port_registers
            )
        self.engines["protocol"] = ProtocolTable(name="protocol")

        self.label_tables: Dict[str, LabelTable] = {}
        for dimension in IP_DIMENSIONS:
            self.label_tables[dimension] = LabelTable(dimension, layout.ip_label_bits)
        for dimension in PORT_DIMENSIONS:
            self.label_tables[dimension] = LabelTable(dimension, layout.port_label_bits)
        self.label_tables["protocol"] = LabelTable("protocol", layout.protocol_label_bits)

        self.rule_filter = RuleFilterMemory(capacity=self.config.rule_capacity())
        self.combiner = LabelCombiner(
            rule_filter=self.rule_filter,
            layout=layout,
            mode=self.config.combiner_mode,
        )
        self.update_engine = UpdateEngine(
            config=self.config,
            engines=self.engines,
            label_tables=self.label_tables,
            rule_filter=self.rule_filter,
        )
        self.clock = ClockModel(frequency_hz=self.config.clock_mhz * 1e6)
        self.shared_memory = self._make_shared_memory()

    def _make_ip_engine(self, dimension: str) -> SingleFieldEngine:
        if self.config.ip_algorithm is IpAlgorithm.MBT:
            return MultibitTrie(
                name=f"{dimension}_mbt",
                width=16,
                strides=self.config.mbt_strides,
                pipelined=True,
                cycles_per_level=self.config.mbt_cycles_per_level,
            )
        return BinarySearchTree(name=f"{dimension}_bst", width=16)

    def _make_shared_memory(self) -> SharedMemoryBank:
        depth, width = self.config.provisioning.mbt_level_geometry[1]
        bank = SharedMemoryBank(
            name="shared_ip_memory",
            depth=depth,
            width=width,
            view_a=SharedView("mbt_level2", "Multi-bit Trie level-2 node memory (Data 1)"),
            view_b=SharedView("bst_nodes", "Binary Search Tree node memory (Data 2)"),
            reclaimable_bits=self.config.provisioning.reclaimable_bits(),
        )
        if self.config.ip_algorithm is IpAlgorithm.BST:
            bank.select("bst_nodes")
        return bank

    # ------------------------------------------------------------------ control plane
    @property
    def control(self) -> "ClassifierControl":
        """The transactional mutation surface of this classifier.

        The **sole supported mutation path**: open a transaction with
        ``classifier.control.begin()``, stage ``insert``/``remove``/
        ``reconfigure`` ops and ``commit()`` — the ops land all-or-nothing
        and the commit is epoch-stamped (see :mod:`repro.api.control`).  The
        ``install``/``remove`` methods below are the internal bootstrap
        primitives single-op commits are built from.
        """
        if self._control is None:
            from repro.api.control import ClassifierControl

            self._control = ClassifierControl(self)
        return self._control

    # ------------------------------------------------------------------ update internals
    def install(self, rule: Rule) -> UpdateResult:
        """Install one rule through the incremental update path.

        Internal/bootstrap primitive (used by the factories to load the
        initial rule set); live mutations should go through :attr:`control`.
        """
        return self.update_engine.insert_rule(rule)

    def remove(self, rule_id: int) -> UpdateResult:
        """Remove one installed rule through the incremental update path.

        Internal/bootstrap primitive; live mutations should go through
        :attr:`control`.
        """
        return self.update_engine.delete_rule(rule_id)

    #: Historical aliases of :meth:`install` / :meth:`remove` (kept stable
    #: because the control-plane literature says "install/remove a rule").
    def install_rule(self, rule: Rule) -> UpdateResult:
        """Alias of :meth:`install`."""
        return self.install(rule)

    def remove_rule(self, rule_id: int) -> UpdateResult:
        """Alias of :meth:`remove`."""
        return self.remove(rule_id)

    def install_ruleset(self, ruleset: Iterable[Rule]) -> List[UpdateResult]:
        """Install every rule of a rule set (priority order preserved)."""
        return [self.install_rule(rule) for rule in ruleset]

    @property
    def installed_rules(self) -> int:
        """Number of rules currently installed."""
        return self.update_engine.installed_rules

    # ------------------------------------------------------------------ lookup API
    def classify(self, packet: PacketHeader) -> Classification:
        """Classify one packet header (unified API).

        Returns the engine-independent :class:`Classification`; the full
        :class:`LookupResult` (per-phase cycles, per-dimension accesses,
        label lists) is available as ``.detail``.
        """
        return Classification.from_lookup(self._lookup(packet))

    def classify_batch(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Classify every packet of ``packets`` (unified API).

        With the fast path enabled (:meth:`enable_fast_path`), the batch is
        classified through the :mod:`repro.perf` memoizing accelerator —
        identical :class:`Classification` results, far higher throughput on
        traces with field-value redundancy.  With a flow cache enabled
        (:meth:`enable_flow_cache`), an exact-match flow tier serves
        repeating 5-tuples first and only cache-miss traffic reaches the
        lookup path.
        """
        flow_cache = self._flow_cache
        if flow_cache is not None:
            if not isinstance(packets, (list, tuple)):
                packets = list(packets)
            return flow_cache.classify_batch(packets, self._classify_batch_uncached)
        return self._classify_batch_uncached(packets)

    def _classify_batch_uncached(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """The batch path below the flow-cache tier (fast path or per-packet)."""
        if self._fast_path is not None:
            return self._fast_path.classify_batch(packets)
        return BatchResult(tuple(self.classify(packet) for packet in packets))

    # ------------------------------------------------------------------ fast path
    def enable_fast_path(
        self, vectorized: bool = False, flow_cache=None
    ) -> "FastPathAccelerator":
        """Attach (and return) the batch-lookup accelerator of :mod:`repro.perf`.

        Subsequent :meth:`classify_batch` calls run through per-dimension and
        combiner-outcome caches that are invalidated automatically on rule
        installs/removes.  ``vectorized=True`` additionally resolves cold
        misses through the :mod:`repro.fields.vectorized` batch engine
        walkers and the cached combiner walk (much faster first pass over a
        trace).  Results are bit-exact with the per-packet path either way.

        ``flow_cache`` optionally stacks the exact-match flow tier on top:
        ``True`` attaches a default :class:`~repro.perf.flowcache.FlowCache`,
        or pass a configured instance (see :meth:`enable_flow_cache`).

        Re-enabling with a different ``vectorized`` setting swaps the
        attached accelerator (dropping its caches); re-enabling with the same
        setting returns the existing one untouched.
        """
        if self._fast_path is not None and self._fast_path.vectorized != vectorized:
            self.disable_fast_path()
        if self._fast_path is None:
            from repro.perf.fastpath import FastPathAccelerator

            self._fast_path = FastPathAccelerator(self, vectorized=vectorized)
        if flow_cache is not None:
            self.enable_flow_cache(None if flow_cache is True else flow_cache)
        return self._fast_path

    def disable_fast_path(self) -> None:
        """Detach the batch accelerator; classify_batch reverts to per-packet."""
        if self._fast_path is not None:
            self._fast_path.detach()
            self._fast_path = None

    @property
    def fast_path_enabled(self) -> bool:
        """True when classify_batch runs through the memoizing fast path."""
        return self._fast_path is not None

    # ------------------------------------------------------------------ flow cache
    def enable_flow_cache(self, cache=None, **options) -> "FlowCache":
        """Attach (and return) an exact-match flow tier in front of lookups.

        Pass a pre-built :class:`~repro.perf.flowcache.FlowCache` as
        ``cache``, or construction keywords (``capacity``, ``policy``,
        ``idle_timeout``, ``hard_timeout``, ``predictor``) to build one.
        The tier fronts whatever batch path is active — per-packet, fast
        path, or vectorized — and is invalidated surgically by control-plane
        commits (wholesale on untracked mutations).  Replaces any previously
        attached flow cache.
        """
        from repro.perf.flowcache import FlowCache

        if cache is None:
            cache = FlowCache(**options)
        elif options:
            raise ConfigurationError(
                "pass either a FlowCache instance or construction options, not both"
            )
        if self._flow_cache is not None:
            self._flow_cache.unbind()
        cache.bind(self)
        self._flow_cache = cache
        return cache

    def disable_flow_cache(self) -> None:
        """Detach the flow tier; classify_batch reverts to the lookup path."""
        if self._flow_cache is not None:
            self._flow_cache.unbind()
            self._flow_cache = None

    @property
    def flow_cache(self) -> Optional["FlowCache"]:
        """The attached flow cache, or None."""
        return self._flow_cache

    def lookup(self, packet: PacketHeader) -> LookupResult:
        """Removed pre-unified-API entry point (error stub).

        .. deprecated:: 1.1 (removed in 1.3)
           Use :meth:`classify`; the returned ``Classification.detail``
           carries this method's :class:`LookupResult`.
        """
        raise RemovedApiError(
            "ConfigurableClassifier.lookup() was removed; use classify() "
            "(the LookupResult is available as Classification.detail)"
        )

    def _lookup(self, packet: PacketHeader) -> LookupResult:
        """Classify one packet header and return the HPMR with its cost."""
        values = packet_dimension_values(packet)
        field_results = {name: self.engines[name].lookup(values[name]) for name in DIMENSIONS}
        outcome = self.combiner.combine(
            {name: result.matches for name, result in field_results.items()}
        )
        return self._assemble_lookup(field_results, outcome)

    def _assemble_lookup(self, field_results, outcome) -> LookupResult:
        """Build the :class:`LookupResult` of one lookup from its parts.

        Shared by the per-packet path and the :mod:`repro.perf` fast path so
        the cost-model accounting (per-phase cycles, per-dimension accesses)
        is assembled by exactly one piece of code.
        """
        cycles = CycleReport(operation="lookup", pipelined=self._fully_pipelined())
        cycles.add_phase("dispatch", DISPATCH_CYCLES)
        # Phase 2 runs every engine in parallel: its latency is the slowest
        # engine, and one extra cycle dereferences the label-list pointer.
        slowest = max(result.cycles for result in field_results.values())
        cycles.add_phase("field_lookup", slowest)
        cycles.add_phase("label_fetch", LABEL_FETCH_CYCLES)
        cycles.add_phase("label_combination", outcome.cycles)
        cycles.add_phase("rule_fetch", FINAL_CYCLES)

        match = None
        if outcome.entry is not None:
            match = MatchedRule(
                rule_id=outcome.entry.rule_id,
                priority=outcome.entry.priority,
                action=outcome.entry.action,
            )
        accesses = {name: result.memory_accesses for name, result in field_results.items()}
        accesses["rule_filter"] = outcome.memory_accesses
        return LookupResult(
            match=match,
            field_labels={name: result.matches for name, result in field_results.items()},
            cycles=cycles,
            memory_accesses=accesses,
            combiner_probes=outcome.probes,
            truncated=outcome.truncated,
        )

    def classify_trace(self, trace: Iterable[PacketHeader]) -> List[LookupResult]:
        """Removed pre-unified-API batch entry point (error stub).

        .. deprecated:: 1.1 (removed in 1.3)
           Use :meth:`classify_batch`, which aggregates the batch metrics.
        """
        raise RemovedApiError(
            "ConfigurableClassifier.classify_trace() was removed; use "
            "classify_batch() (per-packet LookupResults ride along as "
            "Classification.detail)"
        )

    def _fully_pipelined(self) -> bool:
        return all(engine.pipelined for engine in self.engines.values())

    # ------------------------------------------------------------------ reconfiguration
    def reconfigure(self, ip_algorithm: IpAlgorithm) -> int:
        """Switch the ``IPalg_s`` signal and rebuild the IP engines.

        The SDN controller recomputes the algorithm memory contents in
        software and re-uploads them (section IV.A); behaviourally this means
        re-installing every rule into freshly built engines.  Returns the
        number of rules re-installed.
        """
        if ip_algorithm is self.config.ip_algorithm:
            return 0
        # Replay in the original installation order — label values depend on
        # insertion order, so replaying sorted by rule id would rebuild a
        # *different* (though behaviourally equivalent) state and violate the
        # install_ruleset "priority order preserved" contract.
        rules = self.update_engine.installed_rules_in_order()
        was_fast = self.fast_path_enabled
        was_vectorized = was_fast and self._fast_path.vectorized
        self.disable_fast_path()
        self.config = self.config.with_ip_algorithm(ip_algorithm)
        self._build()
        for rule in rules:
            self.install_rule(rule)
        if was_fast:
            # The accelerator hooked the *old* engines; rebind it to the new ones.
            self.enable_fast_path(vectorized=was_vectorized)
        return len(rules)

    def set_combiner_mode(self, mode: CombinerMode) -> None:
        """Switch between the paper's first-label fast path and cross-product."""
        self.config = self.config.with_combiner(mode)
        self.combiner.mode = mode
        if self._fast_path is not None:
            # Memoized combiner outcomes belong to the previous mode.
            self._fast_path.invalidate()
        if self._flow_cache is not None:
            # Cached flow decisions belong to the previous mode too — and a
            # combiner swap bumps no engine epoch, so flush explicitly.
            self._flow_cache.invalidate()

    # ------------------------------------------------------------------ reporting
    def occupancy_cycles(self) -> float:
        """Steady-state cycles per packet of the current configuration.

        MBT configurations are fully pipelined (1 packet per cycle); a BST
        configuration is limited by the iterative BST search, i.e. its
        worst-case comparison count.
        """
        if self._fully_pipelined():
            return 1.0
        return float(
            max(
                engine.lookup_cycles
                for engine in self.engines.values()
                if not engine.pipelined
            )
        )

    def lookup_latency_cycles(self) -> int:
        """End-to-end latency of one lookup through an empty pipeline."""
        slowest = max(engine.lookup_cycles for engine in self.engines.values())
        return DISPATCH_CYCLES + slowest + LABEL_FETCH_CYCLES + 1 + FINAL_CYCLES

    def throughput_gbps(self, packet_bytes: Optional[int] = None) -> float:
        """Line-rate throughput of the current configuration (Table VI/VII)."""
        return self.clock.throughput_gbps(
            self.occupancy_cycles(), packet_bytes or self.config.min_packet_bytes
        )

    def memory_bits(self) -> int:
        """Total occupied memory in bits (unified API)."""
        return sum(self.memory_bits_used().values())

    def stats(self) -> ClassifierStats:
        """Engine-independent snapshot (unified API)."""
        report = self.report()
        return ClassifierStats(
            name=self.name,
            rules=report.rules_installed,
            memory_bits=report.total_memory_bits_used,
            details={
                "ip_algorithm": report.ip_algorithm,
                "combiner_mode": report.combiner_mode,
                "rule_capacity": report.rule_capacity,
                "throughput_gbps": report.throughput_gbps,
                "lookup_latency_cycles": report.lookup_latency_cycles,
                "memory_bits_provisioned": report.total_memory_bits_provisioned,
                "update_model": "incremental",
                "fast_path": self.fast_path_enabled,
                "fast_path_vectorized": self.fast_path_enabled and self._fast_path.vectorized,
                "flow_cache": self._flow_cache is not None,
                "flow_cache_policy": (
                    self._flow_cache.policy if self._flow_cache is not None else None
                ),
            },
        )

    def memory_bits_used(self) -> Dict[str, int]:
        """Occupied memory per component for the currently installed rules."""
        used = {name: engine.memory_bits() for name, engine in self.engines.items()}
        layout = self.config.label_layout
        label_bits = 0
        for name, table in self.label_tables.items():
            if name in IP_DIMENSIONS:
                value_bits = 16 + 5
                width = layout.ip_label_bits
            elif name in PORT_DIMENSIONS:
                value_bits = 32
                width = layout.port_label_bits
            else:
                value_bits = 9
                width = layout.protocol_label_bits
            label_bits += table.unique_values * (value_bits + width + 16)
        used["label_tables"] = label_bits
        used["rule_filter"] = self.update_engine.installed_rules * self.config.provisioning.rule_entry_bits
        return used

    def provisioned_memory_bank(self) -> MemoryBank:
        """The synthesised memory inventory of this configuration (Table V input)."""
        prov = self.config.provisioning
        bank = MemoryBank(name=f"classifier_{self.config.ip_algorithm.value}")
        for dimension in IP_DIMENSIONS:
            if self.config.ip_algorithm is IpAlgorithm.MBT:
                for level, (depth, width) in enumerate(prov.mbt_level_geometry, start=1):
                    bank.new_block(f"{dimension}_mbt_l{level}", depth, width)
            else:
                depth, width = prov.bst_geometry
                bank.new_block(f"{dimension}_bst", depth, width)
            depth, width = prov.ip_label_geometry
            bank.new_block(f"{dimension}_labels", depth, width)
        for dimension in PORT_DIMENSIONS:
            depth, width = prov.port_label_geometry
            bank.new_block(f"{dimension}_label_buffer", depth, width)
        depth, width = prov.protocol_geometry
        bank.new_block("protocol_lut", depth, width)
        bank.new_block("rule_filter", prov.rule_filter_entries, prov.rule_entry_bits)
        return bank

    def export_memory_image(self, name: Optional[str] = None) -> "MemoryImage":
        """Export the installed state as a control-plane memory image.

        Section IV.A: the software control plane produces binary files holding
        the data each hardware memory must be loaded with.  The exported image
        contains one write per Rule Filter entry and one per label-table entry
        of every dimension, and can be uploaded into the provisioned memory
        bank of another device with :meth:`repro.hardware.MemoryImage.apply`
        (e.g. to warm-start a standby switch with the active switch's state).
        """
        from repro.hardware.memory_image import MemoryImage

        image = MemoryImage(name or f"classifier_{self.config.ip_algorithm.value}_image")
        layout = self.config.label_layout
        for dimension in DIMENSIONS:
            table = self.label_tables[dimension]
            block = f"{dimension}_labels" if dimension in IP_DIMENSIONS else (
                f"{dimension}_label_buffer" if dimension in PORT_DIMENSIONS else "protocol_lut"
            )
            for value, entry in table.entries():
                image.add(
                    block,
                    entry.label,
                    (entry.label << 16) | (entry.counter & 0xFFFF),
                    payload={"value": value, "counter": entry.counter, "priority": entry.best_priority},
                )
        for rule_id in self.update_engine.installed_rule_ids():
            key = self.update_engine.rule_key(rule_id)
            slot = self.rule_filter.hash_unit.hash(key)
            rule = self.update_engine.rules[rule_id]
            image.add(
                "rule_filter",
                slot,
                key & ((1 << 64) - 1),
                payload={"rule_id": rule_id, "priority": rule.priority, "action": rule.action.value},
            )
        return image

    def report(self) -> ClassifierReport:
        """Whole-classifier snapshot feeding the evaluation tables."""
        # The synthesised design always contains the MBT memories (the BST
        # shares the level-2 block and reclaims the rest for rules), so the
        # provisioned memory space is the same for both IPalg_s positions —
        # exactly why Table VII quotes 2.1 Mbit for both configurations.
        prov = self.config.provisioning
        provisioned: Dict[str, int] = {"ip_engines": prov.total_mbt_bits()}
        provisioned["ip_labels"] = 4 * prov.ip_label_geometry[0] * prov.ip_label_geometry[1]
        provisioned["port_label_buffers"] = 2 * prov.port_label_geometry[0] * prov.port_label_geometry[1]
        provisioned["protocol_lut"] = prov.protocol_geometry[0] * prov.protocol_geometry[1]
        provisioned["rule_filter"] = prov.rule_filter_bits()
        return ClassifierReport(
            ip_algorithm=self.config.ip_algorithm.value,
            combiner_mode=self.config.combiner_mode.value,
            rules_installed=self.installed_rules,
            rule_capacity=self.config.rule_capacity(),
            unique_labels={name: table.unique_values for name, table in self.label_tables.items()},
            memory_bits_used=self.memory_bits_used(),
            memory_bits_provisioned=provisioned,
            lookup_latency_cycles=self.lookup_latency_cycles(),
            lookup_occupancy_cycles=self.occupancy_cycles(),
            throughput_gbps=self.throughput_gbps(),
        )

    # ------------------------------------------------------------------ convenience
    @classmethod
    def from_ruleset(
        cls, ruleset: RuleSet, config: Optional[ClassifierConfig] = None
    ) -> "ConfigurableClassifier":
        """Build a classifier and install every rule of ``ruleset``."""
        classifier = cls(config)
        classifier.install_ruleset(ruleset)
        return classifier

    def __repr__(self) -> str:
        return (
            f"ConfigurableClassifier(ip={self.config.ip_algorithm.value}, "
            f"combiner={self.config.combiner_mode.value}, rules={self.installed_rules})"
        )


# ---------------------------------------------------------------------------
# Unified-API registration (import kept at module bottom: repro.api pulls in
# the baseline package, which must not re-enter this module mid-definition).
# ---------------------------------------------------------------------------
from repro.api.registry import register_classifier  # noqa: E402


@register_classifier(
    "configurable",
    description="the paper's configurable label-based architecture (Fig. 2)",
)
def _make_configurable(
    ruleset: RuleSet,
    config: Optional[ClassifierConfig] = None,
    ip_algorithm: Optional[str] = None,
    combiner: Optional[str] = None,
    fast: bool = False,
    vectorized: bool = False,
    flow_cache: bool = False,
    flow_policy: str = "idle",
    flow_capacity: Optional[int] = None,
    flow_predictor: Optional[str] = None,
    flow_idle_timeout: Optional[int] = None,
    flow_hard_timeout: Optional[int] = None,
) -> ConfigurableClassifier:
    """Registry factory: build the architecture and install ``ruleset``.

    ``config`` takes a full :class:`ClassifierConfig` (e.g. from
    ``ClassifierConfig.builder()``); ``ip_algorithm``/``combiner`` are
    string shortcuts layered on top of it.  ``fast=True`` enables the
    :mod:`repro.perf` batch-lookup fast path; ``vectorized=True`` enables the
    fast path in its vectorized cold-path mode (and implies ``fast``).
    ``flow_cache=True`` stacks the exact-match flow tier on top, configured
    by the remaining ``flow_*`` knobs (all plain picklable values, so a
    :class:`~repro.perf.parallel.ReplicaSpec` can carry them into process
    workers).
    """
    builder = ClassifierConfig.builder(config)
    if ip_algorithm is not None:
        builder = builder.ip_algorithm(ip_algorithm)
    if combiner is not None:
        builder = builder.combiner(combiner)
    classifier = ConfigurableClassifier.from_ruleset(ruleset, builder.build())
    if fast or vectorized:
        classifier.enable_fast_path(vectorized=vectorized)
    if flow_cache:
        options: Dict[str, object] = {"policy": flow_policy}
        if flow_capacity is not None:
            options["capacity"] = flow_capacity
        if flow_predictor is not None:
            options["predictor"] = flow_predictor
        if flow_idle_timeout is not None:
            options["idle_timeout"] = flow_idle_timeout
        if flow_hard_timeout is not None:
            options["hard_timeout"] = flow_hard_timeout
        classifier.enable_flow_cache(**options)
    return classifier

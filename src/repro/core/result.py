"""Result dataclasses returned by the classifier core.

These are the structured records every experiment, benchmark and example
consumes: the outcome of one lookup (:class:`LookupResult`), one rule
insert/delete (:class:`UpdateResult`) and whole-device summaries
(:class:`ClassifierReport`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.hardware.clock import CycleReport

__all__ = ["MatchedRule", "LookupResult", "UpdateResult", "ClassifierReport"]


@dataclass(frozen=True)
class MatchedRule:
    """The Highest Priority Matching Rule returned by a lookup."""

    rule_id: int
    priority: int
    action: str


@dataclass(frozen=True)
class LookupResult:
    """Outcome of classifying one packet header."""

    #: The HPMR, or None when no rule matched.
    match: Optional[MatchedRule]
    #: Per-field label lists, keyed by dimension name, as (label, priority) pairs.
    field_labels: Dict[str, Tuple[Tuple[int, int], ...]]
    #: Per-phase cycle breakdown of this lookup.
    cycles: CycleReport
    #: Memory accesses per dimension plus the combiner/rule-filter accesses.
    memory_accesses: Dict[str, int]
    #: Number of Rule Filter probes the label combiner issued.
    combiner_probes: int

    @property
    def matched(self) -> bool:
        """True when the packet hit at least one rule."""
        return self.match is not None

    @property
    def total_memory_accesses(self) -> int:
        """Total memory words read to classify this packet."""
        return sum(self.memory_accesses.values())

    @property
    def latency_cycles(self) -> int:
        """End-to-end lookup latency in clock cycles."""
        return self.cycles.latency_cycles


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one incremental rule insert or delete."""

    rule_id: int
    operation: str
    #: Per-dimension label outcomes: (label, structural) where structural means
    #: a new label was created (insert) or an existing one destroyed (delete).
    labels: Dict[str, Tuple[int, bool]]
    #: Dimensions whose algorithm structure actually changed.
    structural_dimensions: Tuple[str, ...]
    #: Clock cycles consumed on the hardware update interface.
    cycles: CycleReport
    #: Memory accesses (control-plane uploads) per dimension.
    memory_accesses: Dict[str, int]

    @property
    def structural(self) -> bool:
        """True when at least one dimension needed a structural update."""
        return bool(self.structural_dimensions)

    @property
    def total_memory_accesses(self) -> int:
        """Total memory words written/read for this update."""
        return sum(self.memory_accesses.values())


@dataclass(frozen=True)
class ClassifierReport:
    """Whole-classifier snapshot used by the memory/throughput experiments."""

    ip_algorithm: str
    combiner_mode: str
    rules_installed: int
    rule_capacity: int
    unique_labels: Dict[str, int]
    memory_bits_used: Dict[str, int]
    memory_bits_provisioned: Dict[str, int]
    lookup_latency_cycles: int
    lookup_occupancy_cycles: float
    throughput_gbps: float

    @property
    def total_memory_bits_provisioned(self) -> int:
        """Total provisioned memory of the instantiated configuration."""
        return sum(self.memory_bits_provisioned.values())

    @property
    def total_memory_bits_used(self) -> int:
        """Total occupied memory of the instantiated configuration."""
        return sum(self.memory_bits_used.values())

    @property
    def memory_space_mbit(self) -> float:
        """Provisioned memory in Mbit (the unit of Tables I and VII)."""
        return self.total_memory_bits_provisioned / 1e6

"""Result dataclasses returned by the classifier core.

These are the structured records every experiment, benchmark and example
consumes: the outcome of one lookup (:class:`LookupResult`), one rule
insert/delete (:class:`UpdateResult`) and whole-device summaries
(:class:`ClassifierReport`).

The unified-API records live here as well: :class:`Classification` is the
engine-independent outcome of classifying one packet (produced by the
configurable architecture and every baseline alike), :class:`BatchResult`
aggregates a trace worth of them, and :class:`ClassifierStats` is the
engine-independent device snapshot.  :mod:`repro.api` re-exports all three as
the package front door.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.hardware.clock import CycleReport

__all__ = [
    "MatchedRule",
    "LookupResult",
    "UpdateResult",
    "ClassifierReport",
    "Classification",
    "BatchResult",
    "ClassifierStats",
]


@dataclass(frozen=True)
class MatchedRule:
    """The Highest Priority Matching Rule returned by a lookup."""

    rule_id: int
    priority: int
    action: str


@dataclass(frozen=True)
class LookupResult:
    """Outcome of classifying one packet header."""

    #: The HPMR, or None when no rule matched.
    match: Optional[MatchedRule]
    #: Per-field label lists, keyed by dimension name, as (label, priority) pairs.
    field_labels: Dict[str, Tuple[Tuple[int, int], ...]]
    #: Per-phase cycle breakdown of this lookup.
    cycles: CycleReport
    #: Memory accesses per dimension plus the combiner/rule-filter accesses.
    memory_accesses: Dict[str, int]
    #: Number of Rule Filter probes the label combiner issued.
    combiner_probes: int
    #: True when the combiner's probe budget truncated the cross-product walk
    #: before every candidate combination was visited — ``match`` may then be
    #: wrong or missing (see :class:`~repro.core.label_combiner.CombinerOutcome`).
    truncated: bool = False

    @property
    def matched(self) -> bool:
        """True when the packet hit at least one rule."""
        return self.match is not None

    @property
    def total_memory_accesses(self) -> int:
        """Total memory words read to classify this packet."""
        return sum(self.memory_accesses.values())

    @property
    def latency_cycles(self) -> int:
        """End-to-end lookup latency in clock cycles."""
        return self.cycles.latency_cycles


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one incremental rule insert or delete."""

    rule_id: int
    operation: str
    #: Per-dimension label outcomes: (label, structural) where structural means
    #: a new label was created (insert) or an existing one destroyed (delete).
    labels: Dict[str, Tuple[int, bool]]
    #: Dimensions whose algorithm structure actually changed.
    structural_dimensions: Tuple[str, ...]
    #: Clock cycles consumed on the hardware update interface.
    cycles: CycleReport
    #: Memory accesses (control-plane uploads) per dimension.
    memory_accesses: Dict[str, int]
    #: Dimensions whose stored label priority was rewritten (the value's best
    #: rule priority changed without any structural update) — the scoped
    #: cache-invalidation path treats these as "lookup results changed on the
    #: spec's own interval".
    reprioritized_dimensions: Tuple[str, ...] = ()

    @property
    def structural(self) -> bool:
        """True when at least one dimension needed a structural update."""
        return bool(self.structural_dimensions)

    @property
    def total_memory_accesses(self) -> int:
        """Total memory words written/read for this update."""
        return sum(self.memory_accesses.values())


@dataclass(frozen=True)
class ClassifierReport:
    """Whole-classifier snapshot used by the memory/throughput experiments."""

    ip_algorithm: str
    combiner_mode: str
    rules_installed: int
    rule_capacity: int
    unique_labels: Dict[str, int]
    memory_bits_used: Dict[str, int]
    memory_bits_provisioned: Dict[str, int]
    lookup_latency_cycles: int
    lookup_occupancy_cycles: float
    throughput_gbps: float

    @property
    def total_memory_bits_provisioned(self) -> int:
        """Total provisioned memory of the instantiated configuration."""
        return sum(self.memory_bits_provisioned.values())

    @property
    def total_memory_bits_used(self) -> int:
        """Total occupied memory of the instantiated configuration."""
        return sum(self.memory_bits_used.values())

    @property
    def memory_space_mbit(self) -> float:
        """Provisioned memory in Mbit (the unit of Tables I and VII)."""
        return self.total_memory_bits_provisioned / 1e6


# --------------------------------------------------------------------------
# Unified classification API records (re-exported by repro.api)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Classification:
    """Engine-independent outcome of classifying one packet.

    Unifies the architecture's :class:`LookupResult` and the baselines'
    ``ClassificationOutcome``: the matched rule (id, priority, action), the
    memory accesses spent, and — where the engine models them — the cycle
    latency and the Rule Filter probe count.  ``detail`` keeps the underlying
    engine-specific record for code that needs the full breakdown (per-phase
    cycles, per-dimension accesses); it is excluded from equality so batch
    and per-packet results compare on classification substance.
    """

    #: Id of the HPMR, or None on a miss.
    rule_id: Optional[int]
    #: Priority of the HPMR, or None on a miss.
    priority: Optional[int]
    #: Action string of the HPMR, or None on a miss.
    action: Optional[str]
    #: Total memory words read to classify this packet.
    memory_accesses: int
    #: End-to-end lookup latency in cycles, when the engine models a clock.
    latency_cycles: Optional[int] = None
    #: Rule Filter probes issued, when the engine uses the label method.
    combiner_probes: Optional[int] = None
    #: True when a probe budget truncated the lookup, making the outcome
    #: potentially inexact (always False for engines without a budget).
    truncated: bool = False
    #: The engine-specific result (LookupResult / ClassificationOutcome).
    detail: object = field(default=None, compare=False, repr=False)

    @property
    def matched(self) -> bool:
        """True when some rule matched."""
        return self.rule_id is not None

    @classmethod
    def from_lookup(cls, result: LookupResult) -> "Classification":
        """Wrap a configurable-architecture :class:`LookupResult`."""
        match = result.match
        return cls(
            rule_id=match.rule_id if match else None,
            priority=match.priority if match else None,
            action=match.action if match else None,
            memory_accesses=result.total_memory_accesses,
            latency_cycles=result.latency_cycles,
            combiner_probes=result.combiner_probes,
            truncated=result.truncated,
            detail=result,
        )

    @classmethod
    def from_outcome(cls, outcome) -> "Classification":
        """Wrap a baseline ``ClassificationOutcome`` (duck-typed)."""
        rule = outcome.rule
        return cls(
            rule_id=rule.rule_id if rule else None,
            priority=rule.priority if rule else None,
            action=rule.action.value if rule else None,
            memory_accesses=outcome.memory_accesses,
            detail=outcome,
        )


@dataclass(frozen=True)
class BatchResult:
    """A trace worth of classifications with their aggregate metrics."""

    results: Tuple[Classification, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Classification]:
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def packets(self) -> int:
        """Number of packets classified."""
        return len(self.results)

    @property
    def matched(self) -> int:
        """Number of packets that hit a rule."""
        return sum(1 for result in self.results if result.matched)

    @property
    def hit_ratio(self) -> float:
        """Fraction of packets that hit a rule."""
        return self.matched / len(self.results) if self.results else 0.0

    @property
    def truncated_lookups(self) -> int:
        """Number of packets whose lookup was probe-budget truncated."""
        return sum(1 for result in self.results if result.truncated)

    @property
    def total_memory_accesses(self) -> int:
        """Memory words read over the whole batch."""
        return sum(result.memory_accesses for result in self.results)

    @property
    def average_memory_accesses(self) -> float:
        """Average memory accesses per packet."""
        return self.total_memory_accesses / len(self.results) if self.results else 0.0

    @property
    def worst_memory_accesses(self) -> int:
        """Worst-case memory accesses of any packet in the batch."""
        return max((result.memory_accesses for result in self.results), default=0)

    @property
    def average_latency_cycles(self) -> Optional[float]:
        """Average lookup latency, or None when the engine models no clock."""
        latencies = [r.latency_cycles for r in self.results if r.latency_cycles is not None]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def worst_latency_cycles(self) -> Optional[int]:
        """Worst lookup latency, or None when the engine models no clock."""
        latencies = [r.latency_cycles for r in self.results if r.latency_cycles is not None]
        return max(latencies) if latencies else None


@dataclass(frozen=True)
class ClassifierStats:
    """Engine-independent snapshot of one classifier instance."""

    #: Registry name of the engine ("configurable", "hypercuts", ...).
    name: str
    #: Rules currently held by the engine.
    rules: int
    #: Total size of the search structures in bits.
    memory_bits: int
    #: Engine-specific extras (throughput, capacity, label counts, ...).
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def memory_megabits(self) -> float:
        """Memory in Mbit — the unit of Tables I and VII."""
        return self.memory_bits / 1e6

"""Label combination — phase 3 of the lookup pipeline.

Each single-field engine returns a priority-ordered list of matching labels;
the combiner turns those lists into the address of the Highest Priority
Matching Rule in the Rule Filter.  Two resolution modes are provided (see
:class:`~repro.core.config.CombinerMode`):

* **FIRST_LABEL** — the paper's hardware fast path: take the first (highest
  priority) label of each list, pack them into the 68-bit key, hash once and
  read the Rule Filter.  One probe, constant time, but only correct when the
  highest-priority labels of every field actually belong to the same rule.
* **CROSS_PRODUCT** — probe every combination of matching labels (the classic
  DCFL-style resolution) and keep the hit with the best rule priority.  This
  is guaranteed correct: if a rule matches the packet, each of its field
  labels is present in the corresponding list, so its combination is probed.

The probe ordering in cross-product mode walks combinations in order of the
best per-field priorities so the expected number of probes before the HPMR is
found stays small for realistic rule sets; an optional ``probe_budget`` guards
pathological cross products.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import CombinerMode
from repro.exceptions import ConfigurationError
from repro.hardware.hash_unit import LabelKeyLayout
from repro.hardware.rule_filter import RuleFilterEntry, RuleFilterMemory

try:  # NumPy accelerates the cached cross-product staging; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["CombinerOutcome", "LabelCombiner", "DIMENSIONS"]

#: The seven lookup dimensions in packing order.
DIMENSIONS: Tuple[str, ...] = (
    "src_ip_hi",
    "src_ip_lo",
    "dst_ip_hi",
    "dst_ip_lo",
    "src_port",
    "dst_port",
    "protocol",
)


@dataclass(frozen=True)
class CombinerOutcome:
    """Result of combining one packet's per-field label lists."""

    entry: Optional[RuleFilterEntry]
    probes: int
    memory_accesses: int
    cycles: int
    #: True when the cross-product walk hit ``probe_budget`` before every
    #: candidate combination was probed — the returned entry may then not be
    #: the true HPMR (or a real match may have been missed entirely).
    truncated: bool = False


class LabelCombiner:
    """Combines per-field label lists into the HPMR via the Rule Filter."""

    #: Combinations packed/pre-resolved per block by :meth:`combine_with_cache`.
    PROBE_BLOCK = 256

    def __init__(
        self,
        rule_filter: RuleFilterMemory,
        layout: LabelKeyLayout,
        mode: CombinerMode = CombinerMode.CROSS_PRODUCT,
        probe_budget: int = 4096,
    ) -> None:
        if probe_budget <= 0:
            raise ConfigurationError(f"probe budget must be positive, got {probe_budget}")
        self.rule_filter = rule_filter
        self.layout = layout
        self.mode = mode
        self.probe_budget = probe_budget
        self._fast_pack = layout.make_packer()
        self._key_shifts = layout.shifts()

    # -- public API ------------------------------------------------------------
    def combine(
        self,
        field_matches: Dict[str, Sequence[Tuple[int, int]]],
        probe_log: Optional[list] = None,
    ) -> CombinerOutcome:
        """Resolve the HPMR from the per-dimension ``(label, priority)`` lists.

        ``probe_log``, when given, collects every packed key the walk actually
        consumed a probe for.  The outcome is a pure function of the lookup
        results of exactly those keys (pruned combinations are decided by the
        priority bounds of probed entries alone), so a caller memoizing the
        outcome can invalidate it precisely: it is stale only if the rule
        filter changed the lookup of a logged key.
        """
        missing = [name for name in DIMENSIONS if name not in field_matches]
        if missing:
            raise ConfigurationError(f"combiner is missing dimensions: {missing}")
        lists = [tuple(field_matches[name]) for name in DIMENSIONS]
        if any(not entries for entries in lists):
            # Some field produced no matching label: no rule can match.
            return CombinerOutcome(entry=None, probes=0, memory_accesses=0, cycles=1)
        if self.mode is CombinerMode.FIRST_LABEL:
            return self._combine_first_label(lists, probe_log)
        return self._combine_cross_product(lists, probe_log)

    def combine_with_cache(
        self, lists, probe_cache, sort_memo, probe_log: Optional[list] = None
    ) -> CombinerOutcome:
        """Exact :meth:`combine` over DIMENSIONS-ordered lists through shared caches.

        The cold-path entry point of the :mod:`repro.perf` vectorized batch
        engine.  ``lists`` is the tuple of per-dimension ``(label, priority)``
        match tuples in :data:`DIMENSIONS` order (exactly the
        ``FieldLookupResult.matches`` the engines produced); ``probe_cache``
        memoizes :class:`~repro.hardware.rule_filter.RuleFilterLookup` results
        per packed key and ``sort_memo`` memoizes the priority-sorted form of
        each match list (both are :class:`~repro.perf.lru.BoundedCache`-style
        objects: an exposed ``data`` dict for reads plus an eviction-enforcing
        ``put``).

        The returned :class:`CombinerOutcome` — entry, probe count, memory
        accesses, cycles, truncation — is bit-identical to what
        :meth:`combine` returns for the same lists: the walk visits the same
        combinations in the same order with the same priority-bound pruning
        and probe budget; only the per-probe work is restructured (keys are
        packed and pre-resolved in blocks through
        :meth:`~repro.hardware.rule_filter.RuleFilterMemory.lookup_batch`,
        and repeated keys replay the cached lookup instead of re-reading the
        memory).  Cached replays do not re-touch the rule-filter memory
        counters — the same deviation every fast-path cache layer already
        makes.
        """
        if any(not entries for entries in lists):
            # Some field produced no matching label: no rule can match.
            return CombinerOutcome(entry=None, probes=0, memory_accesses=0, cycles=1)
        if self.mode is CombinerMode.FIRST_LABEL:
            key = self._fast_pack([entries[0][0] for entries in lists])
            if probe_log is not None:
                probe_log.append(key)
            hit = probe_cache.data.get(key)
            if hit is None:
                lookup = self.rule_filter.lookup(key)
                hit = (lookup.entry, lookup.probes)
                probe_cache.put(key, hit)
            entry, probes = hit
            # As in lookup(): every probe is one memory access.
            return CombinerOutcome(
                entry=entry, probes=1, memory_accesses=probes, cycles=1 + probes
            )
        return self._cross_product_cached(lists, probe_cache, sort_memo, probe_log)

    #: Cross products fully staged as arrays when their size is at most this;
    #: larger ones stream through the block walk (tests may lower it to force
    #: the fallback).
    STAGE_CAP = 1 << 20

    def _staging_record(self, dimension: int, entries, sort_memo):
        """Memoized per-(dimension, match-list) staging data.

        Always carries the priority-sorted list; with NumPy present it also
        carries the per-entry priority array and the entry labels pre-shifted
        into their packed-key position, split into low/high 64-bit limbs
        (``hi`` is ``None`` for dimensions whose field never crosses bit 63).
        """
        memo_key = (dimension, entries)
        record = sort_memo.data.get(memo_key)
        if record is None:
            ordered = tuple(sorted(entries, key=lambda pair: pair[1]))
            if _np is not None:
                count = len(ordered)
                priorities = _np.fromiter(
                    (priority for _, priority in ordered), dtype=_np.int64, count=count
                )
                labels = _np.fromiter(
                    (label for label, _ in ordered), dtype=_np.uint64, count=count
                )
                shift = self._key_shifts[dimension]
                width = self.layout.field_widths()[dimension]
                if shift >= 64:
                    # The whole field lives in the high limb; shifting a
                    # uint64 by >= 64 is C-undefined, so never do it.
                    low = _np.zeros(count, dtype=_np.uint64)
                    high = labels << _np.uint64(shift - 64)
                else:
                    low = labels << _np.uint64(shift)  # wraps modulo 2**64
                    high = (
                        labels >> _np.uint64(64 - shift) if shift + width > 64 else None
                    )
                record = (ordered, priorities, low, high)
            else:
                record = (ordered, None, None, None)
            sort_memo.put(memo_key, record)
        return record

    def _cross_product_cached(
        self, lists, probe_cache, sort_memo, probe_log: Optional[list] = None
    ) -> CombinerOutcome:
        """Cache-backed twin of :meth:`_combine_cross_product`.

        Dispatches between the fully-staged array walk (NumPy, product size
        within :attr:`STAGE_CAP`) and the streamed block walk; both visit the
        identical combination order with identical accounting.
        """
        records = [
            self._staging_record(dimension, entries, sort_memo)
            for dimension, entries in enumerate(lists)
        ]
        ordered = [record[0] for record in records]
        # The two-limb key staging represents keys up to 128 bits; anything
        # wider (a custom LabelKeyLayout) streams through the block walk.
        if _np is not None and self.layout.total_bits <= 128:
            total = math.prod(len(one) for one in ordered)
            if total <= self.STAGE_CAP:
                return self._walk_fully_staged(records, ordered, probe_cache, probe_log)
        return self._walk_blocks(ordered, probe_cache, probe_log)

    def _walk_fully_staged(
        self, records, ordered, probe_cache, probe_log: Optional[list] = None
    ) -> CombinerOutcome:
        """Array-staged cross-product walk: bounds and key limbs via broadcasting."""
        dims = len(records)
        bounds = low = high = None
        for dimension, (_, priorities, low_d, high_d) in enumerate(records):
            shape = [1] * dims
            shape[dimension] = len(priorities)
            part = priorities.reshape(shape)
            bounds = part if bounds is None else _np.maximum(bounds, part)
            part = low_d.reshape(shape)
            low = part if low is None else _np.bitwise_or(low, part)
            if high_d is not None:
                part = high_d.reshape(shape)
                high = part if high is None else _np.bitwise_or(high, part)
        bounds = _np.broadcast_to(bounds, low.shape) if bounds.shape != low.shape else bounds
        bound_list = bounds.ravel().tolist()
        low_list = low.ravel().tolist()
        high_list = (
            _np.broadcast_to(high, low.shape).ravel().tolist() if high is not None else None
        )
        total = len(bound_list)
        probe_data = probe_cache.data
        probe_get = probe_data.get
        lookup_batch = self.rule_filter.lookup_batch
        budget = self.probe_budget
        block_size = self.PROBE_BLOCK
        best: Optional[RuleFilterEntry] = None
        best_priority = 0
        probes = 0
        accesses = 0
        start = 0
        while start < total:
            end = min(start + block_size, total)
            # Materialise this block's keys (pruned combinations excluded —
            # pruning is monotone, see the block walk) and resolve misses in
            # one batch.
            block_keys = [0] * (end - start)
            misses = []
            miss = misses.append
            unpruned = best is None
            for offset, index in enumerate(range(start, end)):
                if not unpruned and bound_list[index] >= best_priority:
                    continue
                key = low_list[index]
                if high_list is not None:
                    key |= high_list[index] << 64
                block_keys[offset] = key
                if key not in probe_data:
                    miss(key)
            if misses:
                # Resolve no more than the cache can hold: the excess would
                # evict keys resolved in this very batch before the walk
                # reads them, re-reading (and re-counting) their probes.
                # The remainder resolves one-by-one in the walk's fallback.
                probe_cache.put_many(lookup_batch(misses[: probe_cache.limit]))
            for offset, index in enumerate(range(start, end)):
                if best is not None and bound_list[index] >= best_priority:
                    continue
                key = block_keys[offset]
                if probe_log is not None:
                    probe_log.append(key)
                hit = probe_get(key)
                if hit is None:
                    # Evicted mid-block under a tiny probe-cache limit.
                    lookup = self.rule_filter.lookup(key)
                    hit = (lookup.entry, lookup.probes)
                    probe_cache.put(key, hit)
                probes += 1
                entry, cost = hit
                accesses += cost
                if entry is not None and (best is None or entry.priority < best_priority):
                    best = entry
                    best_priority = entry.priority
                if probes >= budget:
                    tail = itertools.islice(itertools.product(*ordered), index + 1, None)
                    return CombinerOutcome(
                        entry=best,
                        probes=probes,
                        memory_accesses=accesses,
                        cycles=1 + probes,
                        truncated=self._tail_has_candidates(tail, best),
                    )
            start = end
        return CombinerOutcome(
            entry=best, probes=probes, memory_accesses=accesses, cycles=1 + probes
        )

    def _walk_blocks(
        self, ordered, probe_cache, probe_log: Optional[list] = None
    ) -> CombinerOutcome:
        """Streamed block walk (no NumPy, or product beyond :attr:`STAGE_CAP`)."""
        combinations = itertools.product(*ordered)
        s0, s1, s2, s3, s4, s5, s6 = self._key_shifts
        lookup_batch = self.rule_filter.lookup_batch
        probe_data = probe_cache.data
        probe_get = probe_data.get
        budget = self.probe_budget
        block_size = self.PROBE_BLOCK
        best: Optional[RuleFilterEntry] = None
        best_priority = 0
        probes = 0
        accesses = 0
        while True:
            block = list(itertools.islice(combinations, block_size))
            if not block:
                break
            # Pack the whole block's keys, and pre-resolve the ones that are
            # not already cached *and* not provably pruned by the current
            # best (``best`` only improves, so a combination pruned now is
            # also pruned when the walk below reaches it).
            staged = []
            stage = staged.append
            misses = []
            miss = misses.append
            unpruned = best is None
            for combo in block:
                (l0, p0), (l1, p1), (l2, p2), (l3, p3), (l4, p4), (l5, p5), (l6, p6) = combo
                bound = p0
                if p1 > bound:
                    bound = p1
                if p2 > bound:
                    bound = p2
                if p3 > bound:
                    bound = p3
                if p4 > bound:
                    bound = p4
                if p5 > bound:
                    bound = p5
                if p6 > bound:
                    bound = p6
                if not unpruned and bound >= best_priority:
                    # Provably pruned at walk time too (``best`` only
                    # improves); the key is never needed.
                    stage((bound, 0))
                    continue
                key = (
                    (l0 << s0) | (l1 << s1) | (l2 << s2) | (l3 << s3)
                    | (l4 << s4) | (l5 << s5) | (l6 << s6)
                )
                stage((bound, key))
                if key not in probe_data:
                    miss(key)
            if misses:
                # Resolve no more than the cache can hold: the excess would
                # evict keys resolved in this very batch before the walk
                # reads them, re-reading (and re-counting) their probes.
                # The remainder resolves one-by-one in the walk's fallback.
                probe_cache.put_many(lookup_batch(misses[: probe_cache.limit]))
            # The walk itself: identical visit order, pruning, accounting and
            # budget semantics as the uncached cross-product loop.
            for index, (bound, key) in enumerate(staged):
                if best is not None and bound >= best_priority:
                    continue
                if probe_log is not None:
                    probe_log.append(key)
                hit = probe_get(key)
                if hit is None:
                    # Evicted mid-block under a tiny probe-cache limit.
                    lookup = self.rule_filter.lookup(key)
                    hit = (lookup.entry, lookup.probes)
                    probe_cache.put(key, hit)
                probes += 1
                entry, cost = hit
                accesses += cost
                if entry is not None and (best is None or entry.priority < best_priority):
                    best = entry
                    best_priority = entry.priority
                if probes >= budget:
                    tail = itertools.chain(block[index + 1:], combinations)
                    return CombinerOutcome(
                        entry=best,
                        probes=probes,
                        memory_accesses=accesses,
                        cycles=1 + probes,
                        truncated=self._tail_has_candidates(tail, best),
                    )
        return CombinerOutcome(
            entry=best, probes=probes, memory_accesses=accesses, cycles=1 + probes
        )

    # -- modes --------------------------------------------------------------------
    def _combine_first_label(
        self,
        lists: Sequence[Tuple[Tuple[int, int], ...]],
        probe_log: Optional[list] = None,
    ) -> CombinerOutcome:
        labels = [entries[0][0] for entries in lists]
        key = self.layout.pack(labels)
        if probe_log is not None:
            probe_log.append(key)
        lookup = self.rule_filter.lookup(key)
        # 1 cycle to merge/hash the 68-bit key + the probe accesses.
        return CombinerOutcome(
            entry=lookup.entry,
            probes=1,
            memory_accesses=lookup.memory_accesses,
            cycles=1 + lookup.probes,
        )

    def _combine_cross_product(
        self,
        lists: Sequence[Tuple[Tuple[int, int], ...]],
        probe_log: Optional[list] = None,
    ) -> CombinerOutcome:
        # Order the combinations so that those involving the best per-field
        # priorities are probed first; the first hit is *not* necessarily the
        # HPMR (per-field priority products are not a total order on rules),
        # so all combinations are still probed, but the early-exit bound below
        # usually stops the walk long before the budget.
        best: Optional[RuleFilterEntry] = None
        probes = 0
        accesses = 0
        truncated = False
        ordered_lists = [
            tuple(sorted(entries, key=lambda pair: pair[1])) for entries in lists
        ]
        combinations = itertools.product(*ordered_lists)
        for combination in combinations:
            lower_bound = max(priority for _, priority in combination)
            if best is not None and lower_bound >= best.priority:
                # No rule reachable through this combination can beat the
                # current best: each field's priority is the *best* priority
                # of any rule using that label, so the rule this combination
                # addresses has priority >= the maximum of them.
                continue
            key = self.layout.pack([label for label, _ in combination])
            if probe_log is not None:
                probe_log.append(key)
            lookup = self.rule_filter.lookup(key)
            probes += 1
            accesses += lookup.memory_accesses
            if lookup.entry is not None and (best is None or lookup.entry.priority < best.priority):
                best = lookup.entry
            if probes >= self.probe_budget:
                # Budget exhausted: the result is inexact only if some
                # remaining combination would actually have been probed (the
                # priority bound prunes most of the tail).  The caller must be
                # able to tell (the flag feeds LookupResult and the
                # SessionStats truncation counter).
                truncated = self._tail_has_candidates(combinations, best)
                break
        return CombinerOutcome(
            entry=best,
            probes=probes,
            memory_accesses=accesses,
            cycles=1 + probes,
            truncated=truncated,
        )

    def _tail_has_candidates(self, combinations, best: Optional[RuleFilterEntry]) -> bool:
        """True when an unvisited combination would still have been probed.

        Applies the same priority-bound prune test as the main walk — without
        issuing any memory access — so an exhausted budget whose remaining
        tail is entirely prunable is *not* reported as truncation (the result
        is provably exact).  The scan is capped at ``probe_budget`` further
        combinations: past that, truncation is reported conservatively rather
        than walking a pathological cross product to its end.
        """
        if best is None:
            # Nothing matched yet, so any remaining combination is a live
            # candidate (the prune test never fires without a best entry).
            return next(combinations, None) is not None
        for scanned, combination in enumerate(combinations):
            if scanned >= self.probe_budget:
                return True
            if max(priority for _, priority in combination) < best.priority:
                return True
        return False

"""Label combination — phase 3 of the lookup pipeline.

Each single-field engine returns a priority-ordered list of matching labels;
the combiner turns those lists into the address of the Highest Priority
Matching Rule in the Rule Filter.  Two resolution modes are provided (see
:class:`~repro.core.config.CombinerMode`):

* **FIRST_LABEL** — the paper's hardware fast path: take the first (highest
  priority) label of each list, pack them into the 68-bit key, hash once and
  read the Rule Filter.  One probe, constant time, but only correct when the
  highest-priority labels of every field actually belong to the same rule.
* **CROSS_PRODUCT** — probe every combination of matching labels (the classic
  DCFL-style resolution) and keep the hit with the best rule priority.  This
  is guaranteed correct: if a rule matches the packet, each of its field
  labels is present in the corresponding list, so its combination is probed.

The probe ordering in cross-product mode walks combinations in order of the
best per-field priorities so the expected number of probes before the HPMR is
found stays small for realistic rule sets; an optional ``probe_budget`` guards
pathological cross products.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import CombinerMode
from repro.exceptions import ConfigurationError
from repro.hardware.hash_unit import LabelKeyLayout
from repro.hardware.rule_filter import RuleFilterEntry, RuleFilterMemory

__all__ = ["CombinerOutcome", "LabelCombiner", "DIMENSIONS"]

#: The seven lookup dimensions in packing order.
DIMENSIONS: Tuple[str, ...] = (
    "src_ip_hi",
    "src_ip_lo",
    "dst_ip_hi",
    "dst_ip_lo",
    "src_port",
    "dst_port",
    "protocol",
)


@dataclass(frozen=True)
class CombinerOutcome:
    """Result of combining one packet's per-field label lists."""

    entry: Optional[RuleFilterEntry]
    probes: int
    memory_accesses: int
    cycles: int
    #: True when the cross-product walk hit ``probe_budget`` before every
    #: candidate combination was probed — the returned entry may then not be
    #: the true HPMR (or a real match may have been missed entirely).
    truncated: bool = False


class LabelCombiner:
    """Combines per-field label lists into the HPMR via the Rule Filter."""

    def __init__(
        self,
        rule_filter: RuleFilterMemory,
        layout: LabelKeyLayout,
        mode: CombinerMode = CombinerMode.CROSS_PRODUCT,
        probe_budget: int = 4096,
    ) -> None:
        if probe_budget <= 0:
            raise ConfigurationError(f"probe budget must be positive, got {probe_budget}")
        self.rule_filter = rule_filter
        self.layout = layout
        self.mode = mode
        self.probe_budget = probe_budget

    # -- public API ------------------------------------------------------------
    def combine(
        self, field_matches: Dict[str, Sequence[Tuple[int, int]]]
    ) -> CombinerOutcome:
        """Resolve the HPMR from the per-dimension ``(label, priority)`` lists."""
        missing = [name for name in DIMENSIONS if name not in field_matches]
        if missing:
            raise ConfigurationError(f"combiner is missing dimensions: {missing}")
        lists = [tuple(field_matches[name]) for name in DIMENSIONS]
        if any(not entries for entries in lists):
            # Some field produced no matching label: no rule can match.
            return CombinerOutcome(entry=None, probes=0, memory_accesses=0, cycles=1)
        if self.mode is CombinerMode.FIRST_LABEL:
            return self._combine_first_label(lists)
        return self._combine_cross_product(lists)

    # -- modes --------------------------------------------------------------------
    def _combine_first_label(
        self, lists: Sequence[Tuple[Tuple[int, int], ...]]
    ) -> CombinerOutcome:
        labels = [entries[0][0] for entries in lists]
        key = self.layout.pack(labels)
        lookup = self.rule_filter.lookup(key)
        # 1 cycle to merge/hash the 68-bit key + the probe accesses.
        return CombinerOutcome(
            entry=lookup.entry,
            probes=1,
            memory_accesses=lookup.memory_accesses,
            cycles=1 + lookup.probes,
        )

    def _combine_cross_product(
        self, lists: Sequence[Tuple[Tuple[int, int], ...]]
    ) -> CombinerOutcome:
        # Order the combinations so that those involving the best per-field
        # priorities are probed first; the first hit is *not* necessarily the
        # HPMR (per-field priority products are not a total order on rules),
        # so all combinations are still probed, but the early-exit bound below
        # usually stops the walk long before the budget.
        best: Optional[RuleFilterEntry] = None
        probes = 0
        accesses = 0
        truncated = False
        ordered_lists = [
            tuple(sorted(entries, key=lambda pair: pair[1])) for entries in lists
        ]
        combinations = itertools.product(*ordered_lists)
        for combination in combinations:
            lower_bound = max(priority for _, priority in combination)
            if best is not None and lower_bound >= best.priority:
                # No rule reachable through this combination can beat the
                # current best: each field's priority is the *best* priority
                # of any rule using that label, so the rule this combination
                # addresses has priority >= the maximum of them.
                continue
            key = self.layout.pack([label for label, _ in combination])
            lookup = self.rule_filter.lookup(key)
            probes += 1
            accesses += lookup.memory_accesses
            if lookup.entry is not None and (best is None or lookup.entry.priority < best.priority):
                best = lookup.entry
            if probes >= self.probe_budget:
                # Budget exhausted: the result is inexact only if some
                # remaining combination would actually have been probed (the
                # priority bound prunes most of the tail).  The caller must be
                # able to tell (the flag feeds LookupResult and the
                # SessionStats truncation counter).
                truncated = self._tail_has_candidates(combinations, best)
                break
        return CombinerOutcome(
            entry=best,
            probes=probes,
            memory_accesses=accesses,
            cycles=1 + probes,
            truncated=truncated,
        )

    def _tail_has_candidates(self, combinations, best: Optional[RuleFilterEntry]) -> bool:
        """True when an unvisited combination would still have been probed.

        Applies the same priority-bound prune test as the main walk — without
        issuing any memory access — so an exhausted budget whose remaining
        tail is entirely prunable is *not* reported as truncation (the result
        is provably exact).  The scan is capped at ``probe_budget`` further
        combinations: past that, truncation is reported conservatively rather
        than walking a pathological cross product to its end.
        """
        if best is None:
            # Nothing matched yet, so any remaining combination is a live
            # candidate (the prune test never fires without a best entry).
            return next(combinations, None) is not None
        for scanned, combination in enumerate(combinations):
            if scanned >= self.probe_budget:
                return True
            if max(priority for _, priority in combination) < best.priority:
                return True
        return False

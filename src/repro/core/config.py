"""Classifier configuration.

The defining feature of the paper's architecture is that it is *configurable*:
the SDN controller selects, per deployment, which IP lookup algorithm runs in
the shared hardware (the ``IPalg_s`` signal), how the label combination is
resolved, and how much memory is provisioned for each block.  All of those
knobs live in :class:`ClassifierConfig`; the classifier itself never hard-codes
them.

The default values reproduce the paper's prototype: MBT with 5/5/6-bit
strides, 13/7/2-bit labels, an 8K-rule Rule Filter, 133.51 MHz clock, and a
provisioned memory inventory totalling roughly the 2.1 Mbit of Table V.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.fields.multibit_trie import PAPER_SEGMENT_STRIDES
from repro.hardware.hash_unit import LabelKeyLayout

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.builder import ConfigBuilder

__all__ = ["IpAlgorithm", "CombinerMode", "MemoryProvisioning", "ClassifierConfig"]


class IpAlgorithm(enum.Enum):
    """The two IP lookup algorithms the ``IPalg_s`` signal selects between."""

    MBT = "mbt"
    BST = "bst"


class CombinerMode(enum.Enum):
    """How the per-field label lists are combined into the HPMR address.

    ``FIRST_LABEL`` is the paper's fast path: only the highest-priority label
    of each field is hashed into the Rule Filter (one probe).  ``CROSS_PRODUCT``
    probes every combination of matching labels and keeps the best-priority
    hit — still a pure label-method resolution, but guaranteed to return the
    true HPMR for arbitrarily overlapping rule sets.
    """

    FIRST_LABEL = "first_label"
    CROSS_PRODUCT = "cross_product"


@dataclass(frozen=True)
class MemoryProvisioning:
    """Provisioned (synthesised) memory geometry of the prototype.

    These are the *allocated* block sizes — what the FPGA synthesis reserves —
    not the bits actually occupied by a given rule set.  The defaults are
    calibrated so the total lands near the 2,097,184 block-memory bits of
    Table V, split into the 543 Kbit MBT / 49 Kbit BST budgets of Table VI,
    a 786 Kbit rule filter (8K x 96-bit entries) and the label memories.
    """

    #: (depth, width) of the three MBT level memories of ONE 16-bit segment engine.
    mbt_level_geometry: Tuple[Tuple[int, int], ...] = ((32, 68), (512, 68), (1452, 68))
    #: (depth, width) of ONE segment's BST node memory.
    bst_geometry: Tuple[int, int] = (384, 32)
    #: (depth, width) of ONE segment's IP label-list memory (label + priority
    #: + next-entry pointer per word).
    ip_label_geometry: Tuple[int, int] = (8192, 23)
    #: Number of port registers per port field (source and destination).
    port_registers: int = 128
    #: (depth, width) of ONE port field's label buffer (the "storage-capacity
    #: buffers" holding port/protocol labels while the IP lookups complete).
    port_label_geometry: Tuple[int, int] = (128, 48)
    #: (depth, width) of the protocol LUT.
    protocol_geometry: Tuple[int, int] = (256, 6)
    #: Rule Filter entries provisioned in embedded memory with the MBT selected.
    rule_filter_entries: int = 8192
    #: Bits of one Rule Filter entry.
    rule_entry_bits: int = 96

    def mbt_bits_per_segment(self) -> int:
        """Provisioned MBT node memory of one segment engine."""
        return sum(depth * width for depth, width in self.mbt_level_geometry)

    def bst_bits_per_segment(self) -> int:
        """Provisioned BST node memory of one segment engine."""
        depth, width = self.bst_geometry
        return depth * width

    def total_mbt_bits(self) -> int:
        """MBT node memory over the four IP segment engines (Table VI row 1)."""
        return 4 * self.mbt_bits_per_segment()

    def total_bst_bits(self) -> int:
        """BST node memory over the four IP segment engines (Table VI row 2)."""
        return 4 * self.bst_bits_per_segment()

    def rule_filter_bits(self) -> int:
        """Provisioned Rule Filter memory."""
        return self.rule_filter_entries * self.rule_entry_bits

    def reclaimable_bits(self) -> int:
        """MBT memory that becomes spare rule storage when the BST is selected.

        The BST occupies the level-2-sized block; the rest of the MBT memory
        (levels 1 and 3 of every segment engine) is reclaimed for rules —
        this is the Fig. 5 "Data 3" path and the reason the BST configuration
        stores ~12K rules against MBT's 8K in Table VI.
        """
        level2_bits = self.mbt_level_geometry[1][0] * self.mbt_level_geometry[1][1]
        return 4 * (self.mbt_bits_per_segment() - level2_bits)

    def extra_rules_when_bst(self) -> int:
        """Extra Rule Filter entries available in the BST configuration."""
        return self.reclaimable_bits() // self.rule_entry_bits


@dataclass(frozen=True)
class ClassifierConfig:
    """Full configuration of one classifier instance."""

    ip_algorithm: IpAlgorithm = IpAlgorithm.MBT
    combiner_mode: CombinerMode = CombinerMode.CROSS_PRODUCT
    label_layout: LabelKeyLayout = field(default_factory=LabelKeyLayout)
    mbt_strides: Tuple[int, ...] = PAPER_SEGMENT_STRIDES
    #: Registered block-RAM reads cost two cycles per MBT level, giving the
    #: 6-cycle MBT latency of section V.B for the 3-level segment trie.
    mbt_cycles_per_level: int = 2
    provisioning: MemoryProvisioning = field(default_factory=MemoryProvisioning)
    clock_mhz: float = 133.51
    #: Minimum packet size used for line-rate throughput numbers (bytes).
    min_packet_bytes: int = 40

    def __post_init__(self) -> None:
        if sum(self.mbt_strides) != 16:
            raise ConfigurationError(
                f"MBT segment strides must cover 16 bits, got {self.mbt_strides}"
            )
        if self.clock_mhz <= 0:
            raise ConfigurationError(f"clock frequency must be positive, got {self.clock_mhz}")
        if self.min_packet_bytes <= 0:
            raise ConfigurationError("minimum packet size must be positive")
        if self.mbt_cycles_per_level <= 0:
            raise ConfigurationError("mbt_cycles_per_level must be positive")

    # -- construction -----------------------------------------------------------
    @classmethod
    def builder(cls, base: Optional["ClassifierConfig"] = None) -> "ConfigBuilder":
        """Fluent configuration: ``ClassifierConfig.builder().ip_algorithm("bst")...``.

        Returns a :class:`repro.api.builder.ConfigBuilder` seeded with
        ``base`` (or the paper's default prototype configuration).
        """
        from repro.api.builder import ConfigBuilder

        return ConfigBuilder(base)

    # -- derived quantities -----------------------------------------------------
    def rule_capacity(self) -> int:
        """Rule Filter capacity under the current IP algorithm selection.

        The BST selection reclaims the unused MBT memory for rule storage
        (Fig. 5), so its capacity exceeds the provisioned 8K entries.
        """
        base = self.provisioning.rule_filter_entries
        if self.ip_algorithm is IpAlgorithm.BST:
            return base + self.provisioning.extra_rules_when_bst()
        return base

    def ip_memory_bits(self) -> int:
        """Provisioned IP-algorithm node memory under the current selection."""
        if self.ip_algorithm is IpAlgorithm.BST:
            return self.provisioning.total_bst_bits()
        return self.provisioning.total_mbt_bits()

    def with_ip_algorithm(self, algorithm: IpAlgorithm) -> "ClassifierConfig":
        """Return a copy of the configuration with a different ``IPalg_s`` value."""
        from dataclasses import replace

        return replace(self, ip_algorithm=algorithm)

    def with_combiner(self, mode: CombinerMode) -> "ClassifierConfig":
        """Return a copy of the configuration with a different combiner mode."""
        from dataclasses import replace

        return replace(self, combiner_mode=mode)

    def describe(self) -> Dict[str, object]:
        """Structured summary used by reports and the examples."""
        return {
            "ip_algorithm": self.ip_algorithm.value,
            "combiner_mode": self.combiner_mode.value,
            "label_key_bits": self.label_layout.total_bits,
            "mbt_strides": self.mbt_strides,
            "clock_mhz": self.clock_mhz,
            "rule_capacity": self.rule_capacity(),
            "ip_memory_bits": self.ip_memory_bits(),
        }

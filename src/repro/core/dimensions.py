"""Dimension mapping between rules/packets and the seven lookup engines.

The architecture searches seven dimensions in parallel: the high and low
16-bit segments of both IP addresses, the two port fields and the protocol
field.  This module is the single place where a :class:`~repro.rules.rule.Rule`
or a :class:`~repro.rules.packet.PacketHeader` is translated into per-dimension
specifications / lookup keys, so every component (update engine, lookup path,
analysis) agrees on the encoding.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.core.label_combiner import DIMENSIONS
from repro.fields.prefix import prefix_range, split_prefix_segments
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule

__all__ = [
    "DIMENSIONS",
    "IP_DIMENSIONS",
    "PORT_DIMENSIONS",
    "rule_dimension_specs",
    "packet_dimension_values",
    "dimension_label_width",
    "spec_interval",
]

#: The four IP-segment dimensions (13-bit labels).
IP_DIMENSIONS: Tuple[str, ...] = ("src_ip_hi", "src_ip_lo", "dst_ip_hi", "dst_ip_lo")
#: The two port dimensions (7-bit labels).
PORT_DIMENSIONS: Tuple[str, ...] = ("src_port", "dst_port")


def rule_dimension_specs(rule: Rule) -> Dict[str, Hashable]:
    """Return the per-dimension match specification of a rule.

    * IP segments: ``(value, length)`` 16-bit prefixes obtained by splitting
      the 32-bit rule prefix (section IV.C);
    * ports: ``(low, high)`` inclusive ranges;
    * protocol: ``(wildcard, value)``.
    """
    src_hi, src_lo = split_prefix_segments(rule.src_prefix.value, rule.src_prefix.length)
    dst_hi, dst_lo = split_prefix_segments(rule.dst_prefix.value, rule.dst_prefix.length)
    return {
        "src_ip_hi": src_hi,
        "src_ip_lo": src_lo,
        "dst_ip_hi": dst_hi,
        "dst_ip_lo": dst_lo,
        "src_port": (rule.src_port.low, rule.src_port.high),
        "dst_port": (rule.dst_port.low, rule.dst_port.high),
        "protocol": rule.protocol.key(),
    }


def packet_dimension_values(packet: PacketHeader) -> Dict[str, int]:
    """Return the per-dimension lookup key of a packet header."""
    segments = packet.ip_segments()
    return {
        "src_ip_hi": segments["src_ip_hi"],
        "src_ip_lo": segments["src_ip_lo"],
        "dst_ip_hi": segments["dst_ip_hi"],
        "dst_ip_lo": segments["dst_ip_lo"],
        "src_port": packet.src_port,
        "dst_port": packet.dst_port,
        "protocol": packet.protocol,
    }


def spec_interval(dimension: str, spec: Hashable) -> Tuple[int, int]:
    """Inclusive interval of lookup values a dimension spec matches.

    This is the *exact* set of points whose lookup result lists the spec's
    label: IP segments expand their 16-bit prefix, ports are already ranges
    and the protocol is either the full 8-bit space (wildcard) or one value.
    The scoped-invalidation path uses it as the blast radius of a label
    reprioritization, which changes lookup results exactly on this interval.
    """
    if dimension in IP_DIMENSIONS:
        value, length = spec  # type: ignore[misc]
        return prefix_range(int(value), int(length), 16)
    if dimension in PORT_DIMENSIONS:
        low, high = spec  # type: ignore[misc]
        return int(low), int(high)
    if dimension == "protocol":
        wildcard, value = spec  # type: ignore[misc]
        return (0, 255) if wildcard else (int(value), int(value))
    raise KeyError(f"unknown dimension {dimension!r}")


def dimension_label_width(dimension: str, ip_bits: int, port_bits: int, protocol_bits: int) -> int:
    """Label width of one dimension under a given label layout."""
    if dimension in IP_DIMENSIONS:
        return ip_bits
    if dimension in PORT_DIMENSIONS:
        return port_bits
    if dimension == "protocol":
        return protocol_bits
    raise KeyError(f"unknown dimension {dimension!r}")

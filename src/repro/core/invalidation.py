"""Commit blast radius for dependency-aware partial cache invalidation.

The control plane (:mod:`repro.api.control`) computes, for every committed
delta, exactly which memoized state the commit can have perturbed, and hands
that description — an :class:`InvalidationScope` — to the caches hanging off
the classifier (:class:`~repro.perf.fastpath.FastPathAccelerator`,
:class:`~repro.perf.flowcache.FlowCache`).  The caches then drop only the
affected entries instead of epoch-flushing wholesale, which is what keeps
them warm across an update-heavy workload.

The scope has three parts:

* **epoch handoff** — the per-engine and rule-filter
  :class:`~repro.observers.MutationEpoch` marks immediately before and after
  the commit.  A cache applies the scoped drops only when its own snapshot
  equals the *pre* marks (i.e. it was exactly up to date with the pre-commit
  state) and then adopts the *post* marks; any mismatch means something moved
  outside the control plane's bookkeeping and the cache falls back to its
  wholesale epoch-comparison path.
* **field spans** — per dimension, the merged value intervals on which a
  single-field engine's lookup result (or its access accounting) may differ
  after the commit: the structural blast radius reported by
  :meth:`~repro.fields.base.SingleFieldEngine.invalidation_span` plus the
  exact spec interval of every label reprioritization.
* **filter keys** — the label keys whose Rule Filter lookup outcomes the
  commit's inserts/deletes may have changed (drained from
  :meth:`~repro.hardware.rule_filter.RuleFilterMemory.drain_dirty`): the
  inserted/removed keys plus any entry a backward-shift deletion relocated.
  Probe walks of every *other* key scan the same slots to the same empty
  terminator as long as the table's occupancy pattern is unchanged, so
  outcome caches registered by probed key prune exactly.  When occupancy
  *did* net-change, probe counts moved for an unbounded key set and
  ``filter_wholesale`` is set instead.

``wholesale=True`` short-circuits everything: the commit's effects cannot be
bounded (an engine without a local span moved, a reconfiguration swapped the
datapath, tracking budgets overflowed) and caches must flush as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["InvalidationScope"]

#: Mark key for the Rule Filter in the pre/post mark dictionaries (the other
#: keys are the dimension names).
FILTER_MARK = "rule_filter"


@dataclass
class InvalidationScope:
    """Everything a commit can have invalidated, bounded and itemised."""

    #: ``{dimension | FILTER_MARK: (object identity, mutation epoch)}`` taken
    #: immediately before the first operation of the commit was applied.
    pre_marks: Dict[str, Tuple[object, int]] = field(default_factory=dict)
    #: Same snapshot immediately after the last operation succeeded.
    post_marks: Dict[str, Tuple[object, int]] = field(default_factory=dict)
    #: Per dimension: inclusive value intervals whose field lookups may have
    #: changed.  Dimensions absent from the mapping are untouched.
    field_spans: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    #: Label keys whose Rule Filter lookup outcomes may have changed.
    filter_keys: List[int] = field(default_factory=list)
    #: True when the filter's occupancy pattern net-changed (or its dirty
    #: tracking overflowed): every filter-derived cache entry must go.
    filter_wholesale: bool = False
    #: True when the commit's effects cannot be bounded at all.
    wholesale: bool = False

    def add_span(self, dimension: str, span: Tuple[int, int]) -> None:
        """Record one affected value interval for ``dimension``."""
        self.field_spans.setdefault(dimension, []).append(span)

    @property
    def touches_filter(self) -> bool:
        """True when any Rule Filter lookup may have changed."""
        return self.filter_wholesale or bool(self.filter_keys)

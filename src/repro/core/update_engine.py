"""Incremental update engine (section IV.A, Fig. 4).

The update engine is the software (controller-side) half of the architecture:
it maintains the per-dimension Label Tables, decides for every rule insert or
delete whether a dimension needs only a counter bump or a structural change of
the algorithm memory, drives the engines accordingly and finally programs the
Rule Filter entry addressed by the rule's packed label key.

The hardware cost model follows section V.A: uploading one rule takes two
clock cycles (source information, then destination information, limited by
I/O pins) plus one clock cycle for the hardware hash producing the rule
address; structural algorithm updates additionally upload the new node words
computed in software.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.config import ClassifierConfig
from repro.core.dimensions import DIMENSIONS, rule_dimension_specs
from repro.core.result import UpdateResult
from repro.exceptions import UpdateError
from repro.fields.base import SingleFieldEngine
from repro.hardware.clock import CycleReport
from repro.hardware.rule_filter import RuleFilterMemory
from repro.labels.label_table import LabelTable
from repro.rules.rule import Rule

__all__ = ["UpdateEngine"]

#: Clock cycles of one rule upload over the device's update interface:
#: one cycle for the source half, one for the destination half (pin-limited),
#: plus one cycle for the hardware hash of the rule address (section V.A).
RULE_UPLOAD_CYCLES = 2
HASH_CYCLES = 1


class UpdateEngine:
    """Drives incremental rule insertion and deletion."""

    def __init__(
        self,
        config: ClassifierConfig,
        engines: Dict[str, SingleFieldEngine],
        label_tables: Dict[str, LabelTable],
        rule_filter: RuleFilterMemory,
    ) -> None:
        self.config = config
        self.engines = engines
        self.label_tables = label_tables
        self.rule_filter = rule_filter
        #: Installed rules by id.
        self.rules: Dict[int, Rule] = {}
        #: Packed label key of every installed rule (needed for deletion).
        self._rule_keys: Dict[int, int] = {}
        #: Per dimension: which rules reference each unique field value.
        self._value_users: Dict[str, Dict[Hashable, Set[int]]] = {name: {} for name in DIMENSIONS}

    # -- queries ------------------------------------------------------------
    @property
    def installed_rules(self) -> int:
        """Number of rules currently installed."""
        return len(self.rules)

    def rule_key(self, rule_id: int) -> int:
        """Packed 68-bit label key of an installed rule."""
        try:
            return self._rule_keys[rule_id]
        except KeyError as exc:
            raise UpdateError(f"rule {rule_id} is not installed") from exc

    def installed_rule_ids(self) -> List[int]:
        """Ids of the installed rules, sorted."""
        return sorted(self.rules)

    def installed_rules_in_order(self) -> List[Rule]:
        """The installed rules in their original installation order.

        Label values depend on insertion order, so replaying rules (e.g. on an
        ``IPalg_s`` reconfiguration) must use this order — not sorted ids — to
        rebuild a state identical to the one being replaced.
        """
        return list(self.rules.values())

    # -- insertion -----------------------------------------------------------------
    def insert_rule(self, rule: Rule) -> UpdateResult:
        """Install one rule, following the Fig. 4 pseudo-code per dimension."""
        if rule.rule_id in self.rules:
            raise UpdateError(f"rule {rule.rule_id} is already installed")
        if self.installed_rules >= self.config.rule_capacity():
            raise UpdateError(
                f"rule capacity exhausted ({self.config.rule_capacity()} rules) "
                f"in the {self.config.ip_algorithm.value} configuration"
            )
        specs = rule_dimension_specs(rule)
        labels: Dict[str, Tuple[int, bool]] = {}
        structural: List[str] = []
        reprioritized: List[str] = []
        accesses: Dict[str, int] = {}
        cycles = CycleReport(operation=f"insert_rule_{rule.rule_id}")
        # Every per-dimension mutation is journalled so a failure anywhere in
        # the insert (an engine refusing the value, the Rule Filter raising
        # CapacityError) unwinds cleanly instead of leaving the label tables
        # and engines corrupted: (dimension, spec, previous_best, engine_done).
        applied: List[Tuple[str, Hashable, Optional[int], bool]] = []
        try:
            for dimension in DIMENSIONS:
                spec = specs[dimension]
                table = self.label_tables[dimension]
                engine = self.engines[dimension]
                previous_best: Optional[int] = (
                    table.best_priority_of(table.label_of(spec)) if spec in table else None
                )
                outcome = table.insert(spec, rule.priority)
                labels[dimension] = (outcome.label, outcome.created)
                applied.append((dimension, spec, previous_best, False))
                if outcome.created:
                    cost = engine.insert(spec, outcome.label, rule.priority)
                    applied[-1] = (dimension, spec, previous_best, True)
                    structural.append(dimension)
                    accesses[dimension] = cost.memory_accesses + 1  # + label table write
                    cycles.add_phase(f"{dimension}_structural", max(1, cost.memory_accesses))
                else:
                    accesses[dimension] = 1  # label table counter bump
                    cycles.add_phase(f"{dimension}_counter", 1)
                    if previous_best is not None and rule.priority < previous_best:
                        # The new rule becomes the HPML owner for this value; the
                        # engine's label list ordering must reflect it.
                        self._reprioritize(engine, spec, outcome.label, rule.priority)
                        reprioritized.append(dimension)
                self._value_users[dimension].setdefault(spec, set()).add(rule.rule_id)

            key = self._pack_key(labels)
            _, filter_accesses = self.rule_filter.insert(key, rule)
        except Exception:
            self._rollback_insert(rule, labels, applied)
            raise
        accesses["rule_filter"] = filter_accesses
        cycles.add_phase("rule_upload", RULE_UPLOAD_CYCLES)
        cycles.add_phase("hash", HASH_CYCLES)

        self.rules[rule.rule_id] = rule
        self._rule_keys[rule.rule_id] = key
        return UpdateResult(
            rule_id=rule.rule_id,
            operation="insert",
            labels=labels,
            structural_dimensions=tuple(structural),
            cycles=cycles,
            memory_accesses=accesses,
            reprioritized_dimensions=tuple(reprioritized),
        )

    def _rollback_insert(
        self,
        rule: Rule,
        labels: Dict[str, Tuple[int, bool]],
        applied: List[Tuple[str, Hashable, Optional[int], bool]],
    ) -> None:
        """Unwind the per-dimension state of a failed :meth:`insert_rule`.

        Walks the journal backwards: drops the rule from ``_value_users``,
        removes engine entries created for the rule, restores prior label-list
        priority ordering, and rolls the label tables back — reference
        counters, best priorities *and* update statistics end up exactly as
        before the attempt, so a capacity-exhausted insert is a no-op.
        """
        for dimension, spec, previous_best, engine_done in reversed(applied):
            table = self.label_tables[dimension]
            engine = self.engines[dimension]
            label, created = labels[dimension]
            users = self._value_users[dimension].get(spec)
            if users is not None:
                users.discard(rule.rule_id)
                if not users:
                    del self._value_users[dimension][spec]
            if created:
                if engine_done:
                    engine.remove(spec, label)
                table.rollback_insert(spec, None)
            else:
                if previous_best is not None and rule.priority < previous_best:
                    self._reprioritize(engine, spec, label, previous_best)
                table.rollback_insert(spec, previous_best)

    # -- deletion ---------------------------------------------------------------------
    def delete_rule(self, rule_id: int) -> UpdateResult:
        """Remove one installed rule, releasing labels whose counter reaches zero."""
        rule = self.rules.get(rule_id)
        if rule is None:
            raise UpdateError(f"rule {rule_id} is not installed")
        specs = rule_dimension_specs(rule)
        labels: Dict[str, Tuple[int, bool]] = {}
        structural: List[str] = []
        reprioritized: List[str] = []
        accesses: Dict[str, int] = {}
        cycles = CycleReport(operation=f"delete_rule_{rule_id}")
        key = self._rule_keys[rule_id]
        deleted, filter_accesses = self.rule_filter.delete(key, rule_id)
        if not deleted:
            raise UpdateError(f"rule {rule_id} missing from the rule filter (corrupted state)")
        accesses["rule_filter"] = filter_accesses
        cycles.add_phase("rule_upload", RULE_UPLOAD_CYCLES)
        cycles.add_phase("hash", HASH_CYCLES)

        for dimension in DIMENSIONS:
            spec = specs[dimension]
            table = self.label_tables[dimension]
            engine = self.engines[dimension]
            users = self._value_users[dimension].get(spec, set())
            users.discard(rule_id)
            previous_best = table.best_priority_of(table.label_of(spec))
            outcome = table.remove(spec)
            labels[dimension] = (outcome.label, outcome.deleted)
            if outcome.deleted:
                cost = engine.remove(spec, outcome.label)
                structural.append(dimension)
                accesses[dimension] = cost.memory_accesses + 1
                cycles.add_phase(f"{dimension}_structural", max(1, cost.memory_accesses))
                self._value_users[dimension].pop(spec, None)
            else:
                accesses[dimension] = 1
                cycles.add_phase(f"{dimension}_counter", 1)
                surviving = [self.rules[rid].priority for rid in users if rid in self.rules and rid != rule_id]
                if surviving:
                    best = min(surviving)
                    table.refresh_best_priority(spec, surviving)
                    if best != previous_best:
                        # Only touch the engine when the deleted rule really
                        # was the value's best: the stored priority is
                        # unchanged otherwise, and skipping the no-op keeps
                        # the engine's mutation epoch (and the fast-path
                        # caches hanging off it) stable across the commit.
                        self._reprioritize(engine, spec, outcome.label, best)
                        reprioritized.append(dimension)

        del self.rules[rule_id]
        del self._rule_keys[rule_id]
        return UpdateResult(
            rule_id=rule_id,
            operation="delete",
            labels=labels,
            structural_dimensions=tuple(structural),
            cycles=cycles,
            memory_accesses=accesses,
            reprioritized_dimensions=tuple(reprioritized),
        )

    # -- helpers --------------------------------------------------------------------------
    def _pack_key(self, labels: Dict[str, Tuple[int, bool]]) -> int:
        ordered = [labels[name][0] for name in DIMENSIONS]
        return self.config.label_layout.pack(ordered)

    @staticmethod
    def _reprioritize(engine: SingleFieldEngine, spec: Hashable, label: int, priority: int) -> None:
        reprioritize = getattr(engine, "reprioritize", None)
        if reprioritize is not None:
            reprioritize(spec, label, priority)

    def update_statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-dimension cheap-vs-structural update counts (Fig. 4 behaviour)."""
        return {name: table.update_statistics() for name, table in self.label_tables.items()}

"""The paper's primary contribution: the configurable classification core.

* :class:`~repro.core.config.ClassifierConfig` — every knob of the architecture
  (IP algorithm selection, combiner mode, label widths, memory provisioning);
* :class:`~repro.core.classifier.ConfigurableClassifier` — the behavioural
  model of the full Fig. 2 datapath;
* :class:`~repro.core.update_engine.UpdateEngine` — incremental rule
  insertion/deletion via label tables (Fig. 4);
* :class:`~repro.core.label_combiner.LabelCombiner` — phase-3 label
  combination and Rule Filter resolution;
* result dataclasses in :mod:`~repro.core.result`.
"""

from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm, MemoryProvisioning
from repro.core.dimensions import (
    DIMENSIONS,
    IP_DIMENSIONS,
    PORT_DIMENSIONS,
    packet_dimension_values,
    rule_dimension_specs,
)
from repro.core.label_combiner import CombinerOutcome, LabelCombiner
from repro.core.result import ClassifierReport, LookupResult, MatchedRule, UpdateResult
from repro.core.update_engine import UpdateEngine

__all__ = [
    "ConfigurableClassifier",
    "ClassifierConfig",
    "IpAlgorithm",
    "CombinerMode",
    "MemoryProvisioning",
    "LabelCombiner",
    "CombinerOutcome",
    "UpdateEngine",
    "LookupResult",
    "UpdateResult",
    "MatchedRule",
    "ClassifierReport",
    "DIMENSIONS",
    "IP_DIMENSIONS",
    "PORT_DIMENSIONS",
    "rule_dimension_specs",
    "packet_dimension_values",
]

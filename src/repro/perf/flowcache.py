"""Exact-match flow cache fronting every classification path.

Production classifiers at millions-of-flows scale sit behind an exact-match
flow table: the full lookup pipeline (the paper's architecture) only ever
sees cache-miss traffic, and the cache serves the long tail of packets that
belong to already-classified flows.  :class:`FlowCache` is that tier for this
library.  It is keyed by the packed 104-bit header word
(:func:`repro.perf.transport.pack_header`) so a cache entry and a wire word
are the same 13 bytes, and it fronts whatever batch path the classifier has
enabled — per-packet, memoizing fast path, or vectorized cold path.

**Virtual clock.**  All timeouts are measured in *packets observed*, not wall
time: the cache advances one tick per packet it serves.  This keeps every
execution path (and the differential battery) bit-reproducible — the same
trace through the same policy always expires the same entries at the same
packets.

**Eviction policies** (HQTimer direction — timeout-managed rule residency):

``idle``
    An entry dies when no packet of its flow arrived for ``idle_timeout``
    ticks.  Classic OpenFlow idle timeout; hot flows live forever.
``hard``
    An entry dies ``hard_timeout`` ticks after installation regardless of
    traffic.  Bounds worst-case staleness; hot flows pay periodic re-lookups.
``hybrid``
    HQTimer-style adaptive scheme: each entry carries an idle *budget* that
    starts at ``idle_timeout`` and doubles on every hit, capped at
    ``hard_timeout``.  Short-lived flows expire quickly; proven-hot flows
    earn residency up to the hard cap.

Expiry is lazy (checked when the entry is next touched) plus a bounded sweep
under capacity pressure and an explicit :meth:`FlowCache.expire` for tests
and maintenance loops.

**Predictors.**  Under capacity pressure, after expired entries in the LRU
window are reclaimed, the cache must pick a resident victim.  With no
predictor it evicts the least-recently-used entry; a :class:`Predictor`
instead scores a bounded window of LRU-ordered candidates and evicts the
lowest score — :class:`FrequencyPredictor` keeps historically hot flows,
:class:`RecencyPredictor` reproduces LRU through the same protocol.

**Invalidation.**  The cache snapshots the classifier's mutation epochs
(same ``(object, epoch)`` marks as the fast path) and wholesale-flushes when
any moved outside a tracked commit.  Control-plane commits
(:class:`repro.api.control.ClassifierControl`) instead call
:meth:`FlowCache.note_commit` with the applied delta, which drops *only* the
affected entries when that is decision-exact: entries whose cached decision
points at a removed rule, and entries whose flow matches an inserted rule.
Reconfigure ops — and any commit under the approximate ``first_label``
combiner, where an unrelated rule can perturb probe order — flush wholesale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.dimensions import DIMENSIONS
from repro.core.result import BatchResult, Classification
from repro.exceptions import ConfigurationError
from repro.perf.transport import _HEADER_STRUCT
from repro.rules.packet import PacketHeader

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.control import Delta

__all__ = [
    "FLOW_POLICIES",
    "DEFAULT_FLOW_CAPACITY",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_HARD_TIMEOUT",
    "FlowCache",
    "Predictor",
    "FrequencyPredictor",
    "RecencyPredictor",
    "resolve_predictor",
]

#: The three supported eviction policies.
FLOW_POLICIES: Tuple[str, ...] = ("idle", "hard", "hybrid")

#: Default bounded table size (entries).
DEFAULT_FLOW_CAPACITY = 65536

#: Default idle timeout in virtual-clock ticks (packets observed).
DEFAULT_IDLE_TIMEOUT = 4096

#: Default hard timeout / hybrid residency cap in ticks.
DEFAULT_HARD_TIMEOUT = 65536

#: How many LRU-ordered entries the capacity sweep examines per eviction.
EVICTION_SAMPLE = 8

# Entry layout (mutable list — cheapest mutable record in the hot loop).
_RECORD = 0      # cached Classification
_PACKET = 1      # the PacketHeader (needed for match-based invalidation)
_INSTALLED = 2   # tick the entry was installed
_LAST_HIT = 3    # tick of the most recent hit (or installation)
_HITS = 4        # hit count since installation
_BUDGET = 5      # hybrid policy's current idle allowance


class Predictor:
    """Protocol deciding which resident entries to keep under pressure.

    A predictor maps an entry's observable history to a comparable score;
    the capacity sweep evicts the *lowest*-scoring entry of its candidate
    window.  Implementations must be deterministic pure functions of their
    inputs — the differential battery replays the same trace across seven
    execution paths and expects identical eviction decisions everywhere.
    """

    name = "base"

    def score(self, hits: int, last_hit: int, installed: int, now: int):
        """Return a comparable score; higher keeps the entry resident."""
        raise NotImplementedError


class FrequencyPredictor(Predictor):
    """Keep historically hot flows: score by hit count, recency tie-break."""

    name = "frequency"

    def score(self, hits: int, last_hit: int, installed: int, now: int):
        return (hits, last_hit)


class RecencyPredictor(Predictor):
    """Pure recency (reproduces LRU through the predictor protocol)."""

    name = "recency"

    def score(self, hits: int, last_hit: int, installed: int, now: int):
        return (last_hit, hits)


_PREDICTORS = {
    FrequencyPredictor.name: FrequencyPredictor,
    RecencyPredictor.name: RecencyPredictor,
}


def resolve_predictor(
    predictor: Union[None, str, Predictor]
) -> Optional[Predictor]:
    """Map a predictor spec (instance, registered name, or None) to an instance."""
    if predictor is None or isinstance(predictor, Predictor):
        return predictor
    try:
        return _PREDICTORS[predictor]()
    except KeyError:
        raise ConfigurationError(
            f"unknown flow predictor {predictor!r}; "
            f"choose from {sorted(_PREDICTORS)} or pass a Predictor instance"
        ) from None


class FlowCache:
    """Bounded exact-match flow table keyed by the packed header word.

    Parameters
    ----------
    capacity:
        Maximum resident entries; exceeding it triggers the capacity sweep.
    policy:
        One of :data:`FLOW_POLICIES` (``idle`` / ``hard`` / ``hybrid``).
    idle_timeout / hard_timeout:
        Timeouts in virtual-clock ticks (packets observed, never wall time).
        ``hybrid`` uses ``idle_timeout`` as the starting budget and
        ``hard_timeout`` as the residency cap.
    predictor:
        ``None`` (plain LRU under pressure), a registered name
        (``"frequency"`` / ``"recency"``), or a :class:`Predictor` instance.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FLOW_CAPACITY,
        policy: str = "idle",
        idle_timeout: int = DEFAULT_IDLE_TIMEOUT,
        hard_timeout: int = DEFAULT_HARD_TIMEOUT,
        predictor: Union[None, str, Predictor] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"flow cache capacity must be positive, got {capacity}")
        if policy not in FLOW_POLICIES:
            raise ConfigurationError(
                f"unknown flow cache policy {policy!r}; choose from {FLOW_POLICIES}"
            )
        if idle_timeout <= 0 or hard_timeout <= 0:
            raise ConfigurationError(
                f"flow cache timeouts must be positive, got idle={idle_timeout} hard={hard_timeout}"
            )
        if hard_timeout < idle_timeout:
            raise ConfigurationError(
                f"hard_timeout ({hard_timeout}) must be >= idle_timeout ({idle_timeout})"
            )
        self.capacity = capacity
        self.policy = policy
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.predictor = resolve_predictor(predictor)
        #: Virtual clock: ticks once per packet observed.
        self.now = 0
        # key (13-byte packed word) -> entry list; OrderedDict order is
        # recency (hits move_to_end), so iteration starts at the LRU end.
        self._entries: "OrderedDict[bytes, list]" = OrderedDict()
        # rule_id (or None for misses) -> set of resident keys whose cached
        # decision points at that rule; powers surgical invalidation.
        self._by_rule: Dict[Optional[int], set] = {}
        # Serving counters.
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.timeout_evictions = 0
        self.capacity_evictions = 0
        self.surgical_drops = 0
        self.invalidations = 0
        # Epoch marks, same scheme as FastPathAccelerator: (object, epoch)
        # per engine plus the Rule Filter.  Only populated once bound.
        self._classifier = None
        self._engine_marks: Dict[str, tuple] = {}
        self._filter_mark: Optional[tuple] = None

    # -- binding & epochs -----------------------------------------------------
    def bind(self, classifier) -> None:
        """Attach to a classifier: track its mutation epochs from now on."""
        self._classifier = classifier
        self._snapshot_epochs()

    def unbind(self) -> None:
        """Detach from the classifier (the cache is being discarded)."""
        self._classifier = None
        self._engine_marks.clear()
        self._filter_mark = None

    def _snapshot_epochs(self) -> None:
        classifier = self._classifier
        if classifier is None:
            return
        for name in DIMENSIONS:
            engine = classifier.engines[name]
            self._engine_marks[name] = (engine, engine.mutation_epoch)
        rule_filter = classifier.rule_filter
        self._filter_mark = (rule_filter, rule_filter.mutation_epoch)

    def _validate_epochs(self) -> None:
        """Wholesale-flush if any mutation epoch moved outside a tracked commit.

        Control-plane commits re-mark epochs via :meth:`note_commit` after
        their surgical drop, so this safety net only fires for untracked
        mutations (direct ``install_rule`` / ``remove_rule`` / ``reconfigure``
        calls) — where flushing everything is the only safe answer.
        """
        classifier = self._classifier
        if classifier is None:
            return
        stale = False
        for name in DIMENSIONS:
            engine = classifier.engines[name]
            if self._engine_marks.get(name) != (engine, engine.mutation_epoch):
                stale = True
                break
        if not stale:
            rule_filter = classifier.rule_filter
            stale = self._filter_mark != (rule_filter, rule_filter.mutation_epoch)
        if stale:
            self.invalidate()
            self._snapshot_epochs()

    # -- serving --------------------------------------------------------------
    def classify_batch(
        self,
        packets: Sequence[PacketHeader],
        backend: Callable[[Sequence[PacketHeader]], BatchResult],
    ) -> BatchResult:
        """Serve ``packets``, resolving misses through ``backend`` in order.

        Hits replay the cached :class:`~repro.core.result.Classification`
        (decision and cost record as captured at install time — exactly what
        a hardware flow table would do).  The first packet of a not-resident
        flow is a miss and *installs* the flow; later packets of the same
        flow — within this batch or in later ones — are hits.  Misses are
        deduplicated per flow, resolved through ``backend`` in first-miss
        order, and installed at the tick their first packet was observed.
        """
        self._validate_epochs()
        entries = self._entries
        get = entries.get
        move_to_end = entries.move_to_end
        pack = _HEADER_STRUCT.pack
        policy = self.policy
        idle = self.idle_timeout
        hard = self.hard_timeout
        hybrid = policy == "hybrid"
        now = self.now
        hits = 0
        misses = 0
        results: List[Optional[Classification]] = []
        append = results.append
        # Flows first seen (or re-installed after expiry) in this batch:
        # key -> [installed, last_hit, hits, budget], resolved once through
        # the backend and installed with their accumulated in-batch history.
        pending: Dict[bytes, list] = {}
        order: List[Tuple[bytes, PacketHeader]] = []
        fixups: List[Tuple[int, bytes]] = []
        for index, packet in enumerate(packets):
            now += 1
            key = pack(
                packet.src_ip, packet.dst_ip,
                packet.src_port, packet.dst_port, packet.protocol,
            )
            entry = get(key)
            if entry is not None:
                if policy == "idle":
                    expired = now - entry[_LAST_HIT] > idle
                elif policy == "hard":
                    expired = now - entry[_INSTALLED] > hard
                else:
                    expired = now - entry[_LAST_HIT] > entry[_BUDGET]
                if not expired:
                    entry[_LAST_HIT] = now
                    entry[_HITS] += 1
                    if hybrid:
                        budget = entry[_BUDGET] * 2
                        entry[_BUDGET] = budget if budget < hard else hard
                    move_to_end(key)
                    hits += 1
                    append(entry[_RECORD])
                    continue
                self._drop(key, entry)
                self.timeout_evictions += 1
            meta = pending.get(key)
            if meta is not None:
                # The flow was installed earlier in this batch: a hit on the
                # pending entry — unless it would have idled out in between.
                if policy == "idle":
                    expired = now - meta[1] > idle
                elif policy == "hard":
                    expired = now - meta[0] > hard
                else:
                    expired = now - meta[1] > meta[3]
                if not expired:
                    meta[1] = now
                    meta[2] += 1
                    if hybrid:
                        budget = meta[3] * 2
                        meta[3] = budget if budget < hard else hard
                    hits += 1
                else:
                    self.timeout_evictions += 1
                    misses += 1
                    meta[0] = meta[1] = now
                    meta[2] = 0
                    meta[3] = idle
            else:
                pending[key] = [now, now, 0, idle]
                order.append((key, packet))
                misses += 1
            append(None)
            fixups.append((index, key))
        self.now = now
        self.lookups += len(packets)
        self.hits += hits
        self.misses += misses
        if order:
            resolved = backend([packet for _, packet in order])
            records = {key: record for (key, _), record in zip(order, resolved)}
            for index, key in fixups:
                results[index] = records[key]
            for key, packet in order:
                meta = pending[key]
                self._install(key, packet, records[key], meta)
        return BatchResult(tuple(results))

    def prewarm(
        self,
        packets: Iterable[PacketHeader],
        backend: Callable[[Sequence[PacketHeader]], BatchResult],
    ) -> int:
        """Pre-resolve and install the distinct flows of ``packets``.

        Installs every not-yet-resident flow at the current tick without
        advancing the clock or touching the serving counters (``lookups`` /
        ``hits`` / ``misses``), so a prewarmed cache starts its serving
        stats clean.  Returns the number of entries installed.
        """
        self._validate_epochs()
        pack = _HEADER_STRUCT.pack
        entries = self._entries
        fresh: "OrderedDict[bytes, PacketHeader]" = OrderedDict()
        for packet in packets:
            key = pack(
                packet.src_ip, packet.dst_ip,
                packet.src_port, packet.dst_port, packet.protocol,
            )
            if key not in entries and key not in fresh:
                fresh[key] = packet
        if not fresh:
            return 0
        resolved = backend(list(fresh.values()))
        tick = self.now
        for (key, packet), record in zip(fresh.items(), resolved):
            self._install(key, packet, record, [tick, tick, 0, self.idle_timeout])
        return len(fresh)

    # -- installation & eviction ----------------------------------------------
    def _install(
        self, key: bytes, packet: PacketHeader, record: Classification, meta: list
    ) -> None:
        """Install one resolved flow; ``meta`` is [installed, last_hit, hits, budget]."""
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            # Already resident (e.g. prewarm raced a serving batch): refresh.
            entry[_RECORD] = record
            entry[_LAST_HIT] = meta[1]
            return
        if len(entries) >= self.capacity:
            self._evict_for_capacity()
        entries[key] = [record, packet, meta[0], meta[1], meta[2], meta[3]]
        self._by_rule.setdefault(record.rule_id, set()).add(key)
        self.insertions += 1

    def _drop(self, key: bytes, entry: list) -> None:
        del self._entries[key]
        rule_id = entry[_RECORD].rule_id
        keys = self._by_rule.get(rule_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_rule[rule_id]

    def _expired(self, entry: list, now: int) -> bool:
        if self.policy == "idle":
            return now - entry[_LAST_HIT] > self.idle_timeout
        if self.policy == "hard":
            return now - entry[_INSTALLED] > self.hard_timeout
        return now - entry[_LAST_HIT] > entry[_BUDGET]

    def _evict_for_capacity(self) -> None:
        """Free exactly one slot: expired entries first, then predictor/LRU.

        Examines a bounded window of :data:`EVICTION_SAMPLE` entries from
        the LRU end.  Any expired entry in the window is reclaimed as a
        timeout eviction; otherwise the predictor scores the window (or,
        with no predictor, the LRU head goes).
        """
        now = self.now
        window: List[Tuple[bytes, list]] = []
        for key, entry in self._entries.items():
            if self._expired(entry, now):
                self._drop(key, entry)
                self.timeout_evictions += 1
                return
            window.append((key, entry))
            if len(window) >= EVICTION_SAMPLE:
                break
        predictor = self.predictor
        if predictor is None:
            victim_key, victim_entry = window[0]
        else:
            victim_key, victim_entry = min(
                window,
                key=lambda item: predictor.score(
                    item[1][_HITS], item[1][_LAST_HIT], item[1][_INSTALLED], now
                ),
            )
        self._drop(victim_key, victim_entry)
        self.capacity_evictions += 1

    def expire(self) -> int:
        """Eagerly reclaim every expired entry; returns how many died."""
        now = self.now
        dead = [
            (key, entry) for key, entry in self._entries.items()
            if self._expired(entry, now)
        ]
        for key, entry in dead:
            self._drop(key, entry)
        self.timeout_evictions += len(dead)
        return len(dead)

    # -- invalidation ----------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every resident entry (wholesale flush)."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()
        self._by_rule.clear()

    def note_commit(self, delta: "Delta", dependency_index=None) -> None:
        """React to an applied control-plane delta.

        Surgically drops only the affected entries when that is
        decision-exact — the cached decision is the highest-priority match,
        so removing rule R only invalidates entries *decided by* R, and
        inserting R only invalidates entries whose flow R matches.  A
        ``reconfigure`` op, or any commit under the approximate
        ``first_label`` combiner (where an unrelated rule can change probe
        order for untouched flows), flushes wholesale instead.  Always
        re-marks the mutation epochs so the safety net in
        :meth:`_validate_epochs` does not double-flush.

        ``dependency_index`` (a pre-commit
        :class:`~repro.analysis.depindex.DependencyIndex`, passed by
        :class:`~repro.api.control.ClassifierControl` when it holds one)
        narrows an insert's candidate set from *every* resident entry to the
        flows decided by a rule overlapping the insert — plus the undecided
        misses — before the exact per-flow match test runs.
        """
        try:
            if self._entries:
                self._apply_commit(delta, dependency_index)
        finally:
            self._snapshot_epochs()

    def _apply_commit(self, delta: "Delta", dependency_index=None) -> None:
        classifier = self._classifier
        surgical = classifier is not None and (
            classifier.config.combiner_mode.value == "cross_product"
        )
        if surgical:
            for op in delta:
                if op.kind == "reconfigure":
                    surgical = False
                    break
        if not surgical:
            self.invalidate()
            return
        dropped = 0
        for op in delta:
            if op.kind == "remove":
                for key in tuple(self._by_rule.get(op.rule_id, ())):
                    self._drop(key, self._entries[key])
                    dropped += 1
            elif op.kind == "insert":
                rule = op.rule
                entries = self._entries
                if dependency_index is not None:
                    # If the inserted rule matches a cached flow, the flow's
                    # deciding rule shares that header with it (or the flow
                    # was an undecided miss) — so only entries decided by an
                    # overlapping rule, plus the misses, can change decision.
                    candidates = set(self._by_rule.get(None, ()))
                    for rule_id in dependency_index.overlapping(rule):
                        candidates.update(self._by_rule.get(rule_id, ()))
                    victims = [
                        key for key in candidates
                        if key in entries and rule.matches(entries[key][_PACKET])
                    ]
                else:
                    victims = [
                        key for key, entry in entries.items()
                        if rule.matches(entry[_PACKET])
                    ]
                for key in victims:
                    self._drop(key, entries[key])
                dropped += len(victims)
        self.surgical_drops += dropped

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Counters plus configuration, with the hit rate pre-derived."""
        lookups = self.lookups
        return {
            "policy": self.policy,
            "capacity": self.capacity,
            "idle_timeout": self.idle_timeout,
            "hard_timeout": self.hard_timeout,
            "predictor": self.predictor.name if self.predictor is not None else None,
            "entries": len(self._entries),
            "lookups": lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "insertions": self.insertions,
            "timeout_evictions": self.timeout_evictions,
            "capacity_evictions": self.capacity_evictions,
            "evictions": self.timeout_evictions + self.capacity_evictions,
            "surgical_drops": self.surgical_drops,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowCache(policy={self.policy!r}, capacity={self.capacity}, "
            f"entries={len(self._entries)}, hits={self.hits}, misses={self.misses})"
        )

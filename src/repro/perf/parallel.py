"""Multi-pipeline deployment model: trace sharding over classifier replicas.

The paper's hardware sustains line rate because the pipeline accepts a new
packet every cycle; a software deployment reaches for the same headroom by
running several classifier *replicas* side by side behind a load balancer.
:class:`ParallelSession` models exactly that: a worker pool of N independent
replicas (each holding the full rule set), a round-robin shard of the input
trace per replica, and one merged :class:`~repro.api.session.SessionStats`
over the whole deployment.

Replicas share nothing, so workers are free of cross-talk by construction;
the pool uses threads (each replica classifies its own shard) and the merged
statistics are exact — counts sum, averages are packet-weighted, worst cases
take the maximum across replicas.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence

from repro.api.session import ClassificationSession, SessionStats
from repro.exceptions import ConfigurationError
from repro.rules.packet import PacketHeader

__all__ = ["ParallelSession"]


class ParallelSession:
    """Shard traces across replica classifiers and merge their statistics."""

    def __init__(self, replicas: Sequence, chunk_size: int = 256) -> None:
        if not replicas:
            raise ConfigurationError("a parallel session needs at least one replica")
        self.sessions: List[ClassificationSession] = [
            ClassificationSession(replica, chunk_size=chunk_size) for replica in replicas
        ]

    @classmethod
    def from_factory(
        cls, factory: Callable[[], object], workers: int, chunk_size: int = 256
    ) -> "ParallelSession":
        """Build ``workers`` replicas by calling ``factory`` once per worker."""
        if workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        return cls([factory() for _ in range(workers)], chunk_size=chunk_size)

    @property
    def workers(self) -> int:
        """Number of replica pipelines."""
        return len(self.sessions)

    # -- streaming -----------------------------------------------------------
    def _shard(self, packets: Iterable[PacketHeader]) -> List[List[PacketHeader]]:
        """Round-robin the trace over the replicas (a rotating load balancer)."""
        trace = packets if isinstance(packets, list) else list(packets)
        return [trace[index :: self.workers] for index in range(self.workers)]

    def run(self, packets: Iterable[PacketHeader]) -> SessionStats:
        """Shard one trace across the worker pool and return the merged stats."""
        shards = self._shard(packets)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(session.run, shard)
                for session, shard in zip(self.sessions, shards)
            ]
            for future in futures:
                future.result()
        return self.stats()

    def reset(self) -> None:
        """Zero every replica's aggregate counters."""
        for session in self.sessions:
            session.reset()

    # -- aggregation ---------------------------------------------------------
    def stats(self) -> SessionStats:
        """Merged statistics over everything streamed through the pool."""
        return SessionStats.merge([session.stats() for session in self.sessions])

    def __repr__(self) -> str:
        return f"ParallelSession(workers={self.workers})"

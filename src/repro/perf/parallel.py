"""Multi-pipeline deployment model: trace sharding over classifier replicas.

The paper's hardware sustains line rate because the pipeline accepts a new
packet every cycle; a software deployment reaches for the same headroom by
running several classifier *replicas* side by side behind a load balancer.
:class:`ParallelSession` models exactly that: a pool of N independent
replicas (each holding the full rule set), bounded chunks of the input trace
dispatched round-robin across them, and one merged
:class:`~repro.api.session.SessionStats` over the whole deployment.

Two backends share the same dispatch loop:

* ``backend="thread"`` — each replica lives in this process behind its own
  single-lane thread.  Replicas share nothing, but the GIL serialises the
  actual CPU work, so this backend *models* the deployment (and overlaps any
  releases-the-GIL work) without real parallel speedup.
* ``backend="process"`` — each replica lives in its own worker process,
  built there from a **picklable** factory (see :class:`ReplicaSpec`).  This
  is true CPU parallelism: N cores classify N shards concurrently.

The process backend moves chunks over one of two **transports**:

* ``transport="packed"`` — the zero-copy wire format of
  :mod:`repro.perf.transport`: chunks are packed into fixed-width 104-bit
  header words inside a shared-memory ring, and only a tiny
  ``(segment, offset, count)`` descriptor crosses the process boundary.  No
  :class:`~repro.rules.packet.PacketHeader` object is ever pickled.
* ``transport="pickle"`` — the plain object transport: each chunk is pickled
  into the worker as a list of headers.
* ``transport="auto"`` (default) — packed when the platform grants shared
  memory (:func:`~repro.perf.transport.shared_memory_available`), pickle
  otherwise.  The resolved choice is exposed as
  :attr:`ParallelSession.transport`.

Compact per-chunk counters come back pickled on both transports; for
:meth:`ParallelSession.feed` the classifications return in the compact
palette-plus-indices wire form (no ``detail`` record, one entry per distinct
classification) and rehydrate through a parent-side interning memo.

**Live updates**: the pool carries the transactional control plane of
:mod:`repro.api.control` — :meth:`ParallelSession.begin` opens a transaction
whose commit broadcasts the delta to every replica, and
:meth:`ParallelSession.apply` re-broadcasts a delta/commit staged elsewhere.
On the thread backend the delta applies directly on each replica between
that replica's chunks (under the dispatch lock); on the process backend it
crosses as a message over the existing executor transport alongside the
chunk descriptors.  A replica that fails a delta triggers a session-wide
rollback (each committed replica replays the inverse delta), so the pool
never serves divergent rule programs.

Asynchronous front-end: :meth:`ParallelSession.afeed` accepts an async (or
plain) iterable of packets — a live capture — and yields input-order
:class:`~repro.core.result.Classification` records as head-of-line chunks
complete, applying backpressure through the same bounded in-flight window as
the synchronous dispatch; :meth:`ParallelSession.arun` is its stats-only
twin.  Neither blocks the event loop while workers classify.

Streaming contract: the input trace is consumed incrementally — at most
``workers x 2`` chunks are in flight plus the one being filled — so
arbitrarily long streams run in constant memory, exactly like
:meth:`ClassificationSession.run <repro.api.session.ClassificationSession.run>`
(:meth:`ParallelSession.feed` is the exception: it returns every result, so
it necessarily materialises them).

Failure contract: statistics commit only when a run completes.  If any
replica raises mid-run (a poisoned packet, a broken worker), outstanding
chunks are cancelled, the shared-memory ring (if any) is released, the
original error propagates, and the session's committed counters remain
exactly what they were before the failed
:meth:`ParallelSession.run`/:meth:`ParallelSession.feed` call — a failed run
contributes nothing to :meth:`ParallelSession.stats`.  Abandoning an
:meth:`ParallelSession.afeed` generator mid-stream counts as a failed run.

Merged statistics are exact — counts sum, averages are packet-weighted,
worst cases take the maximum across replicas — and
:meth:`ParallelSession.feed` returns classifications in input order that are
bit-identical to a single replica classifying the whole trace.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pickle
import threading
from array import array
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.control import CommitResult, ControlPlane, Delta, RuleProgram, Txn, TxnOp
from repro.api.registry import create_classifier
from repro.api.session import (
    BatchCounters,
    RunningCounters,
    SessionStats,
    measure_results,
)
from repro.core.result import BatchResult, Classification
from repro.exceptions import ConfigurationError, UpdateError
from repro.perf.lru import BoundedCache
from repro.perf.transport import (
    HEADER_BYTES,
    PackedChunk,
    SharedChunkRing,
    read_chunk,
    shared_memory_available,
)
from repro.rules.packet import PacketHeader
from repro.rules.ruleset import RuleSet

__all__ = ["ParallelSession", "ReplicaSpec", "merge_flow_cache_stats"]


def merge_flow_cache_stats(
    parts: Sequence[Optional[Dict[str, object]]],
) -> Optional[Dict[str, object]]:
    """Merge per-replica (or per-switch) flow-cache stat dicts into one.

    Counters sum, ``hit_rate`` is re-derived from the summed counters,
    configuration fields come from the first part (pools are homogeneous),
    and ``replicas`` sums the parts' own replica counts (a raw per-worker
    dict counts as one) — so merging already-merged dicts nests correctly,
    which is how the fabric combines per-switch sessions.  Returns ``None``
    for an empty sequence.
    """
    parts = [part for part in parts if part is not None]
    if not parts:
        return None
    merged = dict(parts[0])
    summed = (
        "entries", "lookups", "hits", "misses", "insertions",
        "timeout_evictions", "capacity_evictions", "evictions",
        "surgical_drops", "invalidations",
    )
    for key in summed:
        merged[key] = sum(part[key] for part in parts)
    merged["hit_rate"] = (
        merged["hits"] / merged["lookups"] if merged["lookups"] else 0.0
    )
    merged["replicas"] = sum(part.get("replicas", 1) for part in parts)
    return merged

#: Bound of the parent-side Classification interning memo used to rehydrate
#: compact process-backend feed() results (see :class:`_CompactChunk`).
RESULT_MEMO_LIMIT = 1 << 20

#: Chunks allowed in flight per worker (dispatch back-pressure bound).
PIPELINE_DEPTH = 2

_BACKENDS = ("thread", "process")
_TRANSPORTS = ("auto", "packed", "pickle")


@dataclass(frozen=True)
class ReplicaSpec:
    """Picklable recipe for building one classifier replica in a worker.

    Process-backend workers cannot receive closures, so the replica factory
    travels as data: the registry ``name``, the ``ruleset`` and the factory
    ``options`` (e.g. ``{"fast": True, "vectorized": True}``).  Calling the
    spec builds the replica via
    :func:`~repro.api.registry.create_classifier`, so it doubles as a plain
    factory for the thread backend too.
    """

    name: str
    ruleset: RuleSet
    options: Dict[str, object] = field(default_factory=dict)

    def __call__(self):
        return create_classifier(self.name, self.ruleset, **self.options)


class _ChunkOutcome(NamedTuple):
    """Compact, picklable outcome of one classified chunk."""

    counters: BatchCounters
    results: Optional[object]  # Tuple[Classification, ...] or _CompactChunk


class _CompactChunk(NamedTuple):
    """Wire form of one chunk's classifications on the process backend.

    Traces are dominated by repeated flows, so a chunk's classifications
    collapse to a small *palette* of distinct records (``detail`` stripped —
    it is excluded from :class:`~repro.core.result.Classification` equality
    and would drag the whole per-packet ``LookupResult``/``CycleReport``
    graph through pickle) plus one palette index per packet.  The parent
    rehydrates through its session-wide interning memo, so records repeated
    across chunks and workers share one parent-side object.
    """

    palette: Tuple[Classification, ...]
    indices: array  # array("L"): one palette index per packet


def _compact_results(results: Tuple[Classification, ...]) -> _CompactChunk:
    """Fold a chunk's classifications into their palette + indices wire form.

    ``Classification`` is a frozen dataclass whose equality and hash span
    exactly the classification substance (``detail`` carries
    ``compare=False``), so the records themselves key the palette — two
    records equal sans detail share one palette slot.
    """
    palette: List[Classification] = []
    slots: Dict[Classification, int] = {}
    indices = array("L")
    append_index = indices.append
    for record in results:
        slot = slots.get(record)
        if slot is None:
            slot = len(palette)
            slots[record] = slot
            palette.append(
                record if record.detail is None else dataclasses.replace(record, detail=None)
            )
        append_index(slot)
    return _CompactChunk(palette=tuple(palette), indices=indices)


def _measure_chunk(batch: BatchResult, retain: bool, compact: bool = False) -> _ChunkOutcome:
    """Fold one chunk's batch through the shared session accounting."""
    results: Optional[object] = None
    if retain:
        results = _compact_results(batch.results) if compact else batch.results
    return _ChunkOutcome(counters=measure_results(batch.results), results=results)


class _Inflight(NamedTuple):
    """One dispatched chunk awaiting absorption."""

    future: object
    worker_index: int
    chunk_index: int
    #: Ring slot carrying the packed chunk, or None on the pickle/inline path.
    slot: Optional[int]


async def _as_async_iterable(packets) -> AsyncIterator[PacketHeader]:
    """Adapt a plain iterable to async iteration (async input passes through)."""
    if hasattr(packets, "__aiter__"):
        async for packet in packets:
            yield packet
    else:
        for packet in packets:
            yield packet


def _split_packed(chunk: PackedChunk, size: int):
    """Re-slice an oversized pre-packed chunk to the dispatch chunk size.

    Packed words are fixed-width, so slicing is pure byte arithmetic — the
    headers are never decoded.
    """
    if chunk.count <= size:
        yield chunk
        return
    for start in range(0, chunk.count, size):
        count = min(size, chunk.count - start)
        yield PackedChunk(
            chunk.data[start * HEADER_BYTES: (start + count) * HEADER_BYTES], count
        )


def _mixed_stream_error() -> ConfigurationError:
    return ConfigurationError(
        "mixed input stream: feed either packet headers or PackedChunk "
        "words, not both in one run"
    )


def _iter_dispatch_chunks(packets, size: int):
    """Chunk an input stream for dispatch, whichever shape it arrives in.

    A stream of packet headers chunks exactly like
    :func:`~repro.api.session.iter_chunks`; a stream of pre-packed
    :class:`~repro.perf.transport.PackedChunk` words (the pcap front-end,
    :func:`~repro.perf.transport.iter_packed_chunks`) passes through without
    decoding — re-sliced by byte arithmetic when a chunk exceeds the
    dispatch size.  The first item fixes the shape; mixing is an error.
    """
    packed: Optional[bool] = None
    chunk: List[PacketHeader] = []
    for item in packets:
        if packed is None:
            packed = isinstance(item, PackedChunk)
        if packed:
            if not isinstance(item, PackedChunk):
                raise _mixed_stream_error()
            yield from _split_packed(item, size)
        else:
            if isinstance(item, PackedChunk):
                raise _mixed_stream_error()
            chunk.append(item)
            if len(chunk) >= size:
                yield chunk
                chunk = []
    if chunk:
        yield chunk


async def _aiter_dispatch_chunks(packets, size: int):
    """Async twin of :func:`_iter_dispatch_chunks` (same shapes, same rules)."""
    packed: Optional[bool] = None
    chunk: List[PacketHeader] = []
    async for item in _as_async_iterable(packets):
        if packed is None:
            packed = isinstance(item, PackedChunk)
        if packed:
            if not isinstance(item, PackedChunk):
                raise _mixed_stream_error()
            for piece in _split_packed(item, size):
                yield piece
        else:
            if isinstance(item, PackedChunk):
                raise _mixed_stream_error()
            chunk.append(item)
            if len(chunk) >= size:
                yield chunk
                chunk = []
    if chunk:
        yield chunk


# ---------------------------------------------------------------------------
# Process-backend worker plumbing (module-level: must be picklable by name).
# ---------------------------------------------------------------------------

_WORKER_REPLICA = None


def _process_worker_initialize(factory) -> None:
    """Build this worker process's replica once, at pool start."""
    global _WORKER_REPLICA
    _WORKER_REPLICA = factory()


def _process_worker_info() -> Tuple[str, int]:
    return _WORKER_REPLICA.name, _WORKER_REPLICA.memory_bits()


def _process_worker_details() -> Dict[str, object]:
    return dict(_WORKER_REPLICA.stats().details)


def _process_worker_classify(chunk, retain: bool) -> _ChunkOutcome:
    if isinstance(chunk, PackedChunk):  # pre-packed input on the pickle transport
        chunk = chunk.headers()
    return _measure_chunk(_WORKER_REPLICA.classify_batch(chunk), retain, compact=True)


def _process_worker_classify_packed(
    segment: str, offset: int, count: int, retain: bool
) -> _ChunkOutcome:
    """Decode one packed chunk from the shared ring and classify it."""
    headers = read_chunk(segment, offset, count)
    return _measure_chunk(_WORKER_REPLICA.classify_batch(headers), retain, compact=True)


def _process_worker_apply_delta(delta: Delta) -> CommitResult:
    """Apply one control-plane delta to this worker's replica (all-or-nothing)."""
    return _WORKER_REPLICA.control.apply_delta(delta)


def _process_worker_flow_stats() -> Optional[Dict[str, object]]:
    """This replica's flow-cache counter snapshot (None without a cache)."""
    cache = getattr(_WORKER_REPLICA, "flow_cache", None)
    return cache.stats() if cache is not None else None


def _process_worker_program() -> RuleProgram:
    return _WORKER_REPLICA.control.program()


class _ThreadWorker:
    """One replica behind a single-lane thread (serial per-replica order)."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self._executor: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=1)

    def prefetch_info(self) -> None:  # thread replicas answer synchronously
        pass

    def info(self) -> Tuple[str, int]:
        return self.replica.name, self.replica.memory_bits()

    def cached_info(self) -> Optional[Tuple[str, int]]:
        return self.info()  # always local, no pool needed

    def details(self) -> Dict[str, object]:
        return dict(self.replica.stats().details)

    def flow_stats(self) -> Optional[Dict[str, object]]:
        cache = getattr(self.replica, "flow_cache", None)
        return cache.stats() if cache is not None else None

    def submit(self, chunk, retain):
        return self._executor.submit(self._classify, chunk, retain)

    def submit_delta(self, delta: Delta):
        """Enqueue a control-plane delta behind this replica's pending chunks.

        The single-lane executor *is* the dispatch serialisation: the delta
        applies after every chunk already submitted to this replica and
        before any chunk submitted later — a direct apply between chunks.
        """
        return self._executor.submit(self.replica.control.apply_delta, delta)

    def program(self) -> RuleProgram:
        return self.replica.control.program()

    def _classify(self, chunk, retain) -> _ChunkOutcome:
        if isinstance(chunk, PackedChunk):  # pre-packed input, decoded in-lane
            chunk = chunk.headers()
        return _measure_chunk(self.replica.classify_batch(chunk), retain)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


class _ProcessWorker:
    """One replica in its own worker process, built there from the factory."""

    def __init__(self, factory) -> None:
        self.factory = factory
        self._executor: Optional[ProcessPoolExecutor] = None
        self._info: Optional[Tuple[str, int]] = None
        self._info_future = None
        #: True once any task was submitted — the worker process is warm and
        #: its replica built, so an info round-trip at shutdown is cheap.
        self._used = False

    def start(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_process_worker_initialize,
                initargs=(self.factory,),
            )

    def prefetch_info(self) -> None:
        """Kick off worker bring-up + info without blocking.

        Submitting the info task forces the process to spawn and build its
        replica; prefetching on every worker before collecting any result is
        what makes pool bring-up run in parallel instead of one replica
        build after another.
        """
        if self._info is None and self._info_future is None:
            self.start()
            self._used = True
            self._info_future = self._executor.submit(_process_worker_info)

    def info(self) -> Tuple[str, int]:
        if self._info is None:
            self.prefetch_info()
            self._info = self._info_future.result()
            self._info_future = None
        return self._info

    def cached_info(self) -> Optional[Tuple[str, int]]:
        return self._info

    def details(self) -> Dict[str, object]:
        self.start()
        self._used = True
        return self._executor.submit(_process_worker_details).result()

    def submit(self, chunk, retain):
        self._used = True
        return self._executor.submit(_process_worker_classify, chunk, retain)

    def submit_packed(self, descriptor, retain):
        self._used = True
        return self._executor.submit(
            _process_worker_classify_packed,
            descriptor.segment,
            descriptor.offset,
            descriptor.count,
            retain,
        )

    def submit_delta(self, delta: Delta):
        """Ship a control-plane delta to the worker process.

        The delta message travels over the executor's task channel alongside
        the chunk descriptors; the worker's single lane applies it after the
        chunks already queued and before anything submitted later.
        """
        self._used = True
        return self._executor.submit(_process_worker_apply_delta, delta)

    def program(self) -> RuleProgram:
        self.start()
        self._used = True
        return self._executor.submit(_process_worker_program).result()

    def flow_stats(self) -> Optional[Dict[str, object]]:
        self.start()
        self._used = True
        return self._executor.submit(_process_worker_flow_stats).result()

    def shutdown(self) -> None:
        if self._executor is not None:
            if self._info is None and self._used:
                # Harvest the replica info while the worker still exists, so
                # committed statistics stay readable after close() even when
                # only feed()/afeed() ran (they never call info()).  A broken
                # or poisoned worker simply leaves the info unknown.
                try:
                    future = self._info_future or self._executor.submit(
                        _process_worker_info
                    )
                    self._info = future.result(timeout=30)
                except Exception:
                    pass
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._info_future = None


class _SessionControl(ControlPlane):
    """Control plane of a replica pool: commits broadcast to every replica.

    Obtained as :attr:`ParallelSession.control`; a transaction committed
    against it lands on **all** replicas with all-or-nothing semantics
    session-wide — if any replica rejects the delta, the replicas that
    already committed replay the inverse delta (the journalled rollback each
    per-replica commit reports), so the pool never serves divergent rule
    programs.
    """

    def __init__(self, session: "ParallelSession") -> None:
        super().__init__()
        self._session = session

    def program(self) -> RuleProgram:
        """Snapshot of replica 0's rule program, stamped with the pool version.

        Replicas are kept rule-identical by the broadcast commit path, so any
        replica's program is representative; on the process backend the
        worker reports it (starting the pool if needed).
        """
        program = self._session._replica_program()
        return dataclasses.replace(program, version=self._version)

    def _apply(self, delta: Delta) -> Tuple[List[object], List[TxnOp]]:
        return self._session._broadcast_delta(delta)


class ParallelSession:
    """Shard traces across replica classifiers and merge their statistics.

    ``ParallelSession(replicas)`` runs the given replica instances on the
    thread backend; :meth:`from_factory` builds the replicas (``factory`` per
    worker) and selects the backend and transport.  The process backend
    requires a picklable factory — use :class:`ReplicaSpec`.

    ``transport`` selects how the process backend ships chunks to workers
    (``"auto"``/``"packed"``/``"pickle"``, see the module docstring); the
    thread backend hands chunks over in-process and only accepts the default
    ``"auto"`` (exposed as :attr:`transport` ``== "inline"``).

    Worker pools (threads or processes) start lazily on first use and stay
    alive across runs; call :meth:`close` (or use the session as a context
    manager) to release them.  A closed session is terminal: further
    :meth:`run`/:meth:`feed`/:meth:`arun`/:meth:`afeed` calls raise
    :class:`~repro.exceptions.ConfigurationError`.  See the module docstring
    for the streaming and failure contracts.
    """

    def __init__(
        self,
        replicas: Optional[Sequence] = None,
        chunk_size: int = 256,
        *,
        backend: str = "thread",
        factory: Optional[Callable[[], object]] = None,
        workers: Optional[int] = None,
        transport: str = "auto",
    ) -> None:
        if chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown parallel backend {backend!r}; choose from {_BACKENDS}"
            )
        if transport not in _TRANSPORTS:
            raise ConfigurationError(
                f"unknown chunk transport {transport!r}; choose from {_TRANSPORTS}"
            )
        self.chunk_size = chunk_size
        self.backend = backend
        self._ring: Optional[SharedChunkRing] = None
        #: True while a dispatch loop holds the cached ring (interleaved
        #: loops then build private rings, see :meth:`_acquire_ring`).
        self._ring_busy = False
        self._closed = False
        #: Serialises chunk submission against control-plane delta broadcast
        #: so a delta lands at one consistent point of the dispatch sequence.
        self._dispatch_lock = threading.Lock()
        #: Parent-side interning memo rehydrating compact process-backend
        #: feed() results (records repeated across chunks share one object).
        self._result_memo = BoundedCache(RESULT_MEMO_LIMIT)
        self._control: Optional[_SessionControl] = None
        if backend == "thread":
            if transport != "auto":
                raise ConfigurationError(
                    "the thread backend hands chunks over in-process; "
                    "transport='packed'/'pickle' only applies to backend='process'"
                )
            #: Resolved chunk transport: "inline" (thread backend), or
            #: "packed"/"pickle" on the process backend.
            self.transport = "inline"
            if replicas is None:
                if factory is None or workers is None:
                    raise ConfigurationError(
                        "thread backend needs replicas (or a factory with a worker count)"
                    )
                replicas = [factory() for _ in range(workers)]
            replicas = list(replicas)
            if not replicas:
                raise ConfigurationError("a parallel session needs at least one replica")
            #: The replica instances (thread backend only; the process
            #: backend's replicas live in the worker processes).
            self.replicas = replicas
            self._workers: List = [_ThreadWorker(replica) for replica in replicas]
        else:
            if replicas is not None:
                raise ConfigurationError(
                    "process backend builds replicas inside the worker processes; "
                    "pass a picklable factory (e.g. ReplicaSpec) via from_factory()"
                )
            if factory is None or workers is None:
                raise ConfigurationError("process backend needs a factory and a worker count")
            if workers <= 0:
                raise ConfigurationError(f"worker count must be positive, got {workers}")
            try:
                pickle.dumps(factory)
            except Exception as exc:
                raise ConfigurationError(
                    "process backend needs a picklable replica factory "
                    f"(e.g. ReplicaSpec); {factory!r} is not: {exc}"
                ) from exc
            if transport == "packed" and not shared_memory_available():
                raise ConfigurationError(
                    "transport='packed' needs multiprocessing.shared_memory, "
                    "which this platform does not grant; use transport='auto' "
                    "to fall back to pickle gracefully"
                )
            if transport == "auto":
                transport = "packed" if shared_memory_available() else "pickle"
            self.transport = transport
            self.replicas = []
            self._workers = [_ProcessWorker(factory) for _ in range(workers)]
        self._committed = [RunningCounters() for _ in self._workers]

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[], object],
        workers: int,
        chunk_size: int = 256,
        backend: str = "thread",
        transport: str = "auto",
    ) -> "ParallelSession":
        """Build a ``workers``-replica session; ``factory`` makes one replica.

        On the thread backend the factory is called here, once per worker; on
        the process backend it is shipped (pickled) to each worker process
        and called there, so it must be picklable — :class:`ReplicaSpec`
        exists for exactly that.
        """
        if workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        if backend == "thread":
            return cls(
                [factory() for _ in range(workers)],
                chunk_size=chunk_size,
                transport=transport,
            )
        return cls(
            None,
            chunk_size=chunk_size,
            backend=backend,
            factory=factory,
            workers=workers,
            transport=transport,
        )

    @property
    def workers(self) -> int:
        """Number of replica pipelines."""
        return len(self._workers)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (the session is terminal)."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "parallel session is closed; create a new session to classify again"
            )

    # -- streaming -----------------------------------------------------------
    def run(self, packets: Iterable[PacketHeader]) -> SessionStats:
        """Shard one trace across the worker pool and return the merged stats.

        Consumes the trace incrementally (constant memory, any iterable) and
        retains nothing per packet.  The trace may also arrive *pre-packed*
        — an iterable of :class:`~repro.perf.transport.PackedChunk` words
        (the pcap front-end's native output,
        :func:`~repro.io.pcap.read_pcap_packed`) — in which case the packed
        transport copies each chunk's bytes straight into the ring, no
        header ever decoded parent-side.  Holds for :meth:`feed`,
        :meth:`arun` and :meth:`afeed` too.  On a replica failure, cancels
        the outstanding chunks, re-raises the replica's error and leaves the
        committed counters untouched (see the module failure contract).
        """
        self._execute(packets, retain=False)
        return self.stats()

    def feed(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Shard one trace and return its classifications in input order.

        The parallel twin of :meth:`ClassificationSession.feed
        <repro.api.session.ClassificationSession.feed>`: results are
        bit-identical to one replica classifying the trace alone (every
        replica holds the same rules), re-assembled in input order.  Unlike
        :meth:`run` this necessarily materialises the results.
        """
        return BatchResult(self._execute(packets, retain=True))

    async def afeed(
        self, packets
    ) -> AsyncIterator[Classification]:
        """Asynchronously stream packets through the pool, yielding in order.

        The asyncio front-end for live sources: ``packets`` is an async
        iterable (a capture loop, a socket reader — plain iterables are
        adapted too), and classifications are yielded in input order as
        head-of-line chunks complete.  Backpressure is the same bounded
        in-flight chunk window as the synchronous dispatch: when the window
        is full, the producer is simply not pulled until the oldest chunk
        has been absorbed — the event loop stays free while workers
        classify.

        Statistics commit into :meth:`stats` only when the stream is
        consumed to the end; abandoning the generator (``break``/``aclose``)
        or a replica failure aborts the run exactly like :meth:`run`.
        """
        stream = self._astream(packets, retain=True)
        try:
            async for chunk_results in stream:
                for result in chunk_results:
                    yield result
        finally:
            # Deterministic cleanup: closing this generator must abort the
            # dispatch loop now (cancel chunks, release the ring), not
            # whenever the garbage collector finalises the inner generator.
            await stream.aclose()

    async def arun(self, packets) -> SessionStats:
        """Asynchronously shard one (async) iterable; return the merged stats.

        The stats-only twin of :meth:`afeed`: retains nothing per packet, so
        an arbitrarily long live feed runs in constant memory.
        """
        async for _ in self._astream(packets, retain=False):
            pass
        return self.stats()

    # -- dispatch core -------------------------------------------------------
    def _use_packed(self) -> bool:
        return self.transport == "packed"

    def _new_ring(self) -> SharedChunkRing:
        return SharedChunkRing(
            slots=len(self._workers) * PIPELINE_DEPTH,
            headers_per_slot=self.chunk_size,
        )

    def _acquire_ring(self) -> Optional[SharedChunkRing]:
        """Claim a ring for one dispatch loop (None on non-packed transports).

        The session keeps one ring warm across sequential runs; when dispatch
        loops interleave (a ``feed()`` issued while an ``afeed()`` is
        suspended mid-stream), each extra loop gets its own private ring —
        slot accounting is per loop, so loops never starve or unlink each
        other's segments.
        """
        if not self._use_packed():
            return None
        if not self._ring_busy:
            if self._ring is None or self._ring.closed:
                self._ring = self._new_ring()
            self._ring_busy = True
            return self._ring
        return self._new_ring()

    def _return_ring(self, ring: Optional[SharedChunkRing], failed: bool) -> None:
        """Give a dispatch loop's ring back (unlink it if private or poisoned)."""
        if ring is None:
            return
        if ring is self._ring:
            self._ring_busy = False
            if failed:
                self._release_ring()
        else:
            ring.close()

    def _release_ring(self) -> None:
        if self._ring is not None:
            self._ring.close()
            self._ring = None
        self._ring_busy = False

    @staticmethod
    def _release_slot(ring: Optional[SharedChunkRing], slot: Optional[int]) -> None:
        if slot is not None and ring is not None and not ring.closed:
            ring.release(slot)

    def _submit(
        self,
        chunk,
        chunk_index: int,
        retain: bool,
        ring: Optional[SharedChunkRing],
    ) -> _Inflight:
        """Submit one chunk round-robin over the configured transport."""
        # Guards a dispatch loop resumed after close() (e.g. a suspended
        # afeed() generator): the terminal-close contract promises a clean
        # session-closed error, not an AttributeError from a dead executor.
        self._check_open()
        worker_index = chunk_index % len(self._workers)
        worker = self._workers[worker_index]
        slot = None
        # The dispatch lock orders this submission against any concurrent
        # control-plane broadcast (see apply()): a delta either precedes or
        # follows this chunk on every replica lane, never splits it.
        with self._dispatch_lock:
            if ring is not None:
                slot = ring.acquire()
                if slot is None:  # unreachable under the bounded in-flight window
                    raise ConfigurationError(
                        "shared-memory ring exhausted; in-flight window exceeded slot count"
                    )
                future = worker.submit_packed(ring.write(slot, chunk), retain)
            else:
                future = worker.submit(chunk, retain)
        return _Inflight(future, worker_index, chunk_index, slot)

    def _execute(self, packets, retain: bool):
        self._check_open()
        for worker in self._workers:
            worker.start()
        pending = [RunningCounters() for _ in self._workers]
        retained: Optional[Dict[int, Tuple[Classification, ...]]] = {} if retain else None
        inflight: deque = deque()
        max_inflight = len(self._workers) * PIPELINE_DEPTH
        ring = self._acquire_ring()
        try:
            for chunk_index, chunk in enumerate(
                _iter_dispatch_chunks(packets, self.chunk_size)
            ):
                if len(inflight) >= max_inflight:
                    self._absorb_one(inflight, pending, retained, ring)
                inflight.append(self._submit(chunk, chunk_index, retain, ring))
            while inflight:
                self._absorb_one(inflight, pending, retained, ring)
        except BaseException:
            self._abort(inflight, ring)
            raise
        self._return_ring(ring, failed=False)
        # Only a fully successful run commits into the session counters.
        for committed, fresh in zip(self._committed, pending):
            committed.merge(fresh)
        if retained is None:
            return None
        ordered: List[Classification] = []
        for index in sorted(retained):
            ordered.extend(retained[index])
        return tuple(ordered)

    def _rehydrate(self, results) -> Optional[Tuple[Classification, ...]]:
        """Expand a compact wire chunk back into Classification records.

        Palette entries intern through the session-wide memo, so a record
        repeated across chunks (or workers) rehydrates to one shared object;
        thread-backend results pass through untouched.
        """
        if not isinstance(results, _CompactChunk):
            return results
        memo = self._result_memo
        interned = []
        for record in results.palette:
            known = memo.get(record)
            if known is None:
                memo.put(record, record)
                known = record
            interned.append(known)
        return tuple(interned[index] for index in results.indices)

    def _absorb_one(self, inflight, pending, retained, ring) -> None:
        self._check_open()
        entry = inflight.popleft()
        try:
            outcome = entry.future.result()
        finally:
            self._release_slot(ring, entry.slot)
        pending[entry.worker_index].absorb(outcome.counters)
        if retained is not None:
            retained[entry.chunk_index] = self._rehydrate(outcome.results)

    async def _astream(self, packets, retain: bool):
        """Async dispatch loop: yields each absorbed chunk's results in order.

        Chunks are dispatched exactly like :meth:`_execute`; absorption
        awaits the head-of-line future (``asyncio.wrap_future``) instead of
        blocking, so input order is preserved and the event loop keeps
        running while workers classify.
        """
        self._check_open()
        for worker in self._workers:
            worker.start()
        pending = [RunningCounters() for _ in self._workers]
        inflight: deque = deque()
        max_inflight = len(self._workers) * PIPELINE_DEPTH
        ring = self._acquire_ring()
        try:
            chunk_index = 0
            async for chunk in _aiter_dispatch_chunks(packets, self.chunk_size):
                if len(inflight) >= max_inflight:
                    yield await self._aabsorb_one(inflight, pending, retain, ring)
                inflight.append(self._submit(chunk, chunk_index, retain, ring))
                chunk_index += 1
            while inflight:
                yield await self._aabsorb_one(inflight, pending, retain, ring)
        except BaseException:
            await self._aabort(inflight, ring)
            raise
        self._return_ring(ring, failed=False)
        for committed, fresh in zip(self._committed, pending):
            committed.merge(fresh)

    async def _aabsorb_one(
        self, inflight, pending, retain: bool, ring
    ) -> Tuple[Classification, ...]:
        self._check_open()  # closed mid-stream: fail clean, not CancelledError
        entry = inflight.popleft()
        try:
            outcome = await asyncio.wrap_future(entry.future)
        finally:
            self._release_slot(ring, entry.slot)
        pending[entry.worker_index].absorb(outcome.counters)
        return self._rehydrate(outcome.results) if retain else ()

    def _abort(self, inflight, ring) -> None:
        """Cancel outstanding chunks, swallow late errors, retire this ring."""
        for entry in inflight:
            entry.future.cancel()
        for entry in inflight:
            if not entry.future.cancelled():
                try:
                    entry.future.result()
                except BaseException:
                    pass
        inflight.clear()
        self._return_ring(ring, failed=True)

    async def _aabort(self, inflight, ring) -> None:
        """Async twin of :meth:`_abort`: drains without blocking the event loop.

        An abandoned :meth:`afeed` or a replica failure must not stall every
        other asyncio task while up to the in-flight window of chunks finishes
        classifying, so the drain awaits the futures instead of blocking on
        ``result()``.
        """
        for entry in inflight:
            entry.future.cancel()
        for entry in inflight:
            if not entry.future.cancelled():
                try:
                    await asyncio.wrap_future(entry.future)
                except BaseException:
                    pass
        inflight.clear()
        self._return_ring(ring, failed=True)

    # -- control plane -------------------------------------------------------
    @property
    def control(self) -> _SessionControl:
        """The pool's transactional control plane (commits broadcast)."""
        if self._control is None:
            self._control = _SessionControl(self)
        return self._control

    def begin(self) -> Txn:
        """Open a transaction whose commit broadcasts to every replica."""
        self._check_open()
        return self.control.begin()

    def apply(self, source) -> CommitResult:
        """Apply a transaction/delta to every live replica, all-or-nothing.

        ``source`` may be an open :class:`~repro.api.control.Txn` (a
        free-standing one, or one opened via :meth:`begin`), a bare
        :class:`~repro.api.control.Delta`, or the
        :class:`~repro.api.control.CommitResult` of a commit made on a
        primary classifier (its delta is re-broadcast, which is how an
        updated primary propagates to a serving pool).

        Thread backend: the delta applies directly on each replica between
        that replica's chunks (the single-lane executor serialises it under
        the dispatch lock).  Process backend: the delta crosses as a message
        over the existing executor transport, alongside any in-flight chunk
        descriptors.  Either way a replica that fails the delta triggers a
        session-wide rollback — every replica that already committed replays
        the inverse delta — and the error propagates with nothing committed
        (see :meth:`_broadcast_delta` for the dispatch-window and
        label-numbering fine print).
        """
        self._check_open()
        if isinstance(source, Txn):
            if source._plane is self.control:
                return source.commit()
            if source._plane is not None:
                raise ConfigurationError(
                    "transaction belongs to another control plane; commit it "
                    "there and pass the CommitResult (or its delta) to apply()"
                )
            # A free-standing Txn stays the caller's: snapshot its staged ops
            # so the same transaction can roll out to several pools.
            source = source.delta()
        if isinstance(source, CommitResult):
            source = source.delta
        if not isinstance(source, Delta):
            raise ConfigurationError(
                f"apply() takes a Txn, Delta or CommitResult, got {type(source).__name__}"
            )
        return self.control.apply_delta(source)

    def _replica_program(self) -> RuleProgram:
        # Only replica 0 answers a program snapshot; no need to cold-start
        # the whole pool (a broadcast starts every worker itself).
        self._check_open()
        self._workers[0].start()
        return self._workers[0].program()

    def _broadcast_delta(self, delta: Delta) -> Tuple[List[object], List[TxnOp]]:
        """Ship one delta to every replica; roll back session-wide on failure.

        The dispatch lock is held for the **whole** broadcast — submission,
        result collection and any rollback — so every chunk of a concurrent
        run is classified either entirely before the delta or entirely after
        the broadcast resolved (committed everywhere or rolled back
        everywhere); no chunk can be dispatched into the uncertainty window.
        Workers drain their lanes without the lock, so waiting on the delta
        futures here cannot deadlock.

        After a rolled-back failure the pool's *rule programs* are identical
        again (nothing committed); the rolled-back replicas' internal label
        numbering may differ from before, exactly as after any
        remove-then-reinsert sequence (see
        :class:`~repro.api.control.ClassifierControl`).
        """
        self._check_open()  # a pre-close Txn must not resurrect worker pools
        for worker in self._workers:
            worker.start()
        with self._dispatch_lock:
            futures = [worker.submit_delta(delta) for worker in self._workers]
            commits: List[Tuple[int, CommitResult]] = []
            failures: List[Tuple[int, BaseException]] = []
            for index, future in enumerate(futures):
                try:
                    commits.append((index, future.result()))
                except BaseException as exc:
                    failures.append((index, exc))
            if not failures:
                first = commits[0][1]
                return list(first.results), list(first.inverse.ops)
            # All-or-nothing session-wide: undo the replicas that committed.
            rollback_errors: List[int] = []
            undo = [
                (index, self._workers[index].submit_delta(commit.inverse))
                for index, commit in commits
            ]
            for index, future in undo:
                try:
                    future.result()
                except BaseException:
                    rollback_errors.append(index)
        failed_index, error = failures[0]
        if rollback_errors:
            raise UpdateError(
                f"replica {failed_index} rejected the delta and replica(s) "
                f"{rollback_errors} failed the rollback; the pool may serve "
                "divergent rule programs — close the session"
            ) from error
        raise UpdateError(
            f"replica {failed_index} rejected the delta; every replica rolled "
            "back, nothing committed"
        ) from error

    def reset(self) -> None:
        """Zero every replica's committed aggregate counters."""
        for counters in self._committed:
            counters.reset()

    # -- aggregation ---------------------------------------------------------
    def stats(self) -> SessionStats:
        """Merged statistics over everything successfully run through the pool.

        On the process backend this may start the worker pool (the replica
        name and memory footprint are reported by the workers; bring-up runs
        in parallel across workers).  On a closed session the cached replica
        info is used instead — stats of a closed process-backend session
        that never ran are unavailable.
        """
        if self._closed:
            parts = []
            for worker, counters in zip(self._workers, self._committed):
                info = worker.cached_info()
                if info is None:
                    raise ConfigurationError(
                        "parallel session is closed and never reported replica "
                        "info; create a new session"
                    )
                parts.append(counters.to_stats(*info))
            return SessionStats.merge(parts)
        for worker in self._workers:
            worker.prefetch_info()
        parts = []
        for worker, counters in zip(self._workers, self._committed):
            name, memory_bits = worker.info()
            parts.append(counters.to_stats(name, memory_bits, flow=worker.flow_stats()))
        return SessionStats.merge(parts)

    def flow_cache_stats(self) -> Optional[Dict[str, object]]:
        """Merged flow-cache statistics across every replica.

        Counters (lookups / hits / misses / insertions / evictions /
        surgical drops / invalidations) and resident entries sum over the
        replicas; configuration fields (policy, per-replica capacity,
        timeouts, predictor) come from replica 0, since :meth:`from_factory`
        pools are homogeneous.  The merged ``hit_rate`` is re-derived from
        the summed counters.  Returns ``None`` when the replicas carry no
        flow cache.
        """
        self._check_open()
        return merge_flow_cache_stats([worker.flow_stats() for worker in self._workers])

    def replica_details(self) -> Dict[str, object]:
        """Engine-specific details of replica 0 (``ClassifierStats.details``).

        Representative of the deployment whenever the replicas are
        homogeneous (every :meth:`from_factory` pool); on the process
        backend the worker reports them (starting it if needed).
        """
        self._check_open()
        return self._workers[0].details()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pools down and release the shared-memory ring.

        Idempotent and terminal: processes exit, threads join, the packed
        transport's segment is unlinked (nothing lingers in ``/dev/shm``),
        and any later :meth:`run`/:meth:`feed`/:meth:`arun`/:meth:`afeed`
        raises :class:`~repro.exceptions.ConfigurationError`.  Committed
        statistics stay readable via :meth:`stats` where the replica info is
        already known.
        """
        self._closed = True
        for worker in self._workers:
            worker.shutdown()
        self._release_ring()

    def __enter__(self) -> "ParallelSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ParallelSession(workers={self.workers}, backend={self.backend}, "
            f"transport={self.transport})"
        )

"""Multi-pipeline deployment model: trace sharding over classifier replicas.

The paper's hardware sustains line rate because the pipeline accepts a new
packet every cycle; a software deployment reaches for the same headroom by
running several classifier *replicas* side by side behind a load balancer.
:class:`ParallelSession` models exactly that: a pool of N independent
replicas (each holding the full rule set), bounded chunks of the input trace
dispatched round-robin across them, and one merged
:class:`~repro.api.session.SessionStats` over the whole deployment.

Two backends share the same dispatch loop:

* ``backend="thread"`` — each replica lives in this process behind its own
  single-lane thread.  Replicas share nothing, but the GIL serialises the
  actual CPU work, so this backend *models* the deployment (and overlaps any
  releases-the-GIL work) without real parallel speedup.
* ``backend="process"`` — each replica lives in its own worker process,
  built there from a **picklable** factory (see :class:`ReplicaSpec`); shard
  chunks are pickled to the workers and compact per-chunk counters come
  back.  This is true CPU parallelism: N cores classify N shards
  concurrently.

Streaming contract: the input trace is consumed incrementally — at most
``workers x 2`` chunks are in flight plus the one being filled — so
arbitrarily long streams run in constant memory, exactly like
:meth:`ClassificationSession.run <repro.api.session.ClassificationSession.run>`
(:meth:`ParallelSession.feed` is the exception: it returns every result, so
it necessarily materialises them).

Failure contract: statistics commit only when a run completes.  If any
replica raises mid-run (a poisoned packet, a broken worker), outstanding
chunks are cancelled, the original error propagates, and the session's
committed counters remain exactly what they were before the failed
:meth:`ParallelSession.run`/:meth:`ParallelSession.feed` call — a failed run
contributes nothing to :meth:`ParallelSession.stats`.

Merged statistics are exact — counts sum, averages are packet-weighted,
worst cases take the maximum across replicas — and
:meth:`ParallelSession.feed` returns classifications in input order that are
bit-identical to a single replica classifying the whole trace.
"""

from __future__ import annotations

import pickle
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.api.registry import create_classifier
from repro.api.session import BatchCounters, SessionStats, measure_results
from repro.core.result import BatchResult, Classification
from repro.exceptions import ConfigurationError
from repro.rules.packet import PacketHeader
from repro.rules.ruleset import RuleSet

__all__ = ["ParallelSession", "ReplicaSpec"]

#: Chunks allowed in flight per worker (dispatch back-pressure bound).
PIPELINE_DEPTH = 2

_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ReplicaSpec:
    """Picklable recipe for building one classifier replica in a worker.

    Process-backend workers cannot receive closures, so the replica factory
    travels as data: the registry ``name``, the ``ruleset`` and the factory
    ``options`` (e.g. ``{"fast": True, "vectorized": True}``).  Calling the
    spec builds the replica via
    :func:`~repro.api.registry.create_classifier`, so it doubles as a plain
    factory for the thread backend too.
    """

    name: str
    ruleset: RuleSet
    options: Dict[str, object] = field(default_factory=dict)

    def __call__(self):
        return create_classifier(self.name, self.ruleset, **self.options)


class _ChunkOutcome(NamedTuple):
    """Compact, picklable outcome of one classified chunk."""

    counters: BatchCounters
    results: Optional[Tuple[Classification, ...]]


def _measure_chunk(batch: BatchResult, retain: bool) -> _ChunkOutcome:
    """Fold one chunk's batch through the shared session accounting."""
    return _ChunkOutcome(
        counters=measure_results(batch.results),
        results=batch.results if retain else None,
    )


class _Aggregate:
    """Running counters of one worker (the process-side mirror of a session)."""

    __slots__ = (
        "packets", "matched", "truncated", "chunks", "access_sum",
        "access_worst", "latency_sum", "latency_count", "latency_worst",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.packets = 0
        self.matched = 0
        self.truncated = 0
        self.chunks = 0
        self.access_sum = 0
        self.access_worst = 0
        self.latency_sum = 0
        self.latency_count = 0
        self.latency_worst = 0

    def absorb(self, counters: BatchCounters) -> None:
        self.packets += counters.packets
        self.matched += counters.matched
        self.truncated += counters.truncated
        self.chunks += 1
        self.access_sum += counters.access_sum
        self.access_worst = max(self.access_worst, counters.access_worst)
        self.latency_sum += counters.latency_sum
        self.latency_count += counters.latency_count
        self.latency_worst = max(self.latency_worst, counters.latency_worst)

    def merge(self, other: "_Aggregate") -> None:
        self.packets += other.packets
        self.matched += other.matched
        self.truncated += other.truncated
        self.chunks += other.chunks
        self.access_sum += other.access_sum
        self.access_worst = max(self.access_worst, other.access_worst)
        self.latency_sum += other.latency_sum
        self.latency_count += other.latency_count
        self.latency_worst = max(self.latency_worst, other.latency_worst)

    def to_stats(self, name: str, memory_bits: int) -> SessionStats:
        """Render as :class:`SessionStats` (same math as a session's ``stats``)."""
        return SessionStats(
            classifier=name,
            packets=self.packets,
            matched=self.matched,
            chunks=self.chunks,
            average_memory_accesses=(
                self.access_sum / self.packets if self.packets else 0.0
            ),
            worst_memory_accesses=self.access_worst,
            average_latency_cycles=(
                self.latency_sum / self.latency_count if self.latency_count else None
            ),
            worst_latency_cycles=self.latency_worst if self.latency_count else None,
            memory_bits=memory_bits,
            truncated_lookups=self.truncated,
        )


# ---------------------------------------------------------------------------
# Process-backend worker plumbing (module-level: must be picklable by name).
# ---------------------------------------------------------------------------

_WORKER_REPLICA = None


def _process_worker_initialize(factory) -> None:
    """Build this worker process's replica once, at pool start."""
    global _WORKER_REPLICA
    _WORKER_REPLICA = factory()


def _process_worker_info() -> Tuple[str, int]:
    return _WORKER_REPLICA.name, _WORKER_REPLICA.memory_bits()


def _process_worker_details() -> Dict[str, object]:
    return dict(_WORKER_REPLICA.stats().details)


def _process_worker_classify(chunk: List[PacketHeader], retain: bool) -> _ChunkOutcome:
    return _measure_chunk(_WORKER_REPLICA.classify_batch(chunk), retain)


class _ThreadWorker:
    """One replica behind a single-lane thread (serial per-replica order)."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self._executor: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=1)

    def prefetch_info(self) -> None:  # thread replicas answer synchronously
        pass

    def info(self) -> Tuple[str, int]:
        return self.replica.name, self.replica.memory_bits()

    def details(self) -> Dict[str, object]:
        return dict(self.replica.stats().details)

    def submit(self, chunk, retain):
        return self._executor.submit(self._classify, chunk, retain)

    def _classify(self, chunk, retain) -> _ChunkOutcome:
        return _measure_chunk(self.replica.classify_batch(chunk), retain)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


class _ProcessWorker:
    """One replica in its own worker process, built there from the factory."""

    def __init__(self, factory) -> None:
        self.factory = factory
        self._executor: Optional[ProcessPoolExecutor] = None
        self._info: Optional[Tuple[str, int]] = None
        self._info_future = None

    def start(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_process_worker_initialize,
                initargs=(self.factory,),
            )

    def prefetch_info(self) -> None:
        """Kick off worker bring-up + info without blocking.

        Submitting the info task forces the process to spawn and build its
        replica; prefetching on every worker before collecting any result is
        what makes pool bring-up run in parallel instead of one replica
        build after another.
        """
        if self._info is None and self._info_future is None:
            self.start()
            self._info_future = self._executor.submit(_process_worker_info)

    def info(self) -> Tuple[str, int]:
        if self._info is None:
            self.prefetch_info()
            self._info = self._info_future.result()
            self._info_future = None
        return self._info

    def details(self) -> Dict[str, object]:
        self.start()
        return self._executor.submit(_process_worker_details).result()

    def submit(self, chunk, retain):
        return self._executor.submit(_process_worker_classify, chunk, retain)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._info_future = None


class ParallelSession:
    """Shard traces across replica classifiers and merge their statistics.

    ``ParallelSession(replicas)`` runs the given replica instances on the
    thread backend; :meth:`from_factory` builds the replicas (``factory`` per
    worker) and selects the backend.  The process backend requires a
    picklable factory — use :class:`ReplicaSpec`.

    Worker pools (threads or processes) start lazily on first use and stay
    alive across runs; call :meth:`close` (or use the session as a context
    manager) to release them.  See the module docstring for the streaming
    and failure contracts.
    """

    def __init__(
        self,
        replicas: Optional[Sequence] = None,
        chunk_size: int = 256,
        *,
        backend: str = "thread",
        factory: Optional[Callable[[], object]] = None,
        workers: Optional[int] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown parallel backend {backend!r}; choose from {_BACKENDS}"
            )
        self.chunk_size = chunk_size
        self.backend = backend
        if backend == "thread":
            if replicas is None:
                if factory is None or workers is None:
                    raise ConfigurationError(
                        "thread backend needs replicas (or a factory with a worker count)"
                    )
                replicas = [factory() for _ in range(workers)]
            replicas = list(replicas)
            if not replicas:
                raise ConfigurationError("a parallel session needs at least one replica")
            #: The replica instances (thread backend only; the process
            #: backend's replicas live in the worker processes).
            self.replicas = replicas
            self._workers: List = [_ThreadWorker(replica) for replica in replicas]
        else:
            if replicas is not None:
                raise ConfigurationError(
                    "process backend builds replicas inside the worker processes; "
                    "pass a picklable factory (e.g. ReplicaSpec) via from_factory()"
                )
            if factory is None or workers is None:
                raise ConfigurationError("process backend needs a factory and a worker count")
            if workers <= 0:
                raise ConfigurationError(f"worker count must be positive, got {workers}")
            try:
                pickle.dumps(factory)
            except Exception as exc:
                raise ConfigurationError(
                    "process backend needs a picklable replica factory "
                    f"(e.g. ReplicaSpec); {factory!r} is not: {exc}"
                ) from exc
            self.replicas = []
            self._workers = [_ProcessWorker(factory) for _ in range(workers)]
        self._committed = [_Aggregate() for _ in self._workers]

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[], object],
        workers: int,
        chunk_size: int = 256,
        backend: str = "thread",
    ) -> "ParallelSession":
        """Build a ``workers``-replica session; ``factory`` makes one replica.

        On the thread backend the factory is called here, once per worker; on
        the process backend it is shipped (pickled) to each worker process
        and called there, so it must be picklable — :class:`ReplicaSpec`
        exists for exactly that.
        """
        if workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        if backend == "thread":
            return cls([factory() for _ in range(workers)], chunk_size=chunk_size)
        return cls(
            None, chunk_size=chunk_size, backend=backend, factory=factory, workers=workers
        )

    @property
    def workers(self) -> int:
        """Number of replica pipelines."""
        return len(self._workers)

    # -- streaming -----------------------------------------------------------
    def run(self, packets: Iterable[PacketHeader]) -> SessionStats:
        """Shard one trace across the worker pool and return the merged stats.

        Consumes the trace incrementally (constant memory, any iterable) and
        retains nothing per packet.  On a replica failure, cancels the
        outstanding chunks, re-raises the replica's error and leaves the
        committed counters untouched (see the module failure contract).
        """
        self._execute(packets, retain=False)
        return self.stats()

    def feed(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Shard one trace and return its classifications in input order.

        The parallel twin of :meth:`ClassificationSession.feed
        <repro.api.session.ClassificationSession.feed>`: results are
        bit-identical to one replica classifying the trace alone (every
        replica holds the same rules), re-assembled in input order.  Unlike
        :meth:`run` this necessarily materialises the results.
        """
        return BatchResult(self._execute(packets, retain=True))

    def _execute(self, packets, retain: bool):
        for worker in self._workers:
            worker.start()
        worker_count = len(self._workers)
        pending = [_Aggregate() for _ in self._workers]
        retained: Optional[Dict[int, Tuple[Classification, ...]]] = {} if retain else None
        inflight: deque = deque()
        max_inflight = worker_count * PIPELINE_DEPTH
        try:
            chunk: List[PacketHeader] = []
            chunk_index = 0
            for packet in packets:
                chunk.append(packet)
                if len(chunk) >= self.chunk_size:
                    self._dispatch(chunk, chunk_index, inflight, max_inflight, pending, retained)
                    chunk_index += 1
                    chunk = []
            if chunk:
                self._dispatch(chunk, chunk_index, inflight, max_inflight, pending, retained)
            while inflight:
                self._absorb_one(inflight, pending, retained)
        except BaseException:
            self._abort(inflight)
            raise
        # Only a fully successful run commits into the session counters.
        for committed, fresh in zip(self._committed, pending):
            committed.merge(fresh)
        if retained is None:
            return None
        ordered: List[Classification] = []
        for index in sorted(retained):
            ordered.extend(retained[index])
        return tuple(ordered)

    def _dispatch(self, chunk, chunk_index, inflight, max_inflight, pending, retained) -> None:
        """Submit one chunk round-robin, absorbing the oldest when saturated."""
        if len(inflight) >= max_inflight:
            self._absorb_one(inflight, pending, retained)
        worker_index = chunk_index % len(self._workers)
        future = self._workers[worker_index].submit(chunk, retained is not None)
        inflight.append((future, worker_index, chunk_index))

    def _absorb_one(self, inflight, pending, retained) -> None:
        future, worker_index, chunk_index = inflight.popleft()
        outcome = future.result()
        pending[worker_index].absorb(outcome.counters)
        if retained is not None:
            retained[chunk_index] = outcome.results

    def _abort(self, inflight) -> None:
        """Cancel outstanding chunks and swallow their late errors."""
        for future, _, _ in inflight:
            future.cancel()
        for future, _, _ in inflight:
            if not future.cancelled():
                try:
                    future.result()
                except BaseException:
                    pass
        inflight.clear()

    def reset(self) -> None:
        """Zero every replica's committed aggregate counters."""
        for aggregate in self._committed:
            aggregate.reset()

    # -- aggregation ---------------------------------------------------------
    def stats(self) -> SessionStats:
        """Merged statistics over everything successfully run through the pool.

        On the process backend this may start the worker pool (the replica
        name and memory footprint are reported by the workers; bring-up runs
        in parallel across workers).
        """
        for worker in self._workers:
            worker.prefetch_info()
        parts = []
        for worker, aggregate in zip(self._workers, self._committed):
            name, memory_bits = worker.info()
            parts.append(aggregate.to_stats(name, memory_bits))
        return SessionStats.merge(parts)

    def replica_details(self) -> Dict[str, object]:
        """Engine-specific details of replica 0 (``ClassifierStats.details``).

        Representative of the deployment whenever the replicas are
        homogeneous (every :meth:`from_factory` pool); on the process
        backend the worker reports them (starting it if needed).
        """
        return self._workers[0].details()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pools down (processes exit; threads join).

        Idempotent; a later :meth:`run` lazily restarts the pools (process
        workers then rebuild their replicas).
        """
        for worker in self._workers:
            worker.shutdown()

    def __enter__(self) -> "ParallelSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ParallelSession(workers={self.workers}, backend={self.backend})"

"""repro.perf — high-throughput batch classification.

The behavioural model is bit-exact but pure Python, so classifying packets
one at a time caps trace throughput far below the "as fast as the hardware
allows" goal.  This package closes the gap by exploiting the massive
field-value redundancy of real traces (ClassBench traffic reuses the same
16-bit IP segments, ports and protocols constantly):

* :class:`~repro.perf.fastpath.FastPathAccelerator` — memoizes per-dimension
  engine lookups, combiner outcomes and whole-header classifications, with
  automatic invalidation on rule installs/removes (the mutation-listener
  hooks of :class:`~repro.fields.base.SingleFieldEngine` and
  :class:`~repro.hardware.rule_filter.RuleFilterMemory`).  Attached via
  :meth:`ConfigurableClassifier.enable_fast_path`, it accelerates
  ``classify_batch`` while keeping results bit-exact with the per-packet
  path.
* :class:`~repro.perf.parallel.ParallelSession` — shards a trace across N
  classifier replicas (a worker pool), modelling a multi-pipeline deployment,
  and merges the per-replica statistics into one
  :class:`~repro.api.session.SessionStats`.
"""

from repro.perf.fastpath import FastPathAccelerator
from repro.perf.parallel import ParallelSession

__all__ = ["FastPathAccelerator", "ParallelSession"]

"""repro.perf — high-throughput batch classification.

The behavioural model is bit-exact but pure Python, so classifying packets
one at a time caps trace throughput far below the "as fast as the hardware
allows" goal.  This package closes the gap from two directions:

* :class:`~repro.perf.fastpath.FastPathAccelerator` — memoizes per-dimension
  engine lookups, combiner outcomes, assembled results and whole-header
  classifications in bounded LRU layers (:mod:`repro.perf.lru`), with
  automatic invalidation on rule installs/removes by epoch comparison (the
  :class:`~repro.observers.MutationEpoch` counters of
  :class:`~repro.fields.base.SingleFieldEngine` and
  :class:`~repro.hardware.rule_filter.RuleFilterMemory`, bumped by every
  control-plane commit).  Its *vectorized* mode makes the cold path fast
  too: unique field values resolve through the
  :mod:`repro.fields.vectorized` batch engine walkers and combiner misses
  through an exact array-staged cross-product walk.  Attached via
  :meth:`ConfigurableClassifier.enable_fast_path`, it accelerates
  ``classify_batch`` while keeping results bit-exact with the per-packet
  path.
* :class:`~repro.perf.flowcache.FlowCache` — an exact-match flow tier in
  front of whatever batch path is enabled: entries are keyed by the packed
  104-bit header word, managed by idle / hard / HQTimer-style hybrid
  timeout policies on a deterministic packets-observed virtual clock, and
  evicted under capacity pressure by a pluggable :class:`Predictor`
  (frequency / recency).  Control-plane commits invalidate affected entries
  surgically; untracked mutations flush wholesale via the same mutation
  epochs the fast path watches.
* :class:`~repro.perf.parallel.ParallelSession` — shards a trace in bounded
  round-robin chunks across N classifier replicas and merges the per-replica
  statistics into one :class:`~repro.api.session.SessionStats`.  The thread
  backend models the deployment in-process; the process backend
  (``backend="process"``, replicas built from a picklable
  :class:`~repro.perf.parallel.ReplicaSpec`) classifies with true CPU
  parallelism.  Chunks reach process workers over the zero-copy packed
  transport of :mod:`repro.perf.transport` (fixed-width 104-bit header words
  in a shared-memory ring; ``transport="packed"``) when the platform grants
  shared memory, falling back to pickled object chunks otherwise — and the
  asyncio front-end (:meth:`~repro.perf.parallel.ParallelSession.afeed` /
  :meth:`~repro.perf.parallel.ParallelSession.arun`) lets a live async
  packet source drive the pool with bounded backpressure, yielding
  input-order classifications without blocking the event loop.  The pool is
  itself a :class:`~repro.api.control.ControlPlane`: committed transactions
  broadcast to every replica between chunks, all-or-nothing session-wide
  (see :meth:`~repro.perf.parallel.ParallelSession.apply`).
"""

from repro.perf.fastpath import FastPathAccelerator
from repro.perf.flowcache import (
    FlowCache,
    FrequencyPredictor,
    Predictor,
    RecencyPredictor,
)
from repro.perf.lru import BoundedCache, LRUCache
from repro.perf.parallel import ParallelSession, ReplicaSpec, merge_flow_cache_stats
from repro.perf.transport import (
    ChunkDescriptor,
    PackedChunk,
    SharedChunkRing,
    iter_packed_chunks,
    pack_header,
    pack_headers,
    shared_memory_available,
    unpack_headers,
)

__all__ = [
    "FastPathAccelerator",
    "FlowCache",
    "Predictor",
    "FrequencyPredictor",
    "RecencyPredictor",
    "ParallelSession",
    "ReplicaSpec",
    "merge_flow_cache_stats",
    "LRUCache",
    "BoundedCache",
    "SharedChunkRing",
    "ChunkDescriptor",
    "PackedChunk",
    "iter_packed_chunks",
    "pack_header",
    "pack_headers",
    "unpack_headers",
    "shared_memory_available",
]

"""Packed-header zero-copy transport for the process-pool backend.

The paper's pipeline is fed fixed-width header words, not Python objects, so
the faithful (and fast) way to move a trace between processes is the same
wire shape: each 5-tuple packs into one 104-bit big-endian word
(:data:`~repro.rules.packet.HEADER_BITS`, field order and widths from
:data:`~repro.rules.packet.FIVE_TUPLE_WIDTHS`), and whole chunks of them
live in a shared-memory ring that worker processes read in place.  The
dispatcher then ships a tiny ``(segment, offset, count)`` descriptor per
chunk instead of a pickled list of :class:`~repro.rules.packet.PacketHeader`
objects — no header is ever serialised.

Three layers, all stdlib-only (``struct`` + ``multiprocessing.shared_memory``;
the codec accepts any buffer-protocol object, including ``array.array`` and
NumPy arrays):

* **codec** — :func:`pack_headers` / :func:`unpack_headers` /
  :func:`pack_into`, the bijection between header objects and the packed
  wire layout.  The layout is frozen by a golden-bytes test; changing it is
  a wire-format break.
* **ring** — :class:`SharedChunkRing`, a fixed number of chunk-sized slots in
  one :class:`~multiprocessing.shared_memory.SharedMemory` segment.  The
  dispatcher owns slot accounting (acquire → write → release when the
  chunk's result is absorbed); the bounded in-flight window of
  :class:`~repro.perf.parallel.ParallelSession` guarantees a free slot at
  every dispatch, so no cross-process synchronisation is needed.
* **worker attach** — :func:`read_chunk`, used inside worker processes:
  attaches to the ring segment once (cached per process, re-attached when
  the ring changes) and decodes one chunk's headers from it.

:func:`shared_memory_available` probes whether the platform actually grants
shared-memory segments; :class:`~repro.perf.parallel.ParallelSession` uses it
to fall back to the pickle transport gracefully (``transport="auto"``).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Deque, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.rules.packet import FIVE_TUPLE_WIDTHS, HEADER_BITS, PacketHeader

__all__ = [
    "HEADER_BYTES",
    "ChunkDescriptor",
    "PackedChunk",
    "SharedChunkRing",
    "iter_packed_chunks",
    "pack_header",
    "pack_headers",
    "pack_into",
    "unpack_headers",
    "read_chunk",
    "shared_memory_available",
]

#: Bytes of one packed header word (104 bits -> 13 bytes).
HEADER_BYTES = HEADER_BITS // 8

#: Big-endian fixed-width layout: src_ip(32) dst_ip(32) src_port(16)
#: dst_port(16) protocol(8), exactly the canonical field order and widths of
#: :data:`repro.rules.packet.FIVE_TUPLE_WIDTHS`.
_HEADER_STRUCT = struct.Struct(">IIHHB")

# The wire layout must stay in lock-step with the canonical widths: if a
# field width changes in rules/packet.py, this import-time check fails
# instead of silently truncating values on the wire.
if _HEADER_STRUCT.size != HEADER_BYTES or tuple(FIVE_TUPLE_WIDTHS.values()) != (
    32, 32, 16, 16, 8
):
    raise ConfigurationError(
        "packed transport layout out of sync with FIVE_TUPLE_WIDTHS"
    )


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------

#: Anything the codec packs: a :class:`PacketHeader` or a plain
#: ``(src_ip, dst_ip, src_port, dst_port, protocol)`` tuple.  Both iterate to
#: the canonical 5-tuple order, so the packers star-unpack them identically —
#: the pcap front-end (:mod:`repro.io.pcap`) feeds plain tuples through here
#: without ever materialising header objects.
FiveTuple = Union[PacketHeader, Sequence[int]]


def pack_header(header: FiveTuple) -> bytes:
    """Pack one header (object or plain 5-tuple) into its wire word.

    The single-header form of :func:`pack_headers`; the flow cache uses it
    as the exact-match key so a cache entry and a wire word are the same
    13 bytes.
    """
    return _HEADER_STRUCT.pack(*header)


def pack_headers(headers: Iterable[FiveTuple]) -> bytes:
    """Pack headers into a contiguous ``HEADER_BYTES``-per-header buffer."""
    pack = _HEADER_STRUCT.pack
    return b"".join(pack(*h) for h in headers)


def pack_into(buffer, offset: int, headers: Sequence[FiveTuple]) -> int:
    """Pack ``headers`` into ``buffer`` at ``offset``; returns bytes written.

    ``buffer`` is any writable buffer-protocol object (``bytearray``,
    ``memoryview``, ``array.array``, a NumPy array, shared memory...);
    ``headers`` are header objects or plain 5-tuples.
    """
    pack_one = _HEADER_STRUCT.pack_into
    for header in headers:
        pack_one(buffer, offset, *header)
        offset += HEADER_BYTES
    return len(headers) * HEADER_BYTES


class PackedChunk(NamedTuple):
    """A bounded chunk of packed header words, ready for descriptor dispatch.

    ``data`` holds exactly ``count * HEADER_BYTES`` bytes of consecutive
    104-bit words.  This is the native output of the streaming chunk packer
    (:func:`iter_packed_chunks`) and of the pcap front-end
    (:func:`repro.io.pcap.read_pcap_packed`), and the native *input* of
    :class:`~repro.perf.parallel.ParallelSession` — on the packed transport a
    chunk's bytes copy straight into a shared-memory ring slot, no
    per-header re-encoding.
    """

    data: bytes
    count: int

    def headers(self) -> List[PacketHeader]:
        """Decode the chunk into header objects (the convenience path)."""
        return unpack_headers(self.data, self.count)


def iter_packed_chunks(
    headers: Iterable[FiveTuple], chunk_size: int
) -> Iterator[PackedChunk]:
    """Pack a 5-tuple stream into fixed-size chunks, without materialising it.

    The streaming twin of :func:`pack_headers`: accepts any iterator of
    header objects or plain 5-tuples and yields ``chunk_size``-header
    :class:`PackedChunk` words (tail chunk shorter), holding at most one
    chunk's bytes at a time — an arbitrarily long trace (or live capture)
    packs in constant memory.
    """
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk size must be positive, got {chunk_size}")
    pack_one = _HEADER_STRUCT.pack_into
    buffer = bytearray(chunk_size * HEADER_BYTES)
    fill = 0
    for header in headers:
        pack_one(buffer, fill * HEADER_BYTES, *header)
        fill += 1
        if fill == chunk_size:
            yield PackedChunk(bytes(buffer), fill)
            fill = 0
    if fill:
        yield PackedChunk(bytes(buffer[: fill * HEADER_BYTES]), fill)


def unpack_headers(buffer, count: Optional[int] = None, offset: int = 0) -> List[PacketHeader]:
    """Decode ``count`` headers from ``buffer`` starting at ``offset``.

    The inverse of :func:`pack_headers` / :func:`pack_into`; ``buffer`` is
    any buffer-protocol object.  ``count=None`` decodes to the end of the
    buffer (which must then hold a whole number of header words).
    """
    if count is None:
        # nbytes, not len(): a buffer of multi-byte items (array("I"), a
        # uint32 NumPy array) reports its length in items.
        remaining = memoryview(buffer).nbytes - offset
        if remaining % HEADER_BYTES:
            raise ConfigurationError(
                f"buffer tail of {remaining} bytes is not a whole number of "
                f"{HEADER_BYTES}-byte header words"
            )
        count = remaining // HEADER_BYTES
    unpack_one = _HEADER_STRUCT.unpack_from
    headers: List[PacketHeader] = []
    for index in range(count):
        src_ip, dst_ip, src_port, dst_port, protocol = unpack_one(
            buffer, offset + index * HEADER_BYTES
        )
        headers.append(PacketHeader(src_ip, dst_ip, src_port, dst_port, protocol))
    return headers


# ---------------------------------------------------------------------------
# Shared-memory chunk ring
# ---------------------------------------------------------------------------


class ChunkDescriptor(NamedTuple):
    """What actually crosses the process boundary per chunk: ~50 bytes."""

    segment: str
    offset: int
    count: int


def _import_shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


_AVAILABLE: Optional[bool] = None


def shared_memory_available() -> bool:
    """True when the platform grants ``multiprocessing.shared_memory`` segments.

    Probes once per process by creating (and immediately unlinking) a
    minimal segment; containers without ``/dev/shm`` or with a locked-down
    tmpfs fail the probe and make ``transport="auto"`` fall back to pickle.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = _import_shared_memory().SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


class SharedChunkRing:
    """A ring of fixed-size packed-chunk slots in one shared-memory segment.

    The dispatcher packs each outgoing chunk into a free slot
    (:meth:`acquire` + :meth:`write`) and releases the slot once the chunk's
    result has been absorbed; workers only ever read.  Slot accounting lives
    entirely in the owning process — the in-flight window of the dispatcher
    is never larger than the slot count, so a free slot always exists at
    dispatch time and the ring needs no locks.
    """

    def __init__(self, slots: int, headers_per_slot: int) -> None:
        if slots <= 0:
            raise ConfigurationError(f"ring needs at least one slot, got {slots}")
        if headers_per_slot <= 0:
            raise ConfigurationError(
                f"ring slots must hold at least one header, got {headers_per_slot}"
            )
        self.slots = slots
        self.headers_per_slot = headers_per_slot
        self.slot_bytes = headers_per_slot * HEADER_BYTES
        self._shm = _import_shared_memory().SharedMemory(
            create=True, size=slots * self.slot_bytes
        )
        self._free: Deque[int] = deque(range(slots))

    @property
    def name(self) -> str:
        """Segment name workers attach to (:func:`read_chunk`)."""
        return self._shm.name

    @property
    def free_slots(self) -> int:
        """Slots currently available for :meth:`acquire`."""
        return len(self._free)

    @property
    def closed(self) -> bool:
        return self._shm is None

    def acquire(self) -> Optional[int]:
        """Take a free slot index, or None when every slot is in flight."""
        return self._free.popleft() if self._free else None

    def release(self, slot: int) -> None:
        """Return a slot to the free list (its chunk has been absorbed)."""
        self._free.append(slot)

    def write(
        self, slot: int, headers: Union[Sequence[FiveTuple], PackedChunk]
    ) -> ChunkDescriptor:
        """Pack one chunk into ``slot`` and return its wire descriptor.

        A :class:`PackedChunk` copies its bytes into the slot verbatim —
        the zero-re-encode path for pre-packed traces (pcap front-end,
        :func:`iter_packed_chunks`); anything else is packed header by
        header via :func:`pack_into`.
        """
        offset = slot * self.slot_bytes
        if isinstance(headers, PackedChunk):
            if headers.count > self.headers_per_slot:
                raise ConfigurationError(
                    f"packed chunk of {headers.count} headers exceeds the ring "
                    f"slot capacity of {self.headers_per_slot}"
                )
            end = offset + headers.count * HEADER_BYTES
            self._shm.buf[offset:end] = headers.data
            return ChunkDescriptor(
                segment=self._shm.name, offset=offset, count=headers.count
            )
        if len(headers) > self.headers_per_slot:
            raise ConfigurationError(
                f"chunk of {len(headers)} headers exceeds the ring slot "
                f"capacity of {self.headers_per_slot}"
            )
        pack_into(self._shm.buf, offset, headers)
        return ChunkDescriptor(segment=self._shm.name, offset=offset, count=len(headers))

    def close(self) -> None:
        """Release and unlink the segment (idempotent; frees ``/dev/shm``)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._free.clear()
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else self._shm.name
        return (
            f"SharedChunkRing({state}, slots={self.slots}, "
            f"slot_bytes={self.slot_bytes})"
        )


# ---------------------------------------------------------------------------
# Worker-side attach cache
# ---------------------------------------------------------------------------

#: This process's attachment to the dispatcher's current ring segment.  One
#: entry suffices: a worker serves exactly one session ring at a time, and a
#: new ring (new segment name) simply replaces the old attachment.
_ATTACHED = None


def read_chunk(segment: str, offset: int, count: int) -> List[PacketHeader]:
    """Decode one chunk from the named ring segment (worker side).

    Attaches on first use and caches the attachment for the life of the
    worker process; when the dispatcher rebuilds its ring (a new segment
    name), the stale attachment is closed and replaced.
    """
    global _ATTACHED
    attached = _ATTACHED
    if attached is None or attached.name != segment:
        if attached is not None:
            attached.close()
        attached = _import_shared_memory().SharedMemory(name=segment)
        _ATTACHED = attached
    return unpack_headers(attached.buf, count, offset=offset)

"""Bounded least-recently-used caches for the fast-path memoization layers.

Every memoization layer of :class:`~repro.perf.fastpath.FastPathAccelerator`
is keyed by values arriving from the packet stream (field values, label-list
tuples, whole headers, packed rule-filter keys), so an adversarial stream of
never-repeating flows would grow an unbounded dict forever.  :class:`LRUCache`
bounds each layer: a hit refreshes the entry's recency, an insert beyond the
limit evicts the least recently used entry and counts it, so a cache under an
adversarial stream holds memory flat while a cache under a realistic
(redundant) stream behaves exactly like the dict it replaces.

Built on :class:`collections.OrderedDict`, whose ``move_to_end``/``popitem``
are C-level operations — the recency bookkeeping adds ~100ns per hit, which
keeps the warm header-cache path above a million packets per second.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro.exceptions import ConfigurationError

__all__ = ["LRUCache", "BoundedCache"]

_MISSING = object()


class LRUCache:
    """A size-bounded mapping evicting the least recently used entry.

    Only the operations the fast path needs are provided: :meth:`get`
    (refreshes recency), :meth:`put` (inserts, evicting the LRU entry when
    full), ``in`` (does *not* refresh recency), ``len``, iteration over keys
    (eviction order, least recent first) and :meth:`clear`.  ``evictions``
    counts capacity evictions over the cache's lifetime (``clear`` — the
    invalidation path — does not count).
    """

    __slots__ = ("limit", "evictions", "data")

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ConfigurationError(f"cache limit must be positive, got {limit}")
        self.limit = limit
        self.evictions = 0
        #: The underlying :class:`OrderedDict`, exposed for hot loops that
        #: inline ``data.get`` + ``data.move_to_end`` to skip a Python call
        #: per packet.  Such loops own the recency update; anything else
        #: should go through :meth:`get`/:meth:`put`.
        self.data: OrderedDict = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        data = self.data
        value = data.get(key, _MISSING)
        if value is _MISSING:
            return default
        data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        data = self.data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.limit:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.data

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator:
        return iter(self.data)

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present (scoped invalidation; not an eviction)."""
        if key in self.data:
            del self.data[key]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (invalidation; not counted as eviction)."""
        self.data.clear()

    def __repr__(self) -> str:
        return f"LRUCache(entries={len(self.data)}, limit={self.limit}, evictions={self.evictions})"


class BoundedCache:
    """A size-bounded mapping evicting the *oldest inserted* entry (FIFO).

    The cheap sibling of :class:`LRUCache` for layers whose hit path must be
    a bare ``dict.get`` with zero recency bookkeeping — the vectorized cold
    path's rule-filter probe cache and sort memo, where a hot loop issues
    hundreds of thousands of reads per batch.  Reads go straight through the
    exposed ``data`` dict; :meth:`put` enforces the bound (plain dicts
    preserve insertion order, so the first key is the oldest).
    """

    __slots__ = ("limit", "evictions", "data")

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ConfigurationError(f"cache limit must be positive, got {limit}")
        self.limit = limit
        self.evictions = 0
        #: The underlying dict; hot loops read it directly (``data.get``).
        self.data: dict = {}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value or ``default`` (no recency side effects)."""
        return self.data.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the oldest entry when full."""
        data = self.data
        if key not in data and len(data) >= self.limit:
            del data[next(iter(data))]
            self.evictions += 1
        data[key] = value

    def put_many(self, mapping: dict) -> None:
        """Bulk insert, then evict oldest-first down to the bound."""
        data = self.data
        data.update(mapping)
        excess = len(data) - self.limit
        if excess > 0:
            iterator = iter(data)
            oldest = [next(iterator) for _ in range(excess)]
            for key in oldest:
                del data[key]
            self.evictions += excess

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.data

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator:
        return iter(self.data)

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present (scoped invalidation; not an eviction)."""
        if key in self.data:
            del self.data[key]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (invalidation; not counted as eviction)."""
        self.data.clear()

    def __repr__(self) -> str:
        return f"BoundedCache(entries={len(self.data)}, limit={self.limit}, evictions={self.evictions})"

"""Memoizing batch-lookup fast path for the configurable classifier.

Real traces are massively redundant: a ClassBench trace over a 10K-rule
filter set contains only a few thousand unique 16-bit IP segment values, a
handful of protocols and a modest set of port values.  The per-packet path
recomputes every engine walk, every combiner cross-product and every result
record from scratch for each packet; the fast path memoizes four layers:

1. **Field layer** — one cache per dimension mapping the packet's field value
   to the engine's (immutable) :class:`~repro.fields.base.FieldLookupResult`.
2. **Combiner layer** — a cache keyed by the packed tuple of per-dimension
   label lists mapping to the (immutable)
   :class:`~repro.core.label_combiner.CombinerOutcome`.  Distinct field
   values that resolve to the same label lists share one entry, so this layer
   hits even when the field layer misses.
3. **Result layer** — a cache keyed by the tuple of per-dimension field
   results (the label tuple together with its cost vector) mapping to the
   finished :class:`~repro.core.result.Classification`.  Distinct headers
   that resolve to the same per-dimension results share one finished record,
   so the assembly step (cycle report, access accounting, record
   construction) — the residue left after the field and combiner layers hit —
   runs once per distinct result tuple instead of once per distinct header.
4. **Header layer** — a cache keyed by the full 5-tuple header mapping to the
   finished :class:`~repro.core.result.Classification` (flow locality makes
   repeated headers common in practice).

Every layer is a bounded :class:`~repro.perf.lru.LRUCache`: an adversarial
stream of never-repeating flows evicts instead of growing without bound, and
the eviction counts are reported by :meth:`FastPathAccelerator.cache_stats`.

**Vectorized cold path** (``vectorized=True``): the expensive part of a cold
batch is the first resolution of each unique value and label combination.  In
vectorized mode the accelerator first sweeps the batch for unique *uncached*
field values per dimension and resolves them in one pass through the
:mod:`repro.fields.vectorized` batch walkers (NumPy when available), then
resolves combiner misses through
:meth:`~repro.core.label_combiner.LabelCombiner.combine_with_cache` — an
exact cross-product walk that pre-packs keys in blocks and replays repeated
rule-filter probes from a fifth, key-level **probe cache**.  The vectorized
mode materialises its input batch (chunked callers — sessions — bound this).

Results are *bit-exact* with the per-packet path in every mode: every cached
object is immutable and deterministic given the installed rules, and the
final record is assembled by the very same
:meth:`~repro.core.classifier.ConfigurableClassifier._assemble_lookup` the
per-packet path uses — the cost-model accounting (per-phase cycles,
per-dimension memory accesses, probe counts, truncation flags) is identical.

Caches invalidate by **epoch comparison**: every single-field engine and the
Rule Filter carry a :class:`~repro.observers.MutationEpoch` counter bumped
after each structural mutation (every control-plane commit lands as such
mutations), and the accelerator snapshots those epochs when it fills a cache.
At the start of every batch the snapshots are compared against the live
epochs — a dimension whose engine moved drops that dimension's field cache
(plus the derived layers), a Rule Filter that moved drops the combiner,
result, header and probe caches.  Interleaved transactional updates and
batch lookups therefore stay correct without any callback registration, and
the scheme survives process boundaries (a replica rebuilt in a worker starts
cold at epoch 0).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.dimensions import DIMENSIONS, packet_dimension_values
from repro.core.result import BatchResult, Classification
from repro.core.invalidation import FILTER_MARK, InvalidationScope
from repro.perf.lru import BoundedCache, LRUCache
from repro.rules.packet import PacketHeader

__all__ = ["FastPathAccelerator"]

#: Header-cache entries kept before the least recently used one is evicted.
#: Bounds memory on endless streams of unique flows; 1M finished
#: classifications is a few hundred MB at most and far beyond any realistic
#: working set.
DEFAULT_HEADER_CACHE_LIMIT = 1 << 20
#: Per-dimension field-cache bound; a 16-bit dimension has at most 65536
#: distinct values, so this never evicts for the IP/port engines in practice
#: while still bounding custom wider engines.
DEFAULT_FIELD_CACHE_LIMIT = 1 << 16
#: Combiner-outcome cache bound (keys are label-list tuple combinations).
DEFAULT_COMBINER_CACHE_LIMIT = 1 << 16
#: Result-memo bound (keys are per-dimension field-result tuples).
DEFAULT_RESULT_CACHE_LIMIT = 1 << 17
#: Rule-filter probe cache bound (vectorized mode; keys are packed 68-bit keys).
DEFAULT_PROBE_CACHE_LIMIT = 1 << 18
#: Bound of the pure sort memo shared by the vectorized combiner walks.
SORT_MEMO_LIMIT = 1 << 16


class FastPathAccelerator:
    """Batch classification through value/label/result/header memoization.

    Attach via :meth:`ConfigurableClassifier.enable_fast_path` (which wires
    ``classify_batch`` through :meth:`classify_batch` here); detach via
    :meth:`ConfigurableClassifier.disable_fast_path`.  ``vectorized=True``
    additionally routes cold misses through the batch engine walkers and the
    cached combiner walk (see the module docstring).
    """

    def __init__(
        self,
        classifier,
        header_cache_limit: int = DEFAULT_HEADER_CACHE_LIMIT,
        field_cache_limit: int = DEFAULT_FIELD_CACHE_LIMIT,
        combiner_cache_limit: int = DEFAULT_COMBINER_CACHE_LIMIT,
        result_cache_limit: int = DEFAULT_RESULT_CACHE_LIMIT,
        probe_cache_limit: int = DEFAULT_PROBE_CACHE_LIMIT,
        vectorized: bool = False,
    ) -> None:
        self.classifier = classifier
        self.header_cache_limit = header_cache_limit
        self.vectorized = vectorized
        # LRUCache validates the limits (ConfigurationError on non-positive).
        self._field_caches: Dict[str, LRUCache] = {
            name: LRUCache(field_cache_limit) for name in DIMENSIONS
        }
        self._combiner_cache = LRUCache(combiner_cache_limit)
        self._result_cache = LRUCache(result_cache_limit)
        self._header_cache = LRUCache(header_cache_limit)
        # FIFO-bounded: their hit paths are bare dict reads inside the
        # vectorized combiner walk, far too hot for recency bookkeeping.
        self._probe_cache = BoundedCache(probe_cache_limit)
        self._sort_memo = BoundedCache(SORT_MEMO_LIMIT)
        # Epoch snapshots the caches were last validated against: per
        # dimension (engine identity, engine epoch), plus the Rule Filter's.
        # The engine object rides along so a wholesale engine swap (an
        # IPalg_s reconfiguration rebuilding the datapath) invalidates even
        # if the fresh engine's counter happens to match the old one.
        self._engine_marks: Dict[str, Tuple[object, int]] = {}
        self._filter_mark: Optional[Tuple[object, int]] = None
        # Scoped-invalidation dependency maps (fed by the probe logs of the
        # combiner walks): probed rule-filter label key -> combiner-cache keys
        # whose outcome consumed that probe; combiner key -> result-cache
        # keys assembled from it; result key -> header-cache packets served
        # from it.  Evicted cache entries leave garbage references behind
        # (pruning a garbage key is a no-op, so staleness only ever
        # over-invalidates); the registration budget below bounds the garbage
        # and falls back to wholesale flushing when exceeded.
        self._combos_by_key: Dict[int, set] = {}
        self._results_by_combo: Dict[tuple, set] = {}
        self._headers_by_result: Dict[tuple, set] = {}
        self._dep_registrations = 0
        self._dep_budget = 4 * header_cache_limit
        self._deps_overflow = False
        # Scoped-invalidation outcome counters (benchmark/report fodder).
        self.scoped_commits = 0
        self.scoped_entries_dropped = 0
        #: Wholesale epoch flushes of the derived caches after the initial
        #: validation — every commit *not* absorbed by a scoped drop lands here.
        self.epoch_flushes = 0
        # Hit/miss counters per memoization layer (benchmark/report fodder).
        # In vectorized mode field misses are mostly counted by the batch
        # pre-pass; the per-packet walk then counts hits (plus the misses of
        # whatever exceeded a cache bound or was evicted meanwhile).
        self.header_hits = 0
        self.header_misses = 0
        self.field_hits = 0
        self.field_misses = 0
        self.combiner_hits = 0
        self.combiner_misses = 0
        self.result_hits = 0
        self.result_misses = 0
        self._walkers = {}
        if vectorized:
            from repro.fields.vectorized import batch_walker

            self._walkers = {
                name: batch_walker(classifier.engines[name]) for name in DIMENSIONS
            }
        self._validate_epochs()

    # -- invalidation ---------------------------------------------------------
    def _validate_epochs(self) -> None:
        """Drop whatever the live mutation epochs say is stale.

        Runs at the head of every batch: compares each engine's and the Rule
        Filter's :class:`~repro.observers.MutationEpoch` counter against the
        snapshot taken when the caches were last validated.  A moved engine
        drops its dimension's field cache and every derived layer; a moved
        Rule Filter drops the derived layers only.
        """
        had_state = bool(self._engine_marks) or self._filter_mark is not None
        derived_stale = False
        for name in DIMENSIONS:
            engine = self.classifier.engines[name]
            mark = (engine, engine.mutation_epoch)
            if self._engine_marks.get(name) != mark:
                self._field_caches[name].clear()
                self._engine_marks[name] = mark
                derived_stale = True
        rule_filter = self.classifier.rule_filter
        filter_mark = (rule_filter, rule_filter.mutation_epoch)
        if self._filter_mark != filter_mark:
            self._filter_mark = filter_mark
            derived_stale = True
        if derived_stale:
            self._invalidate_outcomes()
            if had_state:
                self.epoch_flushes += 1

    def detach(self) -> None:
        """Drop all cached state (the accelerator is being discarded)."""
        for walker in self._walkers.values():
            walker.detach()
        self._walkers = {}
        self.invalidate()

    def _invalidate_outcomes(self) -> None:
        self._combiner_cache.clear()
        self._result_cache.clear()
        self._header_cache.clear()
        self._probe_cache.clear()
        self._combos_by_key.clear()
        self._results_by_combo.clear()
        self._headers_by_result.clear()
        self._dep_registrations = 0
        self._deps_overflow = False

    def invalidate(self) -> None:
        """Drop every cached lookup (all layers)."""
        for cache in self._field_caches.values():
            cache.clear()
        self._sort_memo.clear()
        self._engine_marks.clear()
        self._filter_mark = None
        self._invalidate_outcomes()

    # -- scoped invalidation --------------------------------------------------
    def note_commit(self, scope: Optional[InvalidationScope]) -> None:
        """Apply a commit's exact blast radius instead of epoch-flushing.

        Called by the control plane after a successful commit.  The scoped
        drops are only sound if every cache entry was computed against the
        pre-commit state, so they apply only when the accelerator's epoch
        snapshots equal the scope's *pre* marks; the snapshots then advance
        to the *post* marks and the next batch revalidates clean.  On any
        mismatch (out-of-band mutations, a previous unscoped commit) this
        does nothing and the ordinary epoch comparison at the next batch
        flushes wholesale.
        """
        if scope is None or scope.wholesale or self._deps_overflow:
            return
        for name in DIMENSIONS:
            if self._engine_marks.get(name) != scope.pre_marks.get(name):
                return
        if self._filter_mark != scope.pre_marks.get(FILTER_MARK):
            return
        dropped = 0
        # Field layer: lookups inside a span may have changed; the combiner /
        # result layers are keyed by the lookup *values* and therefore
        # self-correct, but the header layer short-circuits the field walk
        # entirely and must shed every packet whose value lands in a span.
        for name, spans in scope.field_spans.items():
            cache = self._field_caches[name]
            stale = [
                value
                for value in cache.data
                if any(low <= value <= high for low, high in spans)
            ]
            for value in stale:
                cache.discard(value)
            dropped += len(stale)
        if scope.field_spans:
            dropped += self._drop_headers_in_spans(scope.field_spans)
        # Filter layer: outcomes that consumed a probe of a dirty label key
        # cascade into their result records and header entries; the key-level
        # probe cache sheds exactly the dirty keys (including any the walks
        # resolved but pruned before consuming — those were never registered
        # but can still be replayed later).
        if scope.filter_wholesale:
            self._invalidate_outcomes()
        elif scope.filter_keys:
            dropped += self._drop_filter_keys(scope.filter_keys)
        for name in DIMENSIONS:
            mark = scope.post_marks.get(name)
            if mark is not None:
                self._engine_marks[name] = mark
        filter_mark = scope.post_marks.get(FILTER_MARK)
        if filter_mark is not None:
            self._filter_mark = filter_mark
        self.scoped_commits += 1
        self.scoped_entries_dropped += dropped

    def _drop_headers_in_spans(self, field_spans) -> int:
        """Drop header entries whose packet values fall in any dirty span."""
        extractors = {
            "src_ip_hi": lambda p: p.src_ip >> 16,
            "src_ip_lo": lambda p: p.src_ip & 0xFFFF,
            "dst_ip_hi": lambda p: p.dst_ip >> 16,
            "dst_ip_lo": lambda p: p.dst_ip & 0xFFFF,
            "src_port": lambda p: p.src_port,
            "dst_port": lambda p: p.dst_port,
            "protocol": lambda p: p.protocol,
        }
        checks = [
            (extractors[name], spans) for name, spans in field_spans.items()
        ]
        header_cache = self._header_cache
        stale = []
        for packet in header_cache.data:
            for extract, spans in checks:
                value = extract(packet)
                if any(low <= value <= high for low, high in spans):
                    stale.append(packet)
                    break
        for packet in stale:
            header_cache.discard(packet)
        return len(stale)

    def _drop_filter_keys(self, keys) -> int:
        """Cascade-drop every outcome that consumed a probe of a dirty key."""
        combos_by_key = self._combos_by_key
        results_by_combo = self._results_by_combo
        headers_by_result = self._headers_by_result
        combiner_cache = self._combiner_cache
        result_cache = self._result_cache
        header_cache = self._header_cache
        probe_cache = self._probe_cache
        dropped = 0
        for label_key in keys:
            probe_cache.discard(label_key)
            combos = combos_by_key.pop(label_key, None)
            if not combos:
                continue
            for combo_key in combos:
                dropped += combiner_cache.discard(combo_key)
                result_keys = results_by_combo.pop(combo_key, None)
                if not result_keys:
                    continue
                for result_key in result_keys:
                    dropped += result_cache.discard(result_key)
                    packets = headers_by_result.pop(result_key, None)
                    if not packets:
                        continue
                    for packet in packets:
                        dropped += header_cache.discard(packet)
        return dropped

    # -- classification -------------------------------------------------------
    def classify_batch(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Classify ``packets``, reusing memoized work across the batch."""
        self._validate_epochs()
        if self.vectorized:
            packets = packets if isinstance(packets, (list, tuple)) else list(packets)
            self._prefetch_fields(packets)
        header_cache = self._header_cache
        # Inlined LRU hit path (get + recency touch) — this loop is the warm
        # fast path, well above a million packets per second.
        header_data = header_cache.data
        header_get = header_data.get
        touch = header_data.move_to_end
        classify = self._classify_uncached
        put = header_cache.put
        hits = 0
        misses = 0
        results = []
        append = results.append
        for packet in packets:
            cached = header_get(packet)
            if cached is None:
                cached = classify(packet)
                put(packet, cached)
                misses += 1
            else:
                touch(packet)
                hits += 1
            append(cached)
        self.header_hits += hits
        self.header_misses += misses
        return BatchResult(tuple(results))

    def _prefetch_fields(self, packets) -> None:
        """Resolve the batch's unique uncached field values in one pass each.

        The vectorized cold-path pre-pass: sweep the batch for headers the
        header cache cannot answer, collect each dimension's unique values
        that the field caches do not hold, and resolve them through the
        :mod:`repro.fields.vectorized` batch walkers, so the per-packet walk
        that follows only replays cached immutable results.
        """
        header_data = self._header_cache.data
        field_caches = self._field_caches
        seen_headers = set()
        seen_add = seen_headers.add
        lanes = [
            (name, [], set(), field_caches[name].data) for name in DIMENSIONS
        ]
        for packet in packets:
            if packet in header_data or packet in seen_headers:
                continue
            seen_add(packet)
            values = packet_dimension_values(packet)
            for name, missing, staged, cached in lanes:
                value = values[name]
                if value in staged or value in cached:
                    continue
                staged.add(value)
                missing.append(value)
        for name, missing, _, _ in lanes:
            if not missing:
                continue
            cache = field_caches[name]
            # Never resolve more values than the cache can hold: the excess
            # would evict earlier entries within this very pre-pass, wasting
            # the walker work and double-counting misses.  The overflow
            # simply misses per-packet below, exactly like the plain mode.
            missing = missing[: cache.limit]
            for value, result in zip(missing, self._walkers[name].resolve(missing)):
                cache.put(value, result)
            self.field_misses += len(missing)

    def _classify_uncached(self, packet: PacketHeader) -> Classification:
        """Classify one header through the field, result and combiner caches."""
        classifier = self.classifier
        engines = classifier.engines
        values = packet_dimension_values(packet)
        field_results = {}
        result_key = []
        for name in DIMENSIONS:
            cache = self._field_caches[name]
            value = values[name]
            # Inlined LRU hit path (see classify_batch).
            data = cache.data
            result = data.get(value)
            if result is None:
                result = engines[name].lookup(value)
                cache.put(value, result)
                self.field_misses += 1
            else:
                data.move_to_end(value)
                self.field_hits += 1
            field_results[name] = result
            result_key.append(result)
        # Result layer: the finished record is a pure function of the
        # per-dimension field results, so headers sharing them (a different
        # 5-tuple hitting the same values, or distinct values with identical
        # walks) share one assembled Classification.
        result_key = tuple(result_key)
        track = not self._deps_overflow
        record = self._result_cache.get(result_key)
        if record is not None:
            self.result_hits += 1
            if track:
                self._headers_by_result.setdefault(result_key, set()).add(packet)
                self._note_registrations(1)
            return record
        self.result_misses += 1
        key = tuple(result.matches for result in result_key)
        outcome = self._combiner_cache.get(key)
        if outcome is None:
            probe_log: Optional[list] = [] if track else None
            if self.vectorized:
                outcome = classifier.combiner.combine_with_cache(
                    key, self._probe_cache, self._sort_memo, probe_log
                )
            else:
                outcome = classifier.combiner.combine(
                    {name: result.matches for name, result in field_results.items()},
                    probe_log,
                )
            self._combiner_cache.put(key, outcome)
            self.combiner_misses += 1
            if probe_log:
                combos_by_key = self._combos_by_key
                for probed in probe_log:
                    combos_by_key.setdefault(probed, set()).add(key)
                self._note_registrations(len(probe_log))
        else:
            self.combiner_hits += 1
        record = Classification.from_lookup(
            classifier._assemble_lookup(field_results, outcome)
        )
        self._result_cache.put(result_key, record)
        if track:
            self._results_by_combo.setdefault(key, set()).add(result_key)
            self._headers_by_result.setdefault(result_key, set()).add(packet)
            self._note_registrations(2)
        return record

    def _note_registrations(self, count: int) -> None:
        """Account dependency-map growth; fall back to wholesale on overflow.

        Evicted cache entries leave garbage references in the maps, so a
        never-repeating header stream would grow them without bound.  Once
        registrations exceed the budget the maps are dropped and the next
        commit skips its scoped pass (``note_commit`` leaves the marks
        behind, forcing the ordinary wholesale flush that also resets the
        overflow flag).
        """
        self._dep_registrations += count
        if self._dep_registrations > self._dep_budget:
            self._combos_by_key.clear()
            self._results_by_combo.clear()
            self._headers_by_result.clear()
            self._dep_registrations = 0
            self._deps_overflow = True

    # -- introspection --------------------------------------------------------
    @staticmethod
    def _hit_rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def cache_stats(self) -> Dict[str, float]:
        """Sizes, hit/miss/eviction counters and derived per-layer hit rates."""
        return {
            "header_entries": len(self._header_cache),
            "header_hits": self.header_hits,
            "header_misses": self.header_misses,
            "header_hit_rate": self._hit_rate(self.header_hits, self.header_misses),
            "header_evictions": self._header_cache.evictions,
            "field_entries": sum(len(cache) for cache in self._field_caches.values()),
            "field_hits": self.field_hits,
            "field_misses": self.field_misses,
            "field_hit_rate": self._hit_rate(self.field_hits, self.field_misses),
            "field_evictions": sum(
                cache.evictions for cache in self._field_caches.values()
            ),
            "combiner_entries": len(self._combiner_cache),
            "combiner_hits": self.combiner_hits,
            "combiner_misses": self.combiner_misses,
            "combiner_hit_rate": self._hit_rate(self.combiner_hits, self.combiner_misses),
            "combiner_evictions": self._combiner_cache.evictions,
            "result_entries": len(self._result_cache),
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_hit_rate": self._hit_rate(self.result_hits, self.result_misses),
            "result_evictions": self._result_cache.evictions,
            "probe_entries": len(self._probe_cache),
            "probe_evictions": self._probe_cache.evictions,
            "scoped_commits": self.scoped_commits,
            "scoped_entries_dropped": self.scoped_entries_dropped,
            "epoch_flushes": self.epoch_flushes,
            "walker_rebuilds": sum(
                walker.rebuilds for walker in self._walkers.values()
            ),
            "dependency_registrations": self._dep_registrations,
            "dependency_overflow": int(self._deps_overflow),
        }

    def __repr__(self) -> str:
        stats = self.cache_stats()
        return (
            f"FastPathAccelerator(headers={stats['header_entries']}, "
            f"fields={stats['field_entries']}, combos={stats['combiner_entries']}, "
            f"vectorized={self.vectorized})"
        )

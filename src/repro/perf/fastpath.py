"""Memoizing batch-lookup fast path for the configurable classifier.

Real traces are massively redundant: a ClassBench trace over a 10K-rule
filter set contains only a few thousand unique 16-bit IP segment values, a
handful of protocols and a modest set of port values.  The per-packet path
recomputes every engine walk, every combiner cross-product and every result
record from scratch for each packet; the fast path memoizes all three layers:

1. **Field layer** — one cache per dimension mapping the packet's field value
   to the engine's (immutable) :class:`~repro.fields.base.FieldLookupResult`.
2. **Combiner layer** — a cache keyed by the packed tuple of per-dimension
   label lists mapping to the (immutable)
   :class:`~repro.core.label_combiner.CombinerOutcome`.  Distinct field
   values that resolve to the same label lists share one entry, so this layer
   hits even when the field layer misses.
3. **Header layer** — a cache keyed by the full 5-tuple header mapping to the
   finished :class:`~repro.core.result.Classification` (flow locality makes
   repeated headers common in practice).

Results are *bit-exact* with the per-packet path: every cached object is
immutable and deterministic given the installed rules, and the final record
is assembled by the very same
:meth:`~repro.core.classifier.ConfigurableClassifier._assemble_lookup` the
per-packet path uses — the cost-model accounting (per-phase cycles,
per-dimension memory accesses, probe counts, truncation flags) is identical.

Caches invalidate themselves: the accelerator registers mutation listeners
on every single-field engine (label-list changes drop that dimension's field
cache) and on the Rule Filter (content changes drop the combiner and header
caches), so interleaved installs/removes and batch lookups stay correct.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.dimensions import DIMENSIONS, packet_dimension_values
from repro.core.result import BatchResult, Classification
from repro.exceptions import ConfigurationError
from repro.rules.packet import PacketHeader

__all__ = ["FastPathAccelerator"]

#: Header-cache entries kept before the cache is wholesale cleared.  Bounds
#: memory on endless streams of unique flows; 1M finished classifications is
#: a few hundred MB at most and far beyond any realistic working set.
DEFAULT_HEADER_CACHE_LIMIT = 1 << 20


class FastPathAccelerator:
    """Batch classification through value/label/header memoization.

    Attach via :meth:`ConfigurableClassifier.enable_fast_path` (which wires
    ``classify_batch`` through :meth:`classify_batch` here); detach via
    :meth:`ConfigurableClassifier.disable_fast_path`.
    """

    def __init__(self, classifier, header_cache_limit: int = DEFAULT_HEADER_CACHE_LIMIT) -> None:
        if header_cache_limit <= 0:
            raise ConfigurationError(
                f"header cache limit must be positive, got {header_cache_limit}"
            )
        self.classifier = classifier
        self.header_cache_limit = header_cache_limit
        self._field_caches: Dict[str, dict] = {name: {} for name in DIMENSIONS}
        self._combiner_cache: Dict[Tuple, object] = {}
        self._header_cache: Dict[PacketHeader, Classification] = {}
        # Hit/miss counters per memoization layer (benchmark/report fodder).
        self.header_hits = 0
        self.field_hits = 0
        self.field_misses = 0
        self.combiner_hits = 0
        self.combiner_misses = 0
        self._hooks: List[Tuple[object, object]] = []
        self._attach()

    # -- wiring ---------------------------------------------------------------
    def _attach(self) -> None:
        """Register the cache-invalidation hooks on the classifier's parts."""
        for name in DIMENSIONS:
            engine = self.classifier.engines[name]
            hook = self._dimension_invalidator(name)
            engine.add_mutation_listener(hook)
            self._hooks.append((engine, hook))
        rule_filter = self.classifier.rule_filter
        hook = self._invalidate_outcomes
        rule_filter.add_mutation_listener(hook)
        self._hooks.append((rule_filter, hook))

    def detach(self) -> None:
        """Deregister every invalidation hook and drop all cached state."""
        for target, hook in self._hooks:
            target.remove_mutation_listener(hook)
        self._hooks.clear()
        self.invalidate()

    def _dimension_invalidator(self, dimension: str):
        def invalidate() -> None:
            self._field_caches[dimension].clear()
            self._invalidate_outcomes()

        return invalidate

    def _invalidate_outcomes(self) -> None:
        self._combiner_cache.clear()
        self._header_cache.clear()

    def invalidate(self) -> None:
        """Drop every cached lookup (all three layers)."""
        for cache in self._field_caches.values():
            cache.clear()
        self._invalidate_outcomes()

    # -- classification -------------------------------------------------------
    def classify_batch(self, packets: Iterable[PacketHeader]) -> BatchResult:
        """Classify ``packets``, reusing memoized work across the batch."""
        header_cache = self._header_cache
        results = []
        append = results.append
        limit = self.header_cache_limit
        for packet in packets:
            cached = header_cache.get(packet)
            if cached is None:
                cached = self._classify_uncached(packet)
                if len(header_cache) >= limit:
                    header_cache.clear()
                header_cache[packet] = cached
            else:
                self.header_hits += 1
            append(cached)
        return BatchResult(tuple(results))

    def _classify_uncached(self, packet: PacketHeader) -> Classification:
        """Classify one header through the field and combiner caches."""
        classifier = self.classifier
        engines = classifier.engines
        values = packet_dimension_values(packet)
        field_results = {}
        outcome_key = []
        for name in DIMENSIONS:
            cache = self._field_caches[name]
            value = values[name]
            result = cache.get(value)
            if result is None:
                result = engines[name].lookup(value)
                cache[value] = result
                self.field_misses += 1
            else:
                self.field_hits += 1
            field_results[name] = result
            outcome_key.append(result.matches)
        key = tuple(outcome_key)
        outcome = self._combiner_cache.get(key)
        if outcome is None:
            outcome = classifier.combiner.combine(
                {name: result.matches for name, result in field_results.items()}
            )
            self._combiner_cache[key] = outcome
            self.combiner_misses += 1
        else:
            self.combiner_hits += 1
        return Classification.from_lookup(
            classifier._assemble_lookup(field_results, outcome)
        )

    # -- introspection --------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Sizes and hit/miss counters of the three memoization layers."""
        return {
            "header_entries": len(self._header_cache),
            "header_hits": self.header_hits,
            "field_entries": sum(len(cache) for cache in self._field_caches.values()),
            "field_hits": self.field_hits,
            "field_misses": self.field_misses,
            "combiner_entries": len(self._combiner_cache),
            "combiner_hits": self.combiner_hits,
            "combiner_misses": self.combiner_misses,
        }

    def __repr__(self) -> str:
        stats = self.cache_stats()
        return (
            f"FastPathAccelerator(headers={stats['header_entries']}, "
            f"fields={stats['field_entries']}, combos={stats['combiner_entries']})"
        )

"""Hardware hash unit for Rule Filter addressing.

Section IV.A of the paper: *"The final address to store each rule in the Rule
Filter block is performed using a hash function implemented in hardware"*, and
section IV.C.1: the highest-priority labels of every field are *"merged in one
large data segment (68 bits) in which a hash function is used to obtain the
HPMR address"*.

The model implements a simple multiplicative/XOR-fold hash over the packed
68-bit label key, plus linear probing for collision resolution so the
behavioural model never loses a rule to a hash collision (the FPGA design
would size the table and pick the hash to make collisions rare; the probing
steps are visible in the access counts, so collision cost is still modelled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import ConfigurationError

try:  # NumPy accelerates hash_batch; the scalar path needs nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["LabelKeyLayout", "HashUnit", "DEFAULT_LABEL_LAYOUT"]


@dataclass(frozen=True)
class LabelKeyLayout:
    """Bit widths used to pack per-field labels into the combined key.

    The paper uses 13-bit IP-segment labels, 7-bit port labels and a 2-bit
    protocol label, giving 4x13 + 2x7 + 2 = 68 bits.
    """

    ip_label_bits: int = 13
    port_label_bits: int = 7
    protocol_label_bits: int = 2

    @property
    def total_bits(self) -> int:
        """Width of the packed key in bits (68 with the paper's layout)."""
        return 4 * self.ip_label_bits + 2 * self.port_label_bits + self.protocol_label_bits

    def field_widths(self) -> Tuple[int, ...]:
        """Per-component widths in canonical order.

        Order: src-IP-high, src-IP-low, dst-IP-high, dst-IP-low, src-port,
        dst-port, protocol — the same order the label combiner produces.
        """
        return (
            self.ip_label_bits,
            self.ip_label_bits,
            self.ip_label_bits,
            self.ip_label_bits,
            self.port_label_bits,
            self.port_label_bits,
            self.protocol_label_bits,
        )

    def pack(self, labels: Sequence[int]) -> int:
        """Pack seven per-field label values into the combined integer key."""
        widths = self.field_widths()
        if len(labels) != len(widths):
            raise ConfigurationError(
                f"expected {len(widths)} labels to pack, got {len(labels)}"
            )
        key = 0
        for label, width in zip(labels, widths):
            if label < 0 or label >= (1 << width):
                raise ConfigurationError(
                    f"label value {label} does not fit in {width} bits"
                )
            key = (key << width) | label
        return key

    def shifts(self) -> Tuple[int, ...]:
        """Per-component left-shift amounts of :meth:`pack`, canonical order.

        ``pack(labels) == OR(label << shift for label, shift in
        zip(labels, shifts()))`` — the one derivation shared by the fast
        packer and the combiner's staged walks.
        """
        amounts = []
        total = 0
        for width in reversed(self.field_widths()):
            amounts.append(total)
            total += width
        return tuple(reversed(amounts))

    def make_packer(self):
        """Return a fast ``labels -> key`` closure equivalent to :meth:`pack`.

        The closure precomputes the per-field shift amounts and skips the
        range validation — callers feed it labels that already passed through
        the label tables, so the checks :meth:`pack` performs for arbitrary
        input are redundant on the lookup hot path.  ``pack(labels) ==
        make_packer()(labels)`` for every valid label sequence.
        """
        s0, s1, s2, s3, s4, s5, s6 = self.shifts()

        def fast_pack(labels, _s0=s0, _s1=s1, _s2=s2, _s3=s3, _s4=s4, _s5=s5, _s6=s6):
            l0, l1, l2, l3, l4, l5, l6 = labels
            return (
                (l0 << _s0) | (l1 << _s1) | (l2 << _s2) | (l3 << _s3)
                | (l4 << _s4) | (l5 << _s5) | (l6 << _s6)
            )

        return fast_pack

    def unpack(self, key: int) -> Tuple[int, ...]:
        """Inverse of :meth:`pack`."""
        widths = self.field_widths()
        values = []
        for width in reversed(widths):
            values.append(key & ((1 << width) - 1))
            key >>= width
        return tuple(reversed(values))


#: Layout used throughout the library unless a caller overrides it.
DEFAULT_LABEL_LAYOUT = LabelKeyLayout()


class HashUnit:
    """Multiplicative/XOR-fold hash with a power-of-two table size."""

    #: 64-bit odd multiplicative constant (splitmix64 finaliser flavour).
    _MULTIPLIER = 0x9E3779B97F4A7C15

    def __init__(self, table_bits: int = 14) -> None:
        if not 1 <= table_bits <= 30:
            raise ConfigurationError(f"table_bits must be in [1, 30], got {table_bits}")
        self.table_bits = table_bits

    @property
    def table_size(self) -> int:
        """Number of slots the hash addresses (2**table_bits)."""
        return 1 << self.table_bits

    def hash(self, key: int) -> int:
        """Map a packed label key to a table slot index."""
        if key < 0:
            raise ConfigurationError(f"hash keys must be non-negative, got {key}")
        value = key & 0xFFFFFFFFFFFFFFFF
        # Fold anything above 64 bits back in so the full 68-bit key matters.
        value ^= key >> 64
        value = (value * self._MULTIPLIER) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 29
        value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 32
        return value & (self.table_size - 1)

    def hash_batch(self, keys: Sequence[int]) -> List[int]:
        """Vectorized :meth:`hash` over many keys (bit-identical per key).

        The splitmix-style mixing runs as NumPy ``uint64`` arithmetic (which
        wraps modulo 2**64 exactly like the masked Python arithmetic) when
        NumPy is available and the batch is big enough to amortise the array
        round-trip; otherwise it falls back to per-key :meth:`hash`.  Callers
        pass packed label keys, which are non-negative by construction.
        """
        if _np is None or len(keys) < 32:
            return [self.hash(key) for key in keys]
        mask64 = 0xFFFFFFFFFFFFFFFF
        count = len(keys)
        value = _np.fromiter((key & mask64 for key in keys), dtype=_np.uint64, count=count)
        value ^= _np.fromiter((key >> 64 for key in keys), dtype=_np.uint64, count=count)
        value *= _np.uint64(self._MULTIPLIER)
        value ^= value >> _np.uint64(29)
        value *= _np.uint64(0xBF58476D1CE4E5B9)
        value ^= value >> _np.uint64(32)
        value &= _np.uint64(self.table_size - 1)
        return value.tolist()

    def probe_sequence(self, key: int, limit: int):
        """Yield the first ``limit`` linear-probing slots for ``key``.

        The sequence is generated lazily: callers normally stop at the first
        empty slot, so materialising the full table-sized sequence would be
        wasted work.
        """
        if limit <= 0:
            raise ConfigurationError(f"probe limit must be positive, got {limit}")
        start = self.hash(key)
        mask = self.table_size - 1
        return ((start + offset) & mask for offset in range(limit))

"""Hardware hash unit for Rule Filter addressing.

Section IV.A of the paper: *"The final address to store each rule in the Rule
Filter block is performed using a hash function implemented in hardware"*, and
section IV.C.1: the highest-priority labels of every field are *"merged in one
large data segment (68 bits) in which a hash function is used to obtain the
HPMR address"*.

The model implements a simple multiplicative/XOR-fold hash over the packed
68-bit label key, plus linear probing for collision resolution so the
behavioural model never loses a rule to a hash collision (the FPGA design
would size the table and pick the hash to make collisions rare; the probing
steps are visible in the access counts, so collision cost is still modelled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["LabelKeyLayout", "HashUnit", "DEFAULT_LABEL_LAYOUT"]


@dataclass(frozen=True)
class LabelKeyLayout:
    """Bit widths used to pack per-field labels into the combined key.

    The paper uses 13-bit IP-segment labels, 7-bit port labels and a 2-bit
    protocol label, giving 4x13 + 2x7 + 2 = 68 bits.
    """

    ip_label_bits: int = 13
    port_label_bits: int = 7
    protocol_label_bits: int = 2

    @property
    def total_bits(self) -> int:
        """Width of the packed key in bits (68 with the paper's layout)."""
        return 4 * self.ip_label_bits + 2 * self.port_label_bits + self.protocol_label_bits

    def field_widths(self) -> Tuple[int, ...]:
        """Per-component widths in canonical order.

        Order: src-IP-high, src-IP-low, dst-IP-high, dst-IP-low, src-port,
        dst-port, protocol — the same order the label combiner produces.
        """
        return (
            self.ip_label_bits,
            self.ip_label_bits,
            self.ip_label_bits,
            self.ip_label_bits,
            self.port_label_bits,
            self.port_label_bits,
            self.protocol_label_bits,
        )

    def pack(self, labels: Sequence[int]) -> int:
        """Pack seven per-field label values into the combined integer key."""
        widths = self.field_widths()
        if len(labels) != len(widths):
            raise ConfigurationError(
                f"expected {len(widths)} labels to pack, got {len(labels)}"
            )
        key = 0
        for label, width in zip(labels, widths):
            if label < 0 or label >= (1 << width):
                raise ConfigurationError(
                    f"label value {label} does not fit in {width} bits"
                )
            key = (key << width) | label
        return key

    def unpack(self, key: int) -> Tuple[int, ...]:
        """Inverse of :meth:`pack`."""
        widths = self.field_widths()
        values = []
        for width in reversed(widths):
            values.append(key & ((1 << width) - 1))
            key >>= width
        return tuple(reversed(values))


#: Layout used throughout the library unless a caller overrides it.
DEFAULT_LABEL_LAYOUT = LabelKeyLayout()


class HashUnit:
    """Multiplicative/XOR-fold hash with a power-of-two table size."""

    #: 64-bit odd multiplicative constant (splitmix64 finaliser flavour).
    _MULTIPLIER = 0x9E3779B97F4A7C15

    def __init__(self, table_bits: int = 14) -> None:
        if not 1 <= table_bits <= 30:
            raise ConfigurationError(f"table_bits must be in [1, 30], got {table_bits}")
        self.table_bits = table_bits

    @property
    def table_size(self) -> int:
        """Number of slots the hash addresses (2**table_bits)."""
        return 1 << self.table_bits

    def hash(self, key: int) -> int:
        """Map a packed label key to a table slot index."""
        if key < 0:
            raise ConfigurationError(f"hash keys must be non-negative, got {key}")
        value = key & 0xFFFFFFFFFFFFFFFF
        # Fold anything above 64 bits back in so the full 68-bit key matters.
        value ^= key >> 64
        value = (value * self._MULTIPLIER) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 29
        value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 32
        return value & (self.table_size - 1)

    def probe_sequence(self, key: int, limit: int):
        """Yield the first ``limit`` linear-probing slots for ``key``.

        The sequence is generated lazily: callers normally stop at the first
        empty slot, so materialising the full table-sized sequence would be
        wasted work.
        """
        if limit <= 0:
            raise ConfigurationError(f"probe limit must be positive, got {limit}")
        start = self.hash(key)
        mask = self.table_size - 1
        return ((start + offset) & mask for offset in range(limit))

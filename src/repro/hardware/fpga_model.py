"""FPGA resource model (Table V).

The prototype targets Altera's Stratix V 5SGXMB6R3F43C4.  Synthesis results
obviously cannot be reproduced from Python, so this module provides a
calibrated *resource estimator*: given the memory bank of an instantiated
classifier and a description of the lookup logic, it estimates

* block memory bits (directly the sum of the memory blocks),
* logic utilisation in ALMs (a per-engine cost model calibrated against the
  paper's 79,835 ALM figure),
* register count (pipeline registers per stage plus per-block addressing),
* maximum frequency (a simple critical-path model: the base fabric speed
  derated by the widest memory block's address decode),
* I/O pin usage.

The constants are calibration knobs, not physics; EXPERIMENTS.md reports both
the paper's Table V numbers and the model's estimates side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ConfigurationError
from repro.hardware.memory import MemoryBank

__all__ = ["DeviceBudget", "STRATIX_V_5SGXMB6R3F43C4", "LogicInventory", "SynthesisEstimate", "FpgaResourceModel"]


@dataclass(frozen=True)
class DeviceBudget:
    """Available resources of the target FPGA device."""

    name: str
    alms: int
    block_memory_bits: int
    registers: int
    pins: int
    base_fmax_mhz: float


#: The device of Table V.  54,476,800 block-memory bits ~= 54 Mbit as stated
#: in section V.C; the ALM and pin budgets are the published device totals the
#: paper's utilisation row is measured against.
STRATIX_V_5SGXMB6R3F43C4 = DeviceBudget(
    name="Stratix V 5SGXMB6R3F43C4",
    alms=225_400,
    block_memory_bits=54_476_800,
    registers=901_600,
    pins=908,
    base_fmax_mhz=200.0,
)


@dataclass
class LogicInventory:
    """Inventory of the synthesised logic, used to estimate ALMs/registers.

    The per-engine constants are calibrated so that the full architecture
    (two MBT segment engines per IP field x 2 fields, two BST engines, the
    port register file, the protocol LUT, the label combiner and the hash
    unit) lands close to the paper's 79,835 ALMs / 129,273 registers.
    """

    mbt_engines: int = 4
    bst_engines: int = 4
    port_register_entries: int = 128
    protocol_table_entries: int = 256
    label_combiner_width_bits: int = 68
    pipeline_stages: int = 10
    hash_units: int = 1
    update_controllers: int = 1

    #: Calibrated ALM cost per unit of each logic class.
    ALM_COSTS: Dict[str, float] = field(
        default_factory=lambda: {
            "mbt_engine": 7_200.0,
            "bst_engine": 6_100.0,
            "port_register_entry": 58.0,
            "protocol_table": 900.0,
            "label_combiner_bit": 95.0,
            "pipeline_stage": 650.0,
            "hash_unit": 2_400.0,
            "update_controller": 3_000.0,
        }
    )

    def estimated_alms(self) -> float:
        """Estimate the ALM count of the control/datapath logic."""
        costs = self.ALM_COSTS
        return (
            self.mbt_engines * costs["mbt_engine"]
            + self.bst_engines * costs["bst_engine"]
            + self.port_register_entries * costs["port_register_entry"]
            + (1 if self.protocol_table_entries else 0) * costs["protocol_table"]
            + self.label_combiner_width_bits * costs["label_combiner_bit"]
            + self.pipeline_stages * costs["pipeline_stage"]
            + self.hash_units * costs["hash_unit"]
            + self.update_controllers * costs["update_controller"]
        )

    def estimated_registers(self) -> float:
        """Estimate the register count (pipeline + per-engine state).

        The datapath is replicated across the parallel engines and each of the
        ~10 pipeline stages carries the full header/label context, so the
        register count is dominated by per-engine working state; the constants
        are calibrated against the prototype's 129,273 registers.
        """
        per_stage = 68 + 32 + 16  # label key + header segment + control
        engine_state = (self.mbt_engines + self.bst_engines) * 9_000
        port_state = self.port_register_entries * 48
        return self.pipeline_stages * per_stage * 20 + engine_state + port_state + 28_000


@dataclass(frozen=True)
class SynthesisEstimate:
    """The Table V row produced by the model."""

    device: str
    logic_alms: int
    logic_alms_available: int
    block_memory_bits: int
    block_memory_bits_available: int
    registers: int
    fmax_mhz: float
    pins_used: int
    pins_available: int

    @property
    def logic_utilisation(self) -> float:
        """Fraction of device ALMs used."""
        return self.logic_alms / self.logic_alms_available

    @property
    def memory_utilisation(self) -> float:
        """Fraction of device block-memory bits used."""
        return self.block_memory_bits / self.block_memory_bits_available

    def as_table_row(self) -> Dict[str, str]:
        """Render in the same shape as Table V."""
        return {
            "Logical Utilization": f"{self.logic_alms:,} / {self.logic_alms_available:,}",
            "Total block memory bits": f"{self.block_memory_bits:,} / {self.block_memory_bits_available:,}",
            "Total registers": f"{self.registers:,}",
            "Maximum Frequency": f"{self.fmax_mhz:.2f} MHz",
            "Total Number Pins": f"{self.pins_used} / {self.pins_available}",
        }


class FpgaResourceModel:
    """Estimates Table V style synthesis results for an instantiated design."""

    #: Pins: 2 x 68-bit update buses + lookup request/response + control,
    #: rounded to the paper's 500 used pins by calibration.
    _PIN_ESTIMATE = 500

    def __init__(self, device: DeviceBudget = STRATIX_V_5SGXMB6R3F43C4) -> None:
        self.device = device

    def estimate(
        self,
        memory_bank: MemoryBank,
        logic: Optional[LogicInventory] = None,
        target_fmax_mhz: float = 133.51,
    ) -> SynthesisEstimate:
        """Produce a synthesis estimate for the given memory bank and logic.

        ``target_fmax_mhz`` is the paper's achieved frequency; the model only
        derates it further if the design's widest memory block implies a
        longer address-decode path than the prototype's.
        """
        logic = logic or LogicInventory()
        memory_bits = memory_bank.total_bits
        if memory_bits > self.device.block_memory_bits:
            raise ConfigurationError(
                f"design needs {memory_bits} block memory bits, device only has "
                f"{self.device.block_memory_bits}"
            )
        alms = int(round(logic.estimated_alms()))
        if alms > self.device.alms:
            raise ConfigurationError(
                f"design needs {alms} ALMs, device only has {self.device.alms}"
            )
        registers = int(round(logic.estimated_registers()))
        fmax = min(self.device.base_fmax_mhz, self._fmax_estimate(memory_bank, target_fmax_mhz))
        return SynthesisEstimate(
            device=self.device.name,
            logic_alms=alms,
            logic_alms_available=self.device.alms,
            block_memory_bits=memory_bits,
            block_memory_bits_available=self.device.block_memory_bits,
            registers=registers,
            fmax_mhz=fmax,
            pins_used=self._PIN_ESTIMATE,
            pins_available=self.device.pins,
        )

    def _fmax_estimate(self, memory_bank: MemoryBank, target_fmax_mhz: float) -> float:
        """Derate the target frequency for unusually deep memory blocks.

        The prototype's deepest block is a 16K-word memory; every doubling
        beyond that costs roughly 6% of Fmax (an extra address decode level).
        """
        deepest = max((block.depth for block in memory_bank), default=1)
        reference_depth = 1 << 14
        fmax = target_fmax_mhz
        depth = deepest
        while depth > reference_depth:
            fmax *= 0.94
            depth //= 2
        return fmax

"""Shared memory bank between the MBT level-2 memory and the BST memory.

Section IV.C.2 and Fig. 5 of the paper: because both IP lookup algorithms are
synthesised in hardware, implementing them side by side would double the
memory cost.  The proposed architecture instead *shares* physical memory: the
MBT level-2 block has the same geometry (depth and word width) as the BST node
block, so one physical RAM holds either "Data 1" (MBT level-2 nodes) or
"Data 2" (BST nodes) depending on the ``IPalg_s`` selection signal, and the
remaining MBT memory is reused for extra rule storage ("Data 3") when the BST
is selected.

:class:`SharedMemoryBank` models exactly that multiplexing: one physical
:class:`~repro.hardware.memory.MemoryBlock` with two logical *views*; only the
view selected by ``IPalg_s`` may be accessed, and switching the selection
invalidates whatever the other algorithm had loaded (the controller re-uploads
the memory image after reconfiguration, exactly as the SDN control plane
would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import ConfigurationError, MemoryModelError
from repro.hardware.memory import MemoryBlock

__all__ = ["SharedView", "SharedMemoryBank", "MemorySharingReport"]


@dataclass(frozen=True)
class SharedView:
    """One logical occupant of the shared physical memory."""

    name: str
    description: str


@dataclass(frozen=True)
class MemorySharingReport:
    """Snapshot of the sharing state (rendered by the Fig. 5 experiment)."""

    physical_name: str
    depth: int
    width: int
    total_bits: int
    active_view: str
    views: Dict[str, str]
    used_words: int
    reclaimed_bits: int


class SharedMemoryBank:
    """A physical memory block multiplexed between two logical views.

    Parameters
    ----------
    name:
        Name of the physical block (appears in memory reports).
    depth, width:
        Geometry shared by both views — the paper's point is precisely that the
        MBT level-2 memory and the BST memory have identical geometry.
    view_a, view_b:
        The two logical occupants (by convention A = MBT level 2, B = BST).
    reclaimable_bits:
        Bits of *other* MBT memory that become available for rule storage when
        view B (BST) is selected — the "Data 3" arrow of Fig. 5.
    """

    def __init__(
        self,
        name: str,
        depth: int,
        width: int,
        view_a: SharedView,
        view_b: SharedView,
        reclaimable_bits: int = 0,
    ) -> None:
        if view_a.name == view_b.name:
            raise ConfigurationError("the two shared views must have distinct names")
        if reclaimable_bits < 0:
            raise ConfigurationError("reclaimable_bits must be non-negative")
        self.physical = MemoryBlock(name, depth=depth, width=width)
        self.view_a = view_a
        self.view_b = view_b
        self.reclaimable_bits = reclaimable_bits
        self._active = view_a.name

    # -- selection ------------------------------------------------------------
    @property
    def active_view(self) -> str:
        """Name of the view currently owning the physical memory."""
        return self._active

    def select(self, view_name: str) -> bool:
        """Switch the ``IPalg_s`` multiplexer to ``view_name``.

        Returns True when the selection actually changed (in which case the
        physical contents are invalidated and must be re-uploaded by the
        controller).
        """
        if view_name not in (self.view_a.name, self.view_b.name):
            raise ConfigurationError(
                f"unknown shared view {view_name!r}; expected "
                f"{self.view_a.name!r} or {self.view_b.name!r}"
            )
        if view_name == self._active:
            return False
        self._active = view_name
        self.physical.clear_all()
        return True

    def _check_view(self, view_name: str) -> None:
        if view_name != self._active:
            raise MemoryModelError(
                f"view {view_name!r} is not selected on shared memory "
                f"{self.physical.name!r} (active: {self._active!r})"
            )

    # -- access (delegated to the physical block) ------------------------------
    def read(self, view_name: str, address: int):
        """Read through a view; the view must currently be selected."""
        self._check_view(view_name)
        return self.physical.read(address)

    def write(self, view_name: str, address: int, payload) -> None:
        """Write through a view; the view must currently be selected."""
        self._check_view(view_name)
        self.physical.write(address, payload)

    def allocate(self, view_name: str) -> int:
        """Allocate a free word through a view."""
        self._check_view(view_name)
        return self.physical.allocate()

    # -- accounting ---------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Capacity of the physical block."""
        return self.physical.total_bits

    def reclaimed_rule_bits(self) -> int:
        """Extra rule-storage bits available with the current selection.

        Zero when view A (MBT) is active; ``reclaimable_bits`` when view B
        (BST) is active — this is what lets the BST configuration hold 12K
        rules where MBT holds 8K in Table VI.
        """
        return self.reclaimable_bits if self._active == self.view_b.name else 0

    def report(self) -> MemorySharingReport:
        """Produce the sharing snapshot used by the Fig. 5 experiment."""
        return MemorySharingReport(
            physical_name=self.physical.name,
            depth=self.physical.depth,
            width=self.physical.width,
            total_bits=self.physical.total_bits,
            active_view=self._active,
            views={
                self.view_a.name: self.view_a.description,
                self.view_b.name: self.view_b.description,
            },
            used_words=self.physical.used_words,
            reclaimed_bits=self.reclaimed_rule_bits(),
        )

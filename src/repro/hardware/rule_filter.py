"""Rule Filter memory block.

The Rule Filter is the final memory of the lookup pipeline: it is addressed by
the hash of the combined label key and returns the Highest Priority Matching
Rule (rule id, priority and action).  Thanks to the label method it is
*independent of the chosen per-field algorithms* (section IV.C.2) — only the
label combination matters — which is why it lives here in the hardware layer
rather than inside any particular engine.

Collisions between distinct label keys are resolved by linear probing; each
probe step is one memory access and is therefore visible in both the cycle and
the memory-access accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import CapacityError, MemoryModelError
from repro.hardware.hash_unit import HashUnit
from repro.hardware.memory import MemoryBlock
from repro.observers import MutationEpoch
from repro.rules.rule import Rule

__all__ = ["RuleFilterEntry", "RuleFilterLookup", "RuleFilterMemory"]


@dataclass(frozen=True)
class RuleFilterEntry:
    """One stored rule entry: the packed label key it belongs to plus the rule."""

    label_key: int
    rule_id: int
    priority: int
    action: str


@dataclass(frozen=True)
class RuleFilterLookup:
    """Result of probing the rule filter with one label key."""

    entry: Optional[RuleFilterEntry]
    probes: int
    memory_accesses: int


class RuleFilterMemory(MutationEpoch):
    """Hash-addressed rule store shared by every algorithm combination.

    Carries the :class:`~repro.observers.MutationEpoch` surface: the
    :mod:`repro.perf` fast path memoizes lookup outcomes against the filter
    contents and drops them when the epoch advances past the one the memo
    was stamped with (every insert/delete bumps it).
    """

    #: Width of one rule-filter word: 68-bit key + rule id + priority + action
    #: pointer; 96 bits keeps the arithmetic round and matches the scale of the
    #: prototype's rule memory.
    WORD_WIDTH = 96

    def __init__(self, capacity: int = 16384, hash_unit: Optional[HashUnit] = None, name: str = "rule_filter") -> None:
        if capacity <= 0:
            raise MemoryModelError(f"rule filter capacity must be positive, got {capacity}")
        table_bits = max(1, (capacity - 1).bit_length())
        self.hash_unit = hash_unit or HashUnit(table_bits=table_bits)
        if self.hash_unit.table_size < capacity:
            raise MemoryModelError(
                f"hash unit addresses {self.hash_unit.table_size} slots, below capacity {capacity}"
            )
        self.capacity = capacity
        self.memory = MemoryBlock(name, depth=self.hash_unit.table_size, width=self.WORD_WIDTH)
        self._stored = 0
        # Scoped-invalidation surface, drained by the control plane once per
        # commit.  Two effects are tracked separately because they invalidate
        # differently:
        #
        # * ``_dirty_keys`` — label keys whose stored entries changed (were
        #   inserted, removed, or relocated by a backward-shift).  A lookup
        #   for any *other* key scans past those entries without caring what
        #   they hold, so only lookups of the dirty keys themselves change.
        # * ``_occupancy_origin`` — per touched slot, whether it was occupied
        #   before its first flip since the last drain.  Probe walks terminate
        #   at the first empty slot, so a *net* occupancy change moves the
        #   probe counts of every (missing) key homed in the surrounding run —
        #   an unbounded key set.  When that happens the drain reports
        #   "occupancy changed" and callers must treat every filter-derived
        #   memo as dirty.  A delete immediately followed by a re-insert (the
        #   dominant update-under-load pattern) refills the freed slot and
        #   nets out to no occupancy change at all.
        self._dirty_keys: set = set()
        self._occupancy_origin: dict = {}
        self._dirty_overflow = False

    # -- capacity -----------------------------------------------------------
    @property
    def stored_rules(self) -> int:
        """Number of rules currently stored."""
        return self._stored

    @property
    def total_bits(self) -> int:
        """Capacity of the underlying memory block in bits."""
        return self.memory.total_bits

    def reset_counters(self) -> None:
        """Zero the access counters of the underlying memory."""
        self.memory.reset_counters()

    # -- scoped invalidation -------------------------------------------------
    #: Cap on dirty keys + touched slots tracked between drains; beyond it the
    #: filter just reports "everything moved" (wholesale), bounding both the
    #: memory here and the per-commit pruning work of downstream caches.
    DIRTY_BUDGET = 4096

    def drain_dirty(self) -> Tuple[List[int], bool]:
        """Return and reset the dirty state recorded since the last drain.

        Returns ``(dirty keys, occupancy changed)``: the label keys whose
        lookup outcomes may have changed, and whether any slot's occupancy
        *net*-changed across the recorded mutations (or the tracking budget
        overflowed) — in which case probe counts shifted for an unbounded set
        of keys and the caller must treat the whole filter as dirty.
        """
        keys, origin = self._dirty_keys, self._occupancy_origin
        overflow = self._dirty_overflow
        self._dirty_keys = set()
        self._occupancy_origin = {}
        self._dirty_overflow = False
        peek = self.memory.peek
        occupancy_changed = overflow or any(
            (peek(slot) is not None) != occupied for slot, occupied in origin.items()
        )
        return sorted(keys), occupancy_changed

    def _note_entry_key(self, label_key: int) -> None:
        if self._dirty_overflow:
            return
        self._dirty_keys.add(label_key)
        if len(self._dirty_keys) + len(self._occupancy_origin) > self.DIRTY_BUDGET:
            self._overflow_dirty()

    def _note_occupancy(self, slot: int, was_occupied: bool) -> None:
        if self._dirty_overflow or slot in self._occupancy_origin:
            return
        self._occupancy_origin[slot] = was_occupied
        if len(self._dirty_keys) + len(self._occupancy_origin) > self.DIRTY_BUDGET:
            self._overflow_dirty()

    def _overflow_dirty(self) -> None:
        self._dirty_overflow = True
        self._dirty_keys.clear()
        self._occupancy_origin.clear()

    # -- update path -----------------------------------------------------------
    def insert(self, label_key: int, rule: Rule) -> Tuple[int, int]:
        """Store ``rule`` under ``label_key``.

        Returns ``(slot, memory_accesses)``.  Rules sharing the same label key
        (possible when two rules have identical field specifications apart
        from priority) are chained in the probe sequence; the lower-priority
        duplicate simply occupies the next free probe slot.
        """
        if self._stored >= self.capacity:
            raise CapacityError(
                f"rule filter full: {self._stored} rules stored, capacity {self.capacity}"
            )
        accesses = 0
        entry = RuleFilterEntry(
            label_key=label_key,
            rule_id=rule.rule_id,
            priority=rule.priority,
            action=rule.action.value,
        )
        for slot in self.hash_unit.probe_sequence(label_key, self.memory.depth):
            occupant = self.memory.read(slot)
            accesses += 1
            if occupant is None:
                self.memory.write(slot, entry)
                accesses += 1
                self._stored += 1
                self._note_entry_key(label_key)
                self._note_occupancy(slot, was_occupied=False)
                self.bump_mutation_epoch()
                return slot, accesses
        raise CapacityError(f"rule filter probing exhausted all {self.memory.depth} slots")

    def delete(self, label_key: int, rule_id: int) -> Tuple[bool, int]:
        """Remove the entry for ``rule_id`` under ``label_key``.

        Returns ``(deleted, memory_accesses)``.  The probe chain is left
        intact by re-inserting any displaced entries (backward-shift
        deletion), so lookups never cross a hole created by deletion.
        """
        accesses = 0
        target_slot: Optional[int] = None
        chain: List[Tuple[int, RuleFilterEntry]] = []
        for slot in self.hash_unit.probe_sequence(label_key, self.memory.depth):
            occupant = self.memory.read(slot)
            accesses += 1
            if occupant is None:
                break
            if occupant.label_key == label_key and occupant.rule_id == rule_id and target_slot is None:
                target_slot = slot
            elif target_slot is not None:
                chain.append((slot, occupant))
        if target_slot is None:
            return False, accesses
        self._note_entry_key(label_key)
        self._note_occupancy(target_slot, was_occupied=True)
        self.memory.clear(target_slot)
        accesses += 1
        self._stored -= 1
        # Re-insert the tail of the probe chain so no lookup hits the hole.
        # Each displaced entry's key is dirtied (its entry may land on a new
        # slot) and each freed/refilled slot's occupancy is tracked; the
        # re-inserts below record their own effects through insert().
        for slot, occupant in chain:
            self._note_entry_key(occupant.label_key)
            self._note_occupancy(slot, was_occupied=True)
            self.memory.clear(slot)
            accesses += 1
            self._stored -= 1
        for _, occupant in chain:
            rule_like = _entry_as_rule(occupant)
            _, extra = self.insert(occupant.label_key, rule_like)
            accesses += extra
        self.bump_mutation_epoch()
        return True, accesses

    # -- lookup path --------------------------------------------------------------
    def lookup(self, label_key: int) -> RuleFilterLookup:
        """Return the best-priority entry stored under ``label_key``."""
        accesses = 0
        probes = 0
        best: Optional[RuleFilterEntry] = None
        for slot in self.hash_unit.probe_sequence(label_key, self.memory.depth):
            occupant = self.memory.read(slot)
            accesses += 1
            probes += 1
            if occupant is None:
                break
            if occupant.label_key == label_key:
                if best is None or occupant.priority < best.priority:
                    best = occupant
        return RuleFilterLookup(entry=best, probes=probes, memory_accesses=accesses)

    def lookup_batch(self, label_keys) -> dict:
        """Resolve many keys in one pass: ``{key: (entry, probes)}``.

        The compact batch form of :meth:`lookup`: per key, ``entry`` and
        ``probes`` are exactly what :meth:`lookup` would report, and — as in
        :meth:`lookup`, where every probe is one memory access —
        ``memory_accesses == probes``, so the pair carries the full
        :class:`RuleFilterLookup` information without constructing one record
        per key.  Duplicate keys are resolved once.  The memory's read
        counter is updated in one bulk
        :meth:`~repro.hardware.memory.MemoryBlock.count_reads` call instead
        of per probe, which is what makes this the cold-path workhorse of the
        :mod:`repro.perf` vectorized batch engine.
        """
        keys = label_keys if isinstance(label_keys, list) else list(label_keys)
        reader = self.memory.batch_reader()
        mask = self.hash_unit.table_size - 1
        depth = self.memory.depth
        results: dict = {}
        total_reads = 0
        for key, slot in zip(keys, self.hash_unit.hash_batch(keys)):
            if key in results:
                continue
            probes = 0
            best: Optional[RuleFilterEntry] = None
            for _ in range(depth):
                occupant = reader(slot)
                probes += 1
                if occupant is None:
                    break
                if occupant.label_key == key and (best is None or occupant.priority < best.priority):
                    best = occupant
                slot = (slot + 1) & mask
            total_reads += probes
            results[key] = (best, probes)
        self.memory.count_reads(total_reads)
        return results

    def entries(self) -> List[RuleFilterEntry]:
        """Every stored entry (verification helper, not access-counted)."""
        return [payload for _, payload in self.memory.items()]


def _entry_as_rule(entry: RuleFilterEntry) -> Rule:
    """Rebuild a minimal Rule carrying only the identity the filter stores.

    Only ``rule_id``, ``priority`` and ``action`` matter to the rule filter;
    the field specifications are irrelevant once the label key is known, so a
    fully wildcarded rule carrying the right identity is sufficient for
    re-insertion during backward-shift deletion.
    """
    from repro.rules.rule import RuleAction

    return Rule.build(
        rule_id=entry.rule_id,
        priority=entry.priority,
        action=RuleAction(entry.action),
    )

"""Behavioural model of on-chip memory blocks.

The FPGA prototype of the paper is built from explicit memory blocks
(algorithm node memories, label list memories, the rule filter memory).  The
evaluation metrics — memory accesses per lookup/update and total memory bits —
are all properties of those blocks, so the Python model makes each block an
explicit object that:

* has a fixed geometry (``depth`` words of ``width`` bits),
* stores arbitrary Python payloads per word (the behavioural content),
* counts every read and write port access,
* refuses out-of-range addresses and over-wide data, which is how geometry
  bugs in the builders are caught early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.exceptions import CapacityError, MemoryModelError

__all__ = ["AccessCounter", "MemoryBlock", "MemoryBank"]


@dataclass
class AccessCounter:
    """Read/write access counters attached to every memory block."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total number of accesses of either kind."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero both counters (used between benchmark phases)."""
        self.reads = 0
        self.writes = 0

    def snapshot(self) -> Tuple[int, int]:
        """Return ``(reads, writes)`` at this instant."""
        return (self.reads, self.writes)


class MemoryBlock:
    """A single on-chip memory of ``depth`` words x ``width`` bits.

    The payload stored per word is an arbitrary Python object (a trie node, a
    label list pointer, a rule entry...).  The ``width`` is purely an
    accounting property: it defines how many bits this block contributes to
    the total memory budget and is what the FPGA resource model adds up.
    """

    def __init__(self, name: str, depth: int, width: int) -> None:
        if depth <= 0:
            raise MemoryModelError(f"memory block {name!r} needs positive depth, got {depth}")
        if width <= 0:
            raise MemoryModelError(f"memory block {name!r} needs positive width, got {width}")
        self.name = name
        self.depth = depth
        self.width = width
        self.counter = AccessCounter()
        self._words: Dict[int, Any] = {}

    # -- geometry / accounting ------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total capacity of the block in bits (depth x width)."""
        return self.depth * self.width

    @property
    def used_words(self) -> int:
        """Number of words currently holding a payload."""
        return len(self._words)

    @property
    def used_bits(self) -> int:
        """Bits corresponding to occupied words."""
        return self.used_words * self.width

    @property
    def occupancy(self) -> float:
        """Fraction of words in use."""
        return self.used_words / self.depth

    def reset_counters(self) -> None:
        """Zero the access counters without touching the contents."""
        self.counter.reset()

    # -- access -----------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise MemoryModelError(
                f"address {address} out of range for memory block {self.name!r} "
                f"(depth {self.depth})"
            )

    def read(self, address: int) -> Any:
        """Read the payload at ``address`` (counts one read access)."""
        self._check_address(address)
        self.counter.reads += 1
        return self._words.get(address)

    def write(self, address: int, payload: Any) -> None:
        """Write ``payload`` at ``address`` (counts one write access)."""
        self._check_address(address)
        self.counter.writes += 1
        self._words[address] = payload

    def clear(self, address: int) -> None:
        """Erase the word at ``address`` (counts one write access)."""
        self._check_address(address)
        self.counter.writes += 1
        self._words.pop(address, None)

    def clear_all(self) -> None:
        """Erase the whole block (not counted: models a reset line)."""
        self._words.clear()

    def allocate(self) -> int:
        """Return the lowest free address, raising when the block is full."""
        for address in range(self.depth):
            if address not in self._words:
                return address
        raise CapacityError(f"memory block {self.name!r} is full ({self.depth} words)")

    def peek(self, address: int) -> Any:
        """Read without counting an access (debug/verification use only)."""
        self._check_address(address)
        return self._words.get(address)

    def batch_reader(self):
        """Uncounted raw read function for batch lookup engines.

        Returns a ``payload = reader(address)`` callable (``None`` for empty
        words) that skips the per-access bounds check and counter update of
        :meth:`read` — the caller owns address validity and must account its
        reads in one bulk :meth:`count_reads` call, keeping the block's
        counters consistent with an equivalent sequence of :meth:`read` calls.
        """
        return self._words.get

    def count_reads(self, count: int) -> None:
        """Account ``count`` read accesses in one bulk update (batch ports)."""
        if count < 0:
            raise MemoryModelError(f"read count must be non-negative, got {count}")
        self.counter.reads += count

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate ``(address, payload)`` pairs of occupied words (not counted)."""
        return iter(sorted(self._words.items()))

    def __len__(self) -> int:
        return self.used_words

    def __repr__(self) -> str:
        return (
            f"MemoryBlock(name={self.name!r}, depth={self.depth}, width={self.width}, "
            f"used={self.used_words})"
        )


@dataclass
class MemoryBank:
    """A named collection of memory blocks with aggregate accounting.

    The classifier instantiates one bank holding every block of the design
    (algorithm memories, label memories, rule filter); the FPGA resource
    model and the reports then only need the bank.
    """

    name: str
    blocks: List[MemoryBlock] = field(default_factory=list)

    def add(self, block: MemoryBlock) -> MemoryBlock:
        """Register a block with the bank and return it."""
        if any(existing.name == block.name for existing in self.blocks):
            raise MemoryModelError(f"duplicate memory block name {block.name!r} in bank {self.name!r}")
        self.blocks.append(block)
        return block

    def new_block(self, name: str, depth: int, width: int) -> MemoryBlock:
        """Create, register and return a new block."""
        return self.add(MemoryBlock(name, depth, width))

    def get(self, name: str) -> MemoryBlock:
        """Return the block called ``name``."""
        for block in self.blocks:
            if block.name == name:
                return block
        raise MemoryModelError(f"no memory block named {name!r} in bank {self.name!r}")

    def __contains__(self, name: object) -> bool:
        return any(block.name == name for block in self.blocks)

    def __iter__(self) -> Iterator[MemoryBlock]:
        return iter(self.blocks)

    # -- aggregate accounting ---------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Sum of the capacities of every block, in bits."""
        return sum(block.total_bits for block in self.blocks)

    @property
    def used_bits(self) -> int:
        """Sum of occupied bits over every block."""
        return sum(block.used_bits for block in self.blocks)

    @property
    def total_accesses(self) -> int:
        """Total reads + writes over every block."""
        return sum(block.counter.total for block in self.blocks)

    @property
    def total_reads(self) -> int:
        """Total reads over every block."""
        return sum(block.counter.reads for block in self.blocks)

    @property
    def total_writes(self) -> int:
        """Total writes over every block."""
        return sum(block.counter.writes for block in self.blocks)

    def reset_counters(self) -> None:
        """Zero the counters of every block."""
        for block in self.blocks:
            block.reset_counters()

    def access_report(self) -> Dict[str, Tuple[int, int]]:
        """Per-block ``(reads, writes)`` snapshot."""
        return {block.name: block.counter.snapshot() for block in self.blocks}

    def utilisation_report(self) -> Dict[str, Dict[str, float]]:
        """Per-block geometry and occupancy summary."""
        return {
            block.name: {
                "depth": block.depth,
                "width": block.width,
                "total_bits": block.total_bits,
                "used_words": block.used_words,
                "occupancy": block.occupancy,
            }
            for block in self.blocks
        }

    def find(self, prefix: str) -> List[MemoryBlock]:
        """Return the blocks whose name starts with ``prefix``."""
        return [block for block in self.blocks if block.name.startswith(prefix)]

    def subtotal_bits(self, prefix: str) -> int:
        """Total bits of the blocks whose name starts with ``prefix``."""
        return sum(block.total_bits for block in self.find(prefix))

    def merge_counters(self) -> AccessCounter:
        """Return one counter aggregating every block (a copy, not live)."""
        merged = AccessCounter()
        for block in self.blocks:
            merged.reads += block.counter.reads
            merged.writes += block.counter.writes
        return merged

    def __len__(self) -> int:
        return len(self.blocks)

"""Clock-cycle accounting.

The paper reports per-operation costs in clock cycles (section V.A/V.B):
protocol lookup 1 cycle, port lookup 2 cycles, MBT 6-cycle latency with
1-packet-per-cycle pipelined throughput, BST up to 16 cycles per packet,
+1 cycle to dereference the label-list pointer and +2 cycles for the final
combination / rule-filter access; updates take 2 cycles per rule plus 1 hash
cycle.  :class:`CycleReport` is the structured record of one operation's cycle
breakdown and :class:`ClockModel` turns cycle counts into wall-clock time and
throughput given a clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.exceptions import ConfigurationError

__all__ = ["CycleReport", "ClockModel", "merge_reports"]


@dataclass
class CycleReport:
    """Cycle breakdown of one operation (a lookup or an update).

    ``latency_cycles`` is the end-to-end latency seen by a single packet;
    ``occupancy_cycles`` is the number of cycles during which the pipeline is
    busy with this packet and cannot accept another one — for a fully
    pipelined engine (MBT) the occupancy is 1 even though the latency is 6.
    """

    operation: str
    phases: Dict[str, int] = field(default_factory=dict)
    pipelined: bool = False

    def add_phase(self, name: str, cycles: int) -> None:
        """Record ``cycles`` spent in pipeline phase ``name`` (accumulates)."""
        if cycles < 0:
            raise ConfigurationError(f"negative cycle count {cycles} for phase {name!r}")
        self.phases[name] = self.phases.get(name, 0) + cycles

    @property
    def latency_cycles(self) -> int:
        """End-to-end latency in cycles (sum of every phase)."""
        return sum(self.phases.values())

    @property
    def occupancy_cycles(self) -> int:
        """Cycles before the next operation can enter the engine.

        A pipelined operation occupies the slowest single stage — which the
        architecture of the paper keeps at one cycle — whereas a non-pipelined
        operation occupies its full latency.
        """
        if not self.phases:
            return 0
        if self.pipelined:
            return 1
        return self.latency_cycles

    def phase_breakdown(self) -> Dict[str, int]:
        """Copy of the per-phase cycle mapping."""
        return dict(self.phases)

    def __repr__(self) -> str:
        return (
            f"CycleReport({self.operation!r}, latency={self.latency_cycles}, "
            f"occupancy={self.occupancy_cycles}, pipelined={self.pipelined})"
        )


def merge_reports(operation: str, reports: Iterable[CycleReport], pipelined: bool = False) -> CycleReport:
    """Merge several reports into one (phases with equal names accumulate)."""
    merged = CycleReport(operation=operation, pipelined=pipelined)
    for report in reports:
        for name, cycles in report.phases.items():
            merged.add_phase(name, cycles)
    return merged


@dataclass(frozen=True)
class ClockModel:
    """Converts cycle counts into time and throughput.

    The default frequency is the maximum frequency reported in Table V for
    the Stratix V prototype (133.51 MHz).
    """

    frequency_hz: float = 133.51e6

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"clock frequency must be positive, got {self.frequency_hz}")

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1e9 / self.frequency_hz

    def time_ns(self, cycles: int) -> float:
        """Wall-clock nanoseconds taken by ``cycles`` clock cycles."""
        return cycles * self.cycle_time_ns

    def lookups_per_second(self, cycles_per_lookup: float) -> float:
        """Sustained lookup rate given the per-lookup occupancy in cycles."""
        if cycles_per_lookup <= 0:
            raise ConfigurationError("cycles per lookup must be positive")
        return self.frequency_hz / cycles_per_lookup

    def throughput_gbps(self, cycles_per_packet: float, packet_bytes: int = 40) -> float:
        """Line-rate throughput in Gbit/s for back-to-back minimum-size packets.

        This is the model behind Tables VI/VII: MBT sustains one packet per
        cycle, so at 133.51 MHz and 40-byte packets the throughput is
        133.51e6 x 320 bits = 42.7 Gbps; BST needs ~16 cycles per packet and
        lands at about 2.67 Gbps.
        """
        if packet_bytes <= 0:
            raise ConfigurationError("packet size must be positive")
        return self.lookups_per_second(cycles_per_packet) * packet_bytes * 8 / 1e9

    def summarize(self, reports: Mapping[str, CycleReport], packet_bytes: int = 40) -> Dict[str, Dict[str, float]]:
        """Build a throughput/latency summary for a set of named operations."""
        summary: Dict[str, Dict[str, float]] = {}
        for name, report in reports.items():
            occupancy = max(1, report.occupancy_cycles)
            summary[name] = {
                "latency_cycles": float(report.latency_cycles),
                "latency_ns": self.time_ns(report.latency_cycles),
                "occupancy_cycles": float(occupancy),
                "lookups_per_second": self.lookups_per_second(occupancy),
                "throughput_gbps": self.throughput_gbps(occupancy, packet_bytes),
            }
        return summary

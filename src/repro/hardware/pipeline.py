"""Four-phase lookup pipeline model (Fig. 3).

The paper identifies four pipelined phases in the lookup process:

1. **Dispatch** — the ``Lookup_s`` signal starts the search and the packet
   header is split into segments routed to the selected algorithms;
2. **Parallel field lookup** — every selected single-field engine searches its
   segment and returns a pointer to a list of matching labels;
3. **Label combination** — the per-field label lists are combined (the
   highest-priority labels form the 68-bit key) to find the HPMR address;
4. **Rule fetch** — the Rule Filter memory is read and the HPMR plus its
   action are returned.

:class:`PipelineModel` simulates a stream of packets through those phases and
produces per-packet start/finish times plus aggregate throughput — this is the
machinery behind the Fig. 3 reproduction and behind the pipelined-vs-iterative
throughput distinction between MBT and BST in Tables VI/VII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["PipelinePhase", "PacketTimeline", "PipelineTrace", "PipelineModel", "PAPER_PHASES"]


@dataclass(frozen=True)
class PipelinePhase:
    """One pipeline phase: a name, a per-packet latency and whether it is
    internally pipelined (can accept a new packet every cycle regardless of
    its latency)."""

    name: str
    latency_cycles: int
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ConfigurationError(f"phase {self.name!r} has negative latency")


#: The four phases of Fig. 3 with the MBT configuration's latencies:
#: dispatch 1, parallel field lookup 6 (MBT latency dominates), label fetch /
#: combination 1 + hash, final rule fetch 2.
PAPER_PHASES: Sequence[PipelinePhase] = (
    PipelinePhase("dispatch", 1, pipelined=True),
    PipelinePhase("field_lookup", 6, pipelined=True),
    PipelinePhase("label_combination", 1, pipelined=True),
    PipelinePhase("rule_fetch", 2, pipelined=True),
)


@dataclass(frozen=True)
class PacketTimeline:
    """Cycle-level schedule of one packet through every phase."""

    packet_index: int
    phase_entry: Dict[str, int]
    phase_exit: Dict[str, int]

    @property
    def start_cycle(self) -> int:
        """Cycle at which the packet enters the first phase."""
        return min(self.phase_entry.values())

    @property
    def finish_cycle(self) -> int:
        """Cycle at which the packet leaves the last phase."""
        return max(self.phase_exit.values())

    @property
    def latency_cycles(self) -> int:
        """End-to-end latency of this packet."""
        return self.finish_cycle - self.start_cycle


@dataclass
class PipelineTrace:
    """Aggregate result of streaming a batch of packets through the pipeline."""

    timelines: List[PacketTimeline] = field(default_factory=list)

    @property
    def packets(self) -> int:
        """Number of packets streamed."""
        return len(self.timelines)

    @property
    def total_cycles(self) -> int:
        """Cycle at which the last packet completes."""
        return max((t.finish_cycle for t in self.timelines), default=0)

    @property
    def average_latency(self) -> float:
        """Mean per-packet latency in cycles."""
        if not self.timelines:
            return 0.0
        return sum(t.latency_cycles for t in self.timelines) / len(self.timelines)

    @property
    def steady_state_cycles_per_packet(self) -> float:
        """Observed initiation interval once the pipeline is full."""
        if len(self.timelines) < 2:
            return float(self.timelines[0].latency_cycles) if self.timelines else 0.0
        starts = sorted(t.start_cycle for t in self.timelines)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        return sum(gaps) / len(gaps)

    def occupancy_diagram(self, max_packets: int = 8) -> str:
        """Render a small ASCII space-time diagram (the Fig. 3 visual)."""
        lines = []
        for timeline in self.timelines[:max_packets]:
            row = [f"pkt{timeline.packet_index:>3} |"]
            horizon = self.timelines[min(max_packets, len(self.timelines)) - 1].finish_cycle
            for cycle in range(horizon + 1):
                marker = "."
                for phase, entry in timeline.phase_entry.items():
                    if entry <= cycle < timeline.phase_exit[phase]:
                        marker = phase[0].upper()
                        break
                row.append(marker)
            lines.append("".join(row))
        return "\n".join(lines)


class PipelineModel:
    """Simulates in-order packets flowing through a linear pipeline."""

    def __init__(self, phases: Sequence[PipelinePhase] = PAPER_PHASES) -> None:
        if not phases:
            raise ConfigurationError("a pipeline needs at least one phase")
        self.phases = list(phases)

    @property
    def total_latency(self) -> int:
        """Latency of one packet through an empty pipeline."""
        return sum(phase.latency_cycles for phase in self.phases)

    @property
    def initiation_interval(self) -> int:
        """Cycles between successive packet admissions in steady state.

        A fully pipelined phase admits a new packet every cycle; a
        non-pipelined phase blocks for its whole latency.  The pipeline's
        initiation interval is the maximum over the phases.
        """
        interval = 1
        for phase in self.phases:
            cost = 1 if phase.pipelined else max(1, phase.latency_cycles)
            interval = max(interval, cost)
        return interval

    def run(self, packet_count: int) -> PipelineTrace:
        """Stream ``packet_count`` back-to-back packets and return the trace."""
        if packet_count < 0:
            raise ConfigurationError(f"packet count must be non-negative, got {packet_count}")
        trace = PipelineTrace()
        # Earliest cycle at which each phase becomes free again.
        phase_free = {phase.name: 0 for phase in self.phases}
        for index in range(packet_count):
            entry: Dict[str, int] = {}
            exit_: Dict[str, int] = {}
            ready = index * 0  # packets arrive back to back from cycle 0
            previous_exit = ready
            for phase in self.phases:
                start = max(previous_exit, phase_free[phase.name])
                finish = start + max(1, phase.latency_cycles)
                entry[phase.name] = start
                exit_[phase.name] = finish
                # A pipelined phase frees one cycle after accepting the packet,
                # a non-pipelined phase only when the packet leaves it.
                phase_free[phase.name] = start + (1 if phase.pipelined else max(1, phase.latency_cycles))
                previous_exit = finish
            trace.timelines.append(PacketTimeline(index, entry, exit_))
        return trace

    def throughput_cycles_per_packet(self, packet_count: int = 64) -> float:
        """Steady-state cycles per packet measured from a simulated stream."""
        if packet_count < 2:
            return float(self.total_latency)
        trace = self.run(packet_count)
        finishes = sorted(t.finish_cycle for t in trace.timelines)
        # Ignore pipeline fill: measure the spacing of completions in the tail.
        tail = finishes[len(finishes) // 2 :]
        if len(tail) < 2:
            return float(self.total_latency)
        return (tail[-1] - tail[0]) / (len(tail) - 1)

"""Binary memory images exchanged between the control plane and the device.

Section IV.A of the paper: *"A set of binary files are created using C++ with
the data needed for the hardware architecture, simulating a control plane of
SDN"*.  The controller computes, per memory block, the list of
``(address, data word)`` pairs that must be uploaded; the hardware simply
writes them.

:class:`MemoryImage` is the Python equivalent of those binary files: an
ordered sequence of :class:`MemoryWrite` records grouped per target block,
with a compact binary serialisation (so the "file" nature of the artefact is
preserved and can be round-tripped through disk or a socket) and an ``apply``
helper that uploads the image into a :class:`~repro.hardware.memory.MemoryBank`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.exceptions import MemoryModelError
from repro.hardware.memory import MemoryBank

__all__ = ["MemoryWrite", "MemoryImage"]

_HEADER = struct.Struct("<4sI")
_RECORD = struct.Struct("<HIQ")
_MAGIC = b"RIMG"


@dataclass(frozen=True)
class MemoryWrite:
    """One word to upload: target block, address and the raw data word.

    ``data`` is the packed integer representation of the word (what the real
    binary file would carry); ``payload`` is the rich Python object the
    behavioural model stores so lookups can interpret the word without a
    decoder for every block format.
    """

    block: str
    address: int
    data: int
    payload: object = None


@dataclass
class MemoryImage:
    """An ordered batch of memory writes produced by the control plane."""

    name: str
    writes: List[MemoryWrite] = field(default_factory=list)

    def add(self, block: str, address: int, data: int, payload: object = None) -> None:
        """Append one write record."""
        if address < 0:
            raise MemoryModelError(f"negative address {address} in memory image {self.name!r}")
        if data < 0:
            raise MemoryModelError(f"negative data word {data} in memory image {self.name!r}")
        self.writes.append(MemoryWrite(block=block, address=address, data=data, payload=payload))

    def extend(self, writes: Iterable[MemoryWrite]) -> None:
        """Append several write records."""
        for write in writes:
            self.add(write.block, write.address, write.data, write.payload)

    # -- accounting -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.writes)

    def blocks(self) -> List[str]:
        """Names of the target blocks, in first-appearance order."""
        seen: Dict[str, None] = {}
        for write in self.writes:
            seen.setdefault(write.block, None)
        return list(seen)

    def writes_per_block(self) -> Dict[str, int]:
        """Number of word writes per target block."""
        counts: Dict[str, int] = {}
        for write in self.writes:
            counts[write.block] = counts.get(write.block, 0) + 1
        return counts

    # -- binary round trip -------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the image to the compact binary wire format.

        Only the ``(block index, address, data)`` triples are serialised —
        exactly the information the authors' C++ binary files would carry.
        The rich payload objects are a behavioural-model convenience and are
        not part of the wire format.
        """
        block_names = self.blocks()
        out = bytearray()
        out += _HEADER.pack(_MAGIC, len(block_names))
        for name in block_names:
            encoded = name.encode("utf-8")
            out += struct.pack("<H", len(encoded))
            out += encoded
        out += struct.pack("<I", len(self.writes))
        index_of = {name: index for index, name in enumerate(block_names)}
        for write in self.writes:
            out += _RECORD.pack(index_of[write.block], write.address, write.data & 0xFFFFFFFFFFFFFFFF)
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, name: str = "image") -> "MemoryImage":
        """Parse the binary wire format back into a :class:`MemoryImage`."""
        magic, block_count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise MemoryModelError("not a repro memory image (bad magic)")
        offset = _HEADER.size
        block_names: List[str] = []
        for _ in range(block_count):
            (length,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            block_names.append(blob[offset : offset + length].decode("utf-8"))
            offset += length
        (record_count,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        image = cls(name=name)
        for _ in range(record_count):
            block_index, address, data = _RECORD.unpack_from(blob, offset)
            offset += _RECORD.size
            image.add(block_names[block_index], address, data)
        return image

    # -- upload ---------------------------------------------------------------------
    def apply(self, bank: MemoryBank) -> Tuple[int, int]:
        """Upload the image into ``bank``.

        Returns ``(words_written, blocks_touched)``.  Every word write counts
        as one memory write access on the target block, mirroring the
        "simple memory upload" cost model of section V.A.
        """
        touched = set()
        for write in self.writes:
            block = bank.get(write.block)
            block.write(write.address, write.payload if write.payload is not None else write.data)
            touched.add(write.block)
        return len(self.writes), len(touched)

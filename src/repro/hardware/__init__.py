"""Behavioural hardware model.

Everything the FPGA prototype provides that the evaluation depends on is
modelled here as explicit Python objects:

* :mod:`~repro.hardware.memory` — access-counted memory blocks and banks;
* :mod:`~repro.hardware.clock` — cycle reports and the cycles→throughput model;
* :mod:`~repro.hardware.hash_unit` — the 68-bit label-key layout and the
  rule-filter addressing hash;
* :mod:`~repro.hardware.rule_filter` — the hash-addressed Rule Filter memory;
* :mod:`~repro.hardware.memory_sharing` — the MBT-L2 / BST shared memory bank
  (Fig. 5);
* :mod:`~repro.hardware.pipeline` — the four-phase lookup pipeline (Fig. 3);
* :mod:`~repro.hardware.memory_image` — binary memory images uploaded by the
  control plane;
* :mod:`~repro.hardware.fpga_model` — the Stratix V resource estimator
  (Table V).
"""

from repro.hardware.clock import ClockModel, CycleReport, merge_reports
from repro.hardware.fpga_model import (
    DeviceBudget,
    FpgaResourceModel,
    LogicInventory,
    STRATIX_V_5SGXMB6R3F43C4,
    SynthesisEstimate,
)
from repro.hardware.hash_unit import DEFAULT_LABEL_LAYOUT, HashUnit, LabelKeyLayout
from repro.hardware.memory import AccessCounter, MemoryBank, MemoryBlock
from repro.hardware.memory_image import MemoryImage, MemoryWrite
from repro.hardware.memory_sharing import MemorySharingReport, SharedMemoryBank, SharedView
from repro.hardware.pipeline import (
    PAPER_PHASES,
    PacketTimeline,
    PipelineModel,
    PipelinePhase,
    PipelineTrace,
)
from repro.hardware.rule_filter import RuleFilterEntry, RuleFilterLookup, RuleFilterMemory

__all__ = [
    "AccessCounter",
    "MemoryBlock",
    "MemoryBank",
    "ClockModel",
    "CycleReport",
    "merge_reports",
    "HashUnit",
    "LabelKeyLayout",
    "DEFAULT_LABEL_LAYOUT",
    "RuleFilterMemory",
    "RuleFilterEntry",
    "RuleFilterLookup",
    "SharedMemoryBank",
    "SharedView",
    "MemorySharingReport",
    "PipelineModel",
    "PipelinePhase",
    "PipelineTrace",
    "PacketTimeline",
    "PAPER_PHASES",
    "MemoryImage",
    "MemoryWrite",
    "FpgaResourceModel",
    "LogicInventory",
    "DeviceBudget",
    "SynthesisEstimate",
    "STRATIX_V_5SGXMB6R3F43C4",
]

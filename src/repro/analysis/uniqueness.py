"""Unique rule field analysis (Table II) and the label-method storage argument.

Table II counts, for three sizes of the acl1 filter, how many *distinct*
values each of the five fields takes — the quantity that determines label
table sizes and the storage saved by avoiding rule-field repetition (section
III.C claims "the storage requirement can be reduced by more than 50%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.rules.packet import FIVE_TUPLE_FIELDS
from repro.rules.ruleset import RuleSet

__all__ = ["UniqueFieldReport", "unique_field_report", "storage_reduction"]

#: Field storage widths used for the storage-reduction estimate: prefix value
#: + length for IPs, low/high for ports, value + wildcard flag for protocol.
_FIELD_BITS: Dict[str, int] = {
    "src_ip": 32 + 6,
    "dst_ip": 32 + 6,
    "src_port": 32,
    "dst_port": 32,
    "protocol": 9,
}

#: Paper's Table II row labels in display order.
PAPER_FIELD_LABELS: Dict[str, str] = {
    "src_ip": "Source IP Address",
    "dst_ip": "Destination IP Address",
    "src_port": "Source Port",
    "dst_port": "Destination Port",
    "protocol": "Protocol",
}


@dataclass(frozen=True)
class UniqueFieldReport:
    """Unique-value counts of one rule set (one column of Table II)."""

    name: str
    rules: int
    unique_counts: Dict[str, int]

    def total_unique_fields(self) -> int:
        """Sum of unique values across the five fields."""
        return sum(self.unique_counts.values())

    def duplication_ratio(self) -> float:
        """Average number of rules sharing each unique field value."""
        total_fields = self.rules * len(FIVE_TUPLE_FIELDS)
        unique = self.total_unique_fields()
        return total_fields / unique if unique else 0.0


def unique_field_report(ruleset: RuleSet) -> UniqueFieldReport:
    """Count the unique values of every field in ``ruleset``."""
    return UniqueFieldReport(
        name=ruleset.name,
        rules=len(ruleset),
        unique_counts={name: ruleset.unique_field_values(name) for name in FIVE_TUPLE_FIELDS},
    )


def storage_reduction(ruleset: RuleSet) -> float:
    """Fraction of field storage saved by storing each unique value once.

    Flat storage keeps every field of every rule; label-method storage keeps
    each unique field value once plus a per-rule tuple of labels (68 bits).
    The paper quotes "more than 50%" for the acl1 sets.
    """
    if not len(ruleset):
        return 0.0
    flat_bits = sum(len(ruleset) * bits for bits in _FIELD_BITS.values())
    unique_bits = sum(
        ruleset.unique_field_values(name) * bits for name, bits in _FIELD_BITS.items()
    )
    label_tuple_bits = len(ruleset) * 68
    labelled_bits = unique_bits + label_tuple_bits
    return 1.0 - labelled_bits / flat_bits


def table_ii_rows(reports: Sequence[UniqueFieldReport]) -> List[Dict[str, str]]:
    """Render a list of per-rule-set reports in the layout of Table II."""
    rows: List[Dict[str, str]] = []
    for field in FIVE_TUPLE_FIELDS:
        row = {"Packet Header Field": PAPER_FIELD_LABELS[field]}
        for report in reports:
            row[f"{report.name} ({report.rules} rules)"] = str(report.unique_counts[field])
        rows.append(row)
    return rows

"""Plain-text table rendering for the experiment drivers.

Every experiment produces structured rows; the benchmarks and examples print
them with :func:`format_table`, which renders an aligned ASCII table (no
external dependencies, stable column order), and :func:`format_kv` for simple
key/value blocks such as Table V.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv", "format_number"]


def format_number(value, digits: int = 2) -> str:
    """Human-friendly rendering of ints/floats used across the reports."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:,.{digits}f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if headers is None:
        headers = list(rows[0].keys())
    rendered_rows: List[List[str]] = [
        [format_number(row.get(header, "")) for header in headers] for row in rows
    ]
    widths = [
        max(len(str(header)), max(len(row[index]) for row in rendered_rows))
        for index, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_kv(items: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render a key/value mapping as an aligned two-column block."""
    if not items:
        return f"{title}\n(empty)" if title else "(empty)"
    width = max(len(str(key)) for key in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in items.items():
        lines.append(f"{str(key).ljust(width)} : {format_number(value)}")
    return "\n".join(lines)

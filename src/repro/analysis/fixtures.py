"""Lint fixtures: known-clean and seeded-defect ClassBench rule sets.

The ``ruleset-lint`` CI job needs two deterministic inputs:

* a **clean** rule set on which ``repro lint`` must report *zero* findings
  (the false-positive guard), and
* a **seeded** rule set with known planted defects that the linter must find
  *all* of (the detection guard), listed in a JSON manifest.

Both start from the synthetic ClassBench generator.  The clean set is
produced by iteratively stripping every flagged rule until the analyzer is
silent; the seeded set then plants defects of every category into the clean
set by construction:

* **shadowed** — an identical-box rule with a *different* action inserted
  immediately above the victim;
* **redundant** — an identical-box rule with the *same* action inserted
  immediately above the victim;
* **conflict** — a partner above the victim that is strictly broader in one
  dimension and strictly narrower in another (so neither covers the other)
  with a different action;
* **unreachable** — two rules above the victim that split the victim's box
  in half along one dimension: together they cover it, alone they do not.

Rule ids and priorities are renumbered to the final line order so a round
trip through the ClassBench text format (where both equal the line index)
reproduces the set exactly; actions survive via the ``action=`` extension
column.  Generation is self-checking: it re-runs the analyzer and refuses to
emit a seeded set whose planted defects are not all detected.

Run as a module to write the fixture files::

    python -m repro.analysis.fixtures OUTDIR [--size N] [--seed S]
"""

from __future__ import annotations

import argparse
import json
import random
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.lint import analyze_ruleset
from repro.fields.prefix import IPV4_WIDTH, Prefix
from repro.fields.range_utils import PortRange
from repro.rules.classbench import FilterFlavor, generate_ruleset
from repro.rules.parser import dump_classbench_file
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.rules.ruleset import RuleSet

__all__ = ["clean_ruleset", "seeded_ruleset", "write_fixtures", "DEFAULT_FIXTURE_SEED"]

DEFAULT_FIXTURE_SEED = 20140814

#: Planted defects per category in the seeded fixture.
DEFECTS_PER_CATEGORY = 3


def _renumbered(rules: List[Rule], name: str) -> RuleSet:
    """Rebuild a rule set with ``rule_id == priority == position``."""
    return RuleSet(
        (replace(rule, rule_id=position, priority=position) for position, rule in enumerate(rules)),
        name=name,
    )


def clean_ruleset(
    size: int = 300,
    flavor: FilterFlavor = FilterFlavor.ACL,
    seed: int = DEFAULT_FIXTURE_SEED,
) -> RuleSet:
    """Generate a ClassBench workload and strip it until the linter is silent."""
    ruleset = generate_ruleset(flavor, size, seed=seed)
    while True:
        report = analyze_ruleset(ruleset)
        flagged = {finding.rule_id for finding in report.findings}
        if not flagged:
            break
        ruleset = ruleset.filter(lambda rule: rule.rule_id not in flagged)
    return _renumbered(ruleset.rules(), name=f"{flavor.value}-clean")


def _other_action(action: RuleAction) -> RuleAction:
    return RuleAction.DROP if action is not RuleAction.DROP else RuleAction.FORWARD


def _broadened(rule: Rule) -> Optional[Tuple[str, Rule]]:
    """A copy of ``rule`` strictly broader in exactly one dimension."""
    if rule.src_prefix.length > 0:
        shorter = Prefix(rule.src_prefix.value, rule.src_prefix.length - 1)
        return "src_ip", replace(rule, src_prefix=shorter)
    if not rule.src_port.is_wildcard:
        return "src_port", replace(rule, src_port=PortRange.wildcard())
    if not rule.protocol.wildcard:
        return "protocol", replace(rule, protocol=ProtocolMatch.any())
    return None


def _narrowed(rule: Rule, avoid: str) -> Optional[Rule]:
    """A copy of ``rule`` strictly narrower in one dimension other than ``avoid``."""
    if avoid != "dst_ip" and rule.dst_prefix.length < IPV4_WIDTH:
        longer = Prefix(rule.dst_prefix.value, rule.dst_prefix.length + 1)
        return replace(rule, dst_prefix=longer)
    if avoid != "dst_port" and rule.dst_port.span > 1:
        mid = (rule.dst_port.low + rule.dst_port.high) // 2
        return replace(rule, dst_port=PortRange(rule.dst_port.low, mid))
    if avoid != "protocol" and rule.protocol.wildcard:
        return replace(rule, protocol=ProtocolMatch.exact(6))
    return None


def _split_halves(rule: Rule) -> Optional[Tuple[Rule, Rule]]:
    """Two copies of ``rule`` splitting its box in half along one dimension."""
    if rule.src_port.span > 1:
        mid = (rule.src_port.low + rule.src_port.high) // 2
        return (
            replace(rule, src_port=PortRange(rule.src_port.low, mid)),
            replace(rule, src_port=PortRange(mid + 1, rule.src_port.high)),
        )
    if rule.dst_port.span > 1:
        mid = (rule.dst_port.low + rule.dst_port.high) // 2
        return (
            replace(rule, dst_port=PortRange(rule.dst_port.low, mid)),
            replace(rule, dst_port=PortRange(mid + 1, rule.dst_port.high)),
        )
    for attr in ("src_prefix", "dst_prefix"):
        prefix: Prefix = getattr(rule, attr)
        if prefix.length < IPV4_WIDTH:
            child_length = prefix.length + 1
            high_bit = 1 << (IPV4_WIDTH - child_length)
            return (
                replace(rule, **{attr: Prefix(prefix.value, child_length)}),
                replace(rule, **{attr: Prefix(prefix.value | high_bit, child_length)}),
            )
    return None


def _planted_rules(category: str, victim: Rule) -> Optional[List[Rule]]:
    """The rule(s) to insert above ``victim`` to plant one defect, or None."""
    if category == "shadowed":
        return [replace(victim, action=_other_action(victim.action))]
    if category == "redundant":
        return [replace(victim)]
    if category == "conflict":
        broadened = _broadened(victim)
        if broadened is None:
            return None
        dimension, partner = broadened
        partner = _narrowed(partner, avoid=dimension)
        if partner is None:
            return None
        return [replace(partner, action=_other_action(victim.action))]
    if category == "unreachable":
        halves = _split_halves(victim)
        return None if halves is None else list(halves)
    raise ValueError(f"unknown defect category {category!r}")


def seeded_ruleset(
    clean: RuleSet,
    seed: int = DEFAULT_FIXTURE_SEED,
    per_category: int = DEFECTS_PER_CATEGORY,
) -> Tuple[RuleSet, Dict[str, List[int]]]:
    """Plant ``per_category`` defects of every category into a clean set.

    Returns the seeded set plus the manifest ``{category: [rule ids the
    linter must flag]}``.  Raises :class:`RuntimeError` when a planted defect
    is not detected by the analyzer (which would make the fixture useless as
    a CI guard).
    """
    rng = random.Random(seed)
    # Each entry is (rule, victim-category or None); planted rules and their
    # victims keep their tuples stable while insertions shift positions.
    entries: List[List[object]] = [[rule, None] for rule in clean.rules()]
    categories = ("shadowed", "redundant", "conflict", "unreachable")
    for category in categories:
        planted = 0
        candidates = [entry for entry in entries if entry[1] is None]
        rng.shuffle(candidates)
        for entry in candidates:
            if planted >= per_category:
                break
            additions = _planted_rules(category, entry[0])  # type: ignore[arg-type]
            if additions is None:
                continue
            position = entries.index(entry)
            entries[position:position] = [[rule, None] for rule in additions]
            entry[1] = category
            planted += 1
        if planted < per_category:
            raise RuntimeError(
                f"could only plant {planted}/{per_category} {category} defects"
            )
    seeded = _renumbered([entry[0] for entry in entries], name=f"{clean.name}-seeded")  # type: ignore[misc]
    manifest: Dict[str, List[int]] = {category: [] for category in categories}
    for position, entry in enumerate(entries):
        if entry[1] is not None:
            manifest[entry[1]].append(position)  # type: ignore[index]
    report = analyze_ruleset(seeded)
    for category in categories:
        found = {f.rule_id for f in report.findings_by_category(category)}
        missed = [rule_id for rule_id in manifest[category] if rule_id not in found]
        if missed:
            raise RuntimeError(f"planted {category} defects not detected: {missed}")
    return seeded, manifest


def write_fixtures(
    outdir: Path,
    size: int = 300,
    flavor: FilterFlavor = FilterFlavor.ACL,
    seed: int = DEFAULT_FIXTURE_SEED,
    per_category: int = DEFECTS_PER_CATEGORY,
) -> Dict[str, object]:
    """Write ``clean.rules``, ``seeded.rules`` and the manifest to ``outdir``."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    clean = clean_ruleset(size=size, flavor=flavor, seed=seed)
    seeded, manifest = seeded_ruleset(clean, seed=seed, per_category=per_category)
    clean_path = outdir / "clean.rules"
    seeded_path = outdir / "seeded.rules"
    manifest_path = outdir / "seeded.manifest.json"
    dump_classbench_file(clean, clean_path, include_action=True)
    dump_classbench_file(seeded, seeded_path, include_action=True)
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    return {
        "clean": str(clean_path),
        "seeded": str(seeded_path),
        "manifest": str(manifest_path),
        "clean_rules": len(clean),
        "seeded_rules": len(seeded),
        "planted": {category: len(ids) for category, ids in manifest.items()},
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.fixtures",
        description="write the clean / seeded-defect lint fixture rule sets",
    )
    parser.add_argument("outdir", help="directory for clean.rules / seeded.rules / manifest")
    parser.add_argument("--size", type=int, default=300, help="nominal ClassBench size")
    parser.add_argument("--flavor", choices=[f.value for f in FilterFlavor], default="acl")
    parser.add_argument("--seed", type=int, default=DEFAULT_FIXTURE_SEED)
    parser.add_argument("--per-category", type=int, default=DEFECTS_PER_CATEGORY)
    args = parser.parse_args(argv)
    summary = write_fixtures(
        Path(args.outdir),
        size=args.size,
        flavor=FilterFlavor(args.flavor),
        seed=args.seed,
        per_category=args.per_category,
    )
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

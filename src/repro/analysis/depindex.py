"""Rule overlap / dependency index.

Two rules *depend* on each other when some packet could match both — exactly
:meth:`~repro.rules.rule.Rule.overlaps`, generalised here to an interval
intersection over all five dimensions so whole rule sets can be queried at
once.  Every rule maps to one axis-aligned box in the 5-dimensional match
space::

    src_ip   -> [prefix.low, prefix.high]          (32-bit)
    dst_ip   -> [prefix.low, prefix.high]          (32-bit)
    src_port -> [range.low, range.high]            (16-bit)
    dst_port -> [range.low, range.high]            (16-bit)
    protocol -> [0, 255] wildcard / [v, v] exact   (8-bit)

and two rules overlap iff their boxes intersect in every dimension.

The index keeps the per-rule bounds in parallel lo/hi arrays (NumPy when
available, plain lists otherwise) so ``overlapping(rule)`` is one vectorised
comparison instead of an O(n) Python loop, and is maintained incrementally:
:meth:`add_rule` / :meth:`remove_rule` update the rule map immediately and
mark the arrays dirty; the next query rebuilds them lazily.  The control
plane (:class:`~repro.api.control.ClassifierControl`) calls these after every
committed transaction so the index tracks the installed program, and the
:class:`~repro.perf.flowcache.FlowCache` uses ``overlapping`` to narrow an
insert's blast radius to the flows resting on overlapping rules.

The lint passes (:mod:`repro.analysis.lint`) build on the same index: the
overlap set of a rule restricted to higher-priority rules is precisely the
set that can shadow, conflict with, or bury it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.rules.rule import Rule

try:  # NumPy accelerates the bound comparisons but is not required.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

__all__ = ["ANALYSIS_DIMENSIONS", "DependencyIndex", "rule_bounds", "rule_covers"]

#: The five match dimensions of the overlap model, in bounds order.
ANALYSIS_DIMENSIONS = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")


def rule_bounds(rule: Rule) -> Tuple[int, int, int, int, int, int, int, int, int, int]:
    """Return the rule's match box as ``(lo, hi)`` pairs in dimension order."""
    return (
        rule.src_prefix.low,
        rule.src_prefix.high,
        rule.dst_prefix.low,
        rule.dst_prefix.high,
        rule.src_port.low,
        rule.src_port.high,
        rule.dst_port.low,
        rule.dst_port.high,
        0 if rule.protocol.wildcard else rule.protocol.value,
        255 if rule.protocol.wildcard else rule.protocol.value,
    )


def rule_covers(outer: Rule, inner: Rule) -> bool:
    """Return True when every packet matching ``inner`` also matches ``outer``."""
    ob = rule_bounds(outer)
    ib = rule_bounds(inner)
    return all(
        ob[2 * d] <= ib[2 * d] and ib[2 * d + 1] <= ob[2 * d + 1] for d in range(5)
    )


class DependencyIndex:
    """Overlap index over a rule set, queryable and incrementally maintained."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        self._rules: Dict[int, Rule] = {}
        self._bounds: Dict[int, Tuple[int, ...]] = {}
        self._ids: List[int] = []
        self._los = None  # (n, 5) lower bounds, parallel to _ids
        self._his = None  # (n, 5) upper bounds
        self._arrays_dirty = True
        if rules is not None:
            for rule in rules:
                self.add_rule(rule)

    # -- maintenance ---------------------------------------------------------
    def add_rule(self, rule: Rule) -> None:
        """Index (or re-index) one rule."""
        self._rules[rule.rule_id] = rule
        self._bounds[rule.rule_id] = rule_bounds(rule)
        self._arrays_dirty = True

    def remove_rule(self, rule_id: int) -> None:
        """Drop one rule from the index (unknown ids are ignored)."""
        if self._rules.pop(rule_id, None) is not None:
            del self._bounds[rule_id]
            self._arrays_dirty = True

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: object) -> bool:
        return rule_id in self._rules

    def rule(self, rule_id: int) -> Rule:
        """Return the indexed rule with the given id."""
        return self._rules[rule_id]

    @property
    def uses_numpy(self) -> bool:
        """True when the bound arrays are NumPy-backed."""
        return _np is not None

    # -- queries -------------------------------------------------------------
    def _rebuild_arrays(self) -> None:
        self._ids = list(self._bounds)
        if _np is not None and self._ids:
            flat = _np.array([self._bounds[rid] for rid in self._ids], dtype=_np.int64)
            self._los = flat[:, 0::2]
            self._his = flat[:, 1::2]
        else:
            self._los = self._his = None
        self._arrays_dirty = False

    def overlapping(self, rule: Rule) -> List[int]:
        """Ids of indexed rules some packet could match together with ``rule``.

        ``rule`` itself need not be indexed; when it is, its own id is
        excluded from the result.
        """
        if self._arrays_dirty:
            self._rebuild_arrays()
        bounds = rule_bounds(rule)
        if self._los is not None:
            los = _np.array(bounds[0::2], dtype=_np.int64)
            his = _np.array(bounds[1::2], dtype=_np.int64)
            mask = ((self._los <= his) & (self._his >= los)).all(axis=1)
            hits = [self._ids[i] for i in _np.nonzero(mask)[0]]
        else:
            hits = [
                rid
                for rid, other in self._bounds.items()
                if all(
                    other[2 * d] <= bounds[2 * d + 1] and other[2 * d + 1] >= bounds[2 * d]
                    for d in range(5)
                )
            ]
        if rule.rule_id in self._rules:
            return [rid for rid in hits if rid != rule.rule_id]
        return hits

    def overlapping_rules(self, rule: Rule) -> List[Rule]:
        """Like :meth:`overlapping` but returning the rules themselves."""
        return [self._rules[rid] for rid in self.overlapping(rule)]

    def overlap_degree(self, rule_id: int) -> int:
        """Number of other indexed rules overlapping the given rule."""
        return len(self.overlapping(self._rules[rule_id]))

    def dependency_depth(self, rule_id: int) -> int:
        """Number of *higher-priority* rules overlapping the given rule.

        This is the length of the priority chain a packet matching the rule
        may have to be checked against before the rule can win — the depth
        the update-cost experiment buckets commits by.
        """
        rule = self._rules[rule_id]
        return sum(
            1 for rid in self.overlapping(rule) if self._rules[rid].priority < rule.priority
        )

    def overlap_degrees(self) -> Dict[int, int]:
        """``{rule_id: overlap degree}`` for every indexed rule."""
        return {rid: self.overlap_degree(rid) for rid in self._rules}

    def components(self) -> List[Tuple[int, ...]]:
        """Connected components of the overlap graph, as sorted id tuples.

        Every set of rules a single packet can match forms a clique in the
        overlap graph, so it always lies inside one component — which is why
        fabric placement (:mod:`repro.controller.fabric`) can ship whole
        components to switches and still resolve the highest-priority match
        locally.  Components are returned sorted by their smallest rule id,
        each component's ids ascending, so the partition is deterministic.
        """
        parent: Dict[int, int] = {rid: rid for rid in self._rules}

        def find(rid: int) -> int:
            root = rid
            while parent[root] != root:
                root = parent[root]
            while parent[rid] != root:  # path compression
                parent[rid], rid = root, parent[rid]
            return root

        for rid in sorted(self._rules):
            for other in self.overlapping(self._rules[rid]):
                root_a, root_b = find(rid), find(other)
                if root_a != root_b:
                    parent[max(root_a, root_b)] = min(root_a, root_b)
        members: Dict[int, List[int]] = {}
        for rid in self._rules:
            members.setdefault(find(rid), []).append(rid)
        return [tuple(sorted(ids)) for _, ids in sorted(members.items())]

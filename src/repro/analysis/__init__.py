"""Analysis helpers: metrics aggregation, uniqueness statistics, literature
constants, plain-text report rendering, and the static ruleset analyzer
(overlap/dependency index plus shadowing / conflict / reachability lint)."""

from repro.analysis.depindex import (
    ANALYSIS_DIMENSIONS,
    DependencyIndex,
    rule_bounds,
    rule_covers,
)
from repro.analysis.lint import (
    LINT_CATEGORIES,
    AnalysisReport,
    LintFinding,
    analyze_ruleset,
)
from repro.analysis.literature import (
    LiteratureEntry,
    TABLE_I_PAPER_VALUES,
    TABLE_V_PAPER_VALUES,
    TABLE_VI_PAPER_VALUES,
    TABLE_VII_PAPER_VALUES,
)
from repro.analysis.metrics import (
    LookupMetrics,
    UpdateMetrics,
    measure_lookups,
    measure_updates,
    summarize_lookups,
    summarize_updates,
)
from repro.analysis.reports import format_kv, format_number, format_table
from repro.analysis.uniqueness import (
    UniqueFieldReport,
    storage_reduction,
    table_ii_rows,
    unique_field_report,
)

__all__ = [
    "ANALYSIS_DIMENSIONS",
    "DependencyIndex",
    "rule_bounds",
    "rule_covers",
    "LINT_CATEGORIES",
    "AnalysisReport",
    "LintFinding",
    "analyze_ruleset",
    "LookupMetrics",
    "UpdateMetrics",
    "measure_lookups",
    "measure_updates",
    "summarize_lookups",
    "summarize_updates",
    "UniqueFieldReport",
    "unique_field_report",
    "storage_reduction",
    "table_ii_rows",
    "format_table",
    "format_kv",
    "format_number",
    "LiteratureEntry",
    "TABLE_I_PAPER_VALUES",
    "TABLE_V_PAPER_VALUES",
    "TABLE_VI_PAPER_VALUES",
    "TABLE_VII_PAPER_VALUES",
]

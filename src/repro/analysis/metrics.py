"""Aggregate lookup/update metrics for the configurable classifier.

The evaluation tables report *averages over a packet trace* (memory accesses,
probes, latency) and *totals over a rule-set load* (update cycles, structural
update fraction).  This module aggregates the per-operation results the core
returns into those summary numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.classifier import ConfigurableClassifier
from repro.core.result import LookupResult, UpdateResult
from repro.rules.packet import PacketHeader

__all__ = ["LookupMetrics", "UpdateMetrics", "measure_lookups", "measure_updates"]


@dataclass(frozen=True)
class LookupMetrics:
    """Averages over a classified trace."""

    packets: int
    matched: int
    average_memory_accesses: float
    worst_memory_accesses: int
    average_latency_cycles: float
    worst_latency_cycles: int
    average_combiner_probes: float

    @property
    def hit_ratio(self) -> float:
        """Fraction of packets that matched a rule."""
        return self.matched / self.packets if self.packets else 0.0


@dataclass(frozen=True)
class UpdateMetrics:
    """Totals over a batch of incremental updates."""

    operations: int
    structural_operations: int
    total_cycles: int
    total_memory_accesses: int
    average_cycles: float
    average_memory_accesses: float

    @property
    def counter_only_fraction(self) -> float:
        """Fraction of updates that touched only label counters (the cheap path)."""
        if not self.operations:
            return 0.0
        return 1.0 - self.structural_operations / self.operations


def summarize_lookups(results: Sequence[LookupResult]) -> LookupMetrics:
    """Aggregate a list of lookup results into trace-level metrics."""
    if not results:
        return LookupMetrics(0, 0, 0.0, 0, 0.0, 0, 0.0)
    accesses = [result.total_memory_accesses for result in results]
    latencies = [result.latency_cycles for result in results]
    probes = [result.combiner_probes for result in results]
    return LookupMetrics(
        packets=len(results),
        matched=sum(1 for result in results if result.matched),
        average_memory_accesses=sum(accesses) / len(results),
        worst_memory_accesses=max(accesses),
        average_latency_cycles=sum(latencies) / len(results),
        worst_latency_cycles=max(latencies),
        average_combiner_probes=sum(probes) / len(results),
    )


def summarize_updates(results: Sequence[UpdateResult]) -> UpdateMetrics:
    """Aggregate a list of update results into batch-level metrics."""
    if not results:
        return UpdateMetrics(0, 0, 0, 0, 0.0, 0.0)
    cycles = [result.cycles.latency_cycles for result in results]
    accesses = [result.total_memory_accesses for result in results]
    return UpdateMetrics(
        operations=len(results),
        structural_operations=sum(1 for result in results if result.structural),
        total_cycles=sum(cycles),
        total_memory_accesses=sum(accesses),
        average_cycles=sum(cycles) / len(results),
        average_memory_accesses=sum(accesses) / len(results),
    )


def measure_lookups(
    classifier: ConfigurableClassifier, trace: Iterable[PacketHeader]
) -> LookupMetrics:
    """Classify ``trace`` and return its aggregate lookup metrics."""
    return summarize_lookups(
        [classifier.classify(packet).detail for packet in trace]
    )


def measure_updates(
    classifier: ConfigurableClassifier, rules
) -> UpdateMetrics:
    """Install ``rules`` and return the aggregate update metrics."""
    return summarize_updates([classifier.install_rule(rule) for rule in rules])

"""Static ruleset analysis: shadowing / redundancy / conflict / reachability lint.

Classic filter-set defects are all statements about the overlap structure of
the rule list, so every pass here runs off the
:class:`~repro.analysis.depindex.DependencyIndex`:

* **shadowed** — a single higher-priority rule covers the rule's entire match
  box and attaches a *different* action: the rule can never fire and its
  intended action is silently replaced.
* **redundant** — a single higher-priority rule covers the rule with the
  *same* action: removing the rule changes nothing.
* **conflict** — a higher-priority rule partially overlaps the rule (neither
  covers the other) with a different action: which action wins depends on the
  rule order inside the overlap region, a classic policy-composition hazard.
* **unreachable** — no single rule covers it, but the *union* of its
  higher-priority overlaps does, so no packet ever reaches it.  Decided by
  corner-witness enumeration (see :func:`_union_covered`), which is exact;
  rules whose witness grid exceeds ``max_witnesses`` are skipped and counted,
  never guessed — the pass under-reports rather than false-positives.

When a covering rule exists the verdict between shadowed and redundant is
taken from the *highest-priority* cover, the rule that actually wins every
packet in the region unless a partial overlap intervenes.

:func:`analyze_ruleset` bundles the findings with per-dimension coverage /
wildcard statistics and overlap-degree aggregates into an
:class:`AnalysisReport` that renders as text or JSON (the ``repro lint``
subcommand's two output modes).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.depindex import (
    ANALYSIS_DIMENSIONS,
    DependencyIndex,
    rule_bounds,
)
from repro.analysis.reports import format_kv, format_table
from repro.fields.range_utils import PORT_MAX
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = [
    "LINT_CATEGORIES",
    "LintFinding",
    "AnalysisReport",
    "analyze_ruleset",
]

#: All lint categories, in report order.
LINT_CATEGORIES = ("shadowed", "redundant", "conflict", "unreachable")

#: Upper bound of each dimension's value space, in bounds order.
_DIMENSION_MAX = ((1 << 32) - 1, (1 << 32) - 1, PORT_MAX, PORT_MAX, 255)


@dataclass(frozen=True)
class LintFinding:
    """One lint verdict, anchored on the rule that is defective."""

    category: str
    rule_id: int
    #: Higher-priority rules responsible for the verdict.
    related: Tuple[int, ...]
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "category": self.category,
            "rule_id": self.rule_id,
            "related": list(self.related),
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """Everything ``repro lint`` reports about one rule set."""

    ruleset: str
    rule_count: int
    findings: List[LintFinding] = field(default_factory=list)
    #: Per dimension: fraction of rules wildcarding it entirely.
    wildcard_fractions: Dict[str, float] = field(default_factory=dict)
    #: Per dimension: fraction of the value space covered by the union of all
    #: rule intervals.
    space_coverage: Dict[str, float] = field(default_factory=dict)
    #: Per dimension: number of distinct match specifications.
    unique_field_counts: Dict[str, int] = field(default_factory=dict)
    max_overlap_degree: int = 0
    mean_overlap_degree: float = 0.0
    #: Rules overlapping no other rule at all.
    isolated_rules: int = 0
    #: Rules whose unreachability check was skipped (witness grid too large).
    unreachable_checks_skipped: int = 0

    # -- aggregation ---------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """``{category: finding count}`` over all categories (zeroes included)."""
        counts = {category: 0 for category in LINT_CATEGORIES}
        for finding in self.findings:
            counts[finding.category] += 1
        return counts

    def findings_by_category(self, category: str) -> List[LintFinding]:
        """The findings of one category, in rule order."""
        return [finding for finding in self.findings if finding.category == category]

    @property
    def clean(self) -> bool:
        """True when no lint finding was raised."""
        return not self.findings

    # -- rendering -----------------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise the full report as JSON."""
        payload: Dict[str, object] = {
            "ruleset": self.ruleset,
            "rules": self.rule_count,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
            "coverage": {
                "wildcard_fraction": self.wildcard_fractions,
                "space_coverage": self.space_coverage,
                "unique_field_counts": self.unique_field_counts,
            },
            "overlap": {
                "max_degree": self.max_overlap_degree,
                "mean_degree": self.mean_overlap_degree,
                "isolated_rules": self.isolated_rules,
            },
            "unreachable_checks_skipped": self.unreachable_checks_skipped,
        }
        return json.dumps(payload, indent=indent)

    def render_text(self) -> str:
        """Render the human-readable report."""
        counts = self.counts()
        summary: Dict[str, object] = {
            "Rule set": f"{self.ruleset} ({self.rule_count} rules)",
            "Findings": len(self.findings),
        }
        for category in LINT_CATEGORIES:
            summary[f"  {category}"] = counts[category]
        summary["Max overlap degree"] = self.max_overlap_degree
        summary["Mean overlap degree"] = f"{self.mean_overlap_degree:.2f}"
        summary["Isolated rules"] = self.isolated_rules
        if self.unreachable_checks_skipped:
            summary["Unreachable checks skipped"] = self.unreachable_checks_skipped
        parts = [format_kv(summary, title="Ruleset lint")]
        if self.findings:
            rows = [
                {
                    "Category": finding.category,
                    "Rule": finding.rule_id,
                    "Related": ",".join(str(rid) for rid in finding.related),
                    "Detail": finding.message,
                }
                for finding in self.findings
            ]
            parts.append(format_table(rows, title="Findings"))
        coverage_rows = [
            {
                "Dimension": name,
                "Wildcard %": 100.0 * self.wildcard_fractions.get(name, 0.0),
                "Space covered %": 100.0 * self.space_coverage.get(name, 0.0),
                "Unique specs": self.unique_field_counts.get(name, 0),
            }
            for name in ANALYSIS_DIMENSIONS
        ]
        parts.append(format_table(coverage_rows, title="Per-dimension coverage"))
        return "\n\n".join(parts)


# -- geometric helpers --------------------------------------------------------
def _box(rule: Rule) -> Tuple[Tuple[int, int], ...]:
    bounds = rule_bounds(rule)
    return tuple((bounds[2 * d], bounds[2 * d + 1]) for d in range(5))


def _covers_box(outer: Tuple[Tuple[int, int], ...], inner: Tuple[Tuple[int, int], ...]) -> bool:
    return all(o[0] <= i[0] and i[1] <= o[1] for o, i in zip(outer, inner))


def _union_covered(
    box: Tuple[Tuple[int, int], ...],
    covers: Sequence[Tuple[Tuple[int, int], ...]],
    max_witnesses: int,
) -> Optional[bool]:
    """Exact union-cover decision by corner-witness enumeration.

    If ``box`` minus the union of ``covers`` is non-empty, the uncovered
    region contains a point whose every coordinate is either the box's lower
    bound or one-past some cover's upper bound (push any uncovered point
    down one dimension at a time: the push stops at the box edge or right
    above the cover that would swallow it).  Checking that candidate grid is
    therefore a complete emptiness test.  Returns True / False, or None when
    the grid exceeds ``max_witnesses`` (caller must treat as "unknown").
    """
    witness_axes: List[List[int]] = []
    for d, (low, high) in enumerate(box):
        candidates = {low}
        for cover in covers:
            above = cover[d][1] + 1
            if low < above <= high:
                candidates.add(above)
        witness_axes.append(sorted(candidates))
    total = 1
    for axis in witness_axes:
        total *= len(axis)
        if total > max_witnesses:
            return None
    for witness in itertools.product(*witness_axes):
        if not any(
            all(c[d][0] <= witness[d] <= c[d][1] for d in range(5)) for c in covers
        ):
            return False
    return True


def _merged_span(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of inclusive integer intervals."""
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    current_low, current_high = intervals[0]
    for low, high in intervals[1:]:
        if low > current_high + 1:
            covered += current_high - current_low + 1
            current_low, current_high = low, high
        else:
            current_high = max(current_high, high)
    return covered + current_high - current_low + 1


# -- the analyzer -------------------------------------------------------------
def analyze_ruleset(
    ruleset: RuleSet,
    max_witnesses: int = 4096,
    index: Optional[DependencyIndex] = None,
) -> AnalysisReport:
    """Run every lint pass and coverage statistic over one rule set."""
    rules = ruleset.rules()
    if index is None:
        index = DependencyIndex(rules)
    report = AnalysisReport(ruleset=ruleset.name, rule_count=len(rules))

    boxes = {rule.rule_id: _box(rule) for rule in rules}
    degrees: List[int] = []
    for rule in rules:
        overlap_ids = index.overlapping(rule)
        degrees.append(len(overlap_ids))
        higher = [
            index.rule(rid) for rid in overlap_ids if index.rule(rid).priority < rule.priority
        ]
        box = boxes[rule.rule_id]
        single_covers = [h for h in higher if _covers_box(boxes[h.rule_id], box)]
        if single_covers:
            winner = min(single_covers, key=lambda h: h.priority)
            if winner.action == rule.action:
                report.findings.append(
                    LintFinding(
                        category="redundant",
                        rule_id=rule.rule_id,
                        related=(winner.rule_id,),
                        message=(
                            f"covered by higher-priority rule #{winner.rule_id} "
                            f"with the same action ({rule.action.value})"
                        ),
                    )
                )
            else:
                report.findings.append(
                    LintFinding(
                        category="shadowed",
                        rule_id=rule.rule_id,
                        related=(winner.rule_id,),
                        message=(
                            f"covered by higher-priority rule #{winner.rule_id} "
                            f"({winner.action.value}), so its {rule.action.value} "
                            f"action never applies"
                        ),
                    )
                )
        elif higher:
            # Not singly covered: the union of higher-priority overlaps may
            # still bury the rule.
            verdict = _union_covered(box, [boxes[h.rule_id] for h in higher], max_witnesses)
            if verdict is None:
                report.unreachable_checks_skipped += 1
            elif verdict:
                report.findings.append(
                    LintFinding(
                        category="unreachable",
                        rule_id=rule.rule_id,
                        related=tuple(sorted(h.rule_id for h in higher)),
                        message=(
                            f"jointly covered by {len(higher)} higher-priority "
                            f"rules; no packet can reach it"
                        ),
                    )
                )
        partial = [
            h
            for h in higher
            if h.action != rule.action
            and not _covers_box(boxes[h.rule_id], box)
            and not _covers_box(box, boxes[h.rule_id])
        ]
        if partial:
            partners = tuple(sorted(h.rule_id for h in partial))
            report.findings.append(
                LintFinding(
                    category="conflict",
                    rule_id=rule.rule_id,
                    related=partners,
                    message=(
                        f"partially overlaps higher-priority rule"
                        f"{'s' if len(partners) > 1 else ''} "
                        f"{', '.join('#%d' % rid for rid in partners)} "
                        f"with a different action"
                    ),
                )
            )

    # -- coverage / overlap statistics ------------------------------------
    if rules:
        wildcards = {
            "src_ip": sum(1 for r in rules if r.src_prefix.is_wildcard),
            "dst_ip": sum(1 for r in rules if r.dst_prefix.is_wildcard),
            "src_port": sum(1 for r in rules if r.src_port.is_wildcard),
            "dst_port": sum(1 for r in rules if r.dst_port.is_wildcard),
            "protocol": sum(1 for r in rules if r.protocol.wildcard),
        }
        report.wildcard_fractions = {
            name: wildcards[name] / len(rules) for name in ANALYSIS_DIMENSIONS
        }
        for d, name in enumerate(ANALYSIS_DIMENSIONS):
            intervals = [
                (boxes[rule.rule_id][d][0], boxes[rule.rule_id][d][1]) for rule in rules
            ]
            report.space_coverage[name] = _merged_span(intervals) / (_DIMENSION_MAX[d] + 1)
        report.unique_field_counts = {
            name: ruleset.unique_field_values(name) for name in ANALYSIS_DIMENSIONS
        }
        report.max_overlap_degree = max(degrees)
        report.mean_overlap_degree = sum(degrees) / len(degrees)
        report.isolated_rules = sum(1 for degree in degrees if degree == 0)
    return report

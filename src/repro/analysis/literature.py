"""Literature-reported numbers quoted by the paper's tables.

Tables I and VII mix numbers the authors measured on their own prototype with
numbers quoted from other publications (Optimizing HyperCuts on FPGA [9],
DCFLE [4]/[6]) and from their own earlier comparison study [17].  Those quoted
values cannot be regenerated from first principles here, so they are carried
as explicit constants with provenance, and every experiment that uses them
says so in its output — keeping the measured-vs-quoted distinction visible in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "LiteratureEntry",
    "TABLE_I_PAPER_VALUES",
    "TABLE_VI_PAPER_VALUES",
    "TABLE_VII_PAPER_VALUES",
    "TABLE_V_PAPER_VALUES",
]


@dataclass(frozen=True)
class LiteratureEntry:
    """One quoted evaluation row with its source."""

    system: str
    source: str
    memory_mbit: Optional[float] = None
    lookup_memory_accesses: Optional[float] = None
    stored_rules: Optional[int] = None
    throughput_gbps: Optional[float] = None


#: Table I as printed in the paper (all rows quoted from the authors' earlier
#: comparison study [17]).
TABLE_I_PAPER_VALUES: Dict[str, LiteratureEntry] = {
    "HyperCuts": LiteratureEntry(
        system="HyperCuts", source="[2] via [17]", lookup_memory_accesses=60.05, memory_mbit=5.96
    ),
    "RFC": LiteratureEntry(
        system="RFC", source="[3] via [17]", lookup_memory_accesses=48.0, memory_mbit=31.48
    ),
    "DCFL": LiteratureEntry(
        system="DCFL", source="[5] via [17]", lookup_memory_accesses=23.1, memory_mbit=22.54
    ),
    "Option1": LiteratureEntry(
        system="Option 1", source="[17]", lookup_memory_accesses=49.3, memory_mbit=5.57
    ),
    "Option2": LiteratureEntry(
        system="Option 2", source="[17]", lookup_memory_accesses=31.33, memory_mbit=6.36
    ),
}

#: Table VI as printed in the paper (measured on the authors' prototype).
TABLE_VI_PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "MBT": {"lookup_accesses_per_packet": 1, "memory_kbits": 543, "stored_rules": 8000},
    "BST": {"lookup_accesses_per_packet": 16, "memory_kbits": 49, "stored_rules": 12000},
}

#: Table VII as printed in the paper.  The two "Our system" rows are the
#: authors' measurements; the other two are quoted from [9] and [4].
TABLE_VII_PAPER_VALUES: Dict[str, LiteratureEntry] = {
    "Our system with MBT": LiteratureEntry(
        system="Our system with MBT", source="this paper", memory_mbit=2.1,
        stored_rules=8000, throughput_gbps=42.73,
    ),
    "Our system with BST": LiteratureEntry(
        system="Our system with BST", source="this paper", memory_mbit=2.1,
        stored_rules=12000, throughput_gbps=2.67,
    ),
    "Optimizing HyperCuts": LiteratureEntry(
        system="Optimizing HyperCuts", source="[9]", memory_mbit=4.90,
        stored_rules=10000, throughput_gbps=80.23,
    ),
    "DCFLE": LiteratureEntry(
        system="DCFLE", source="[4]/[6]", memory_mbit=1.77,
        stored_rules=128, throughput_gbps=16.0,
    ),
}

#: Table V as printed in the paper (Quartus synthesis on the Stratix V device).
TABLE_V_PAPER_VALUES: Dict[str, object] = {
    "Logical Utilization": (79_835, 225_400),
    "Total block memory bits": (2_097_184, 54_476_800),
    "Total registers": 129_273,
    "Maximum Frequency MHz": 133.51,
    "Total Number Pins": (500, 908),
}

"""Range matching helpers for port-like fields.

Port fields in packet classification rules are specified either as an exact
value (``port == 7812``), a closed range (``7810-7820``), or the full wildcard
``0-65535``.  The :class:`PortRange` value object normalises all three forms
and offers the priority comparison the paper uses for port labels: an exact
match outranks a range match, and among range matches the *tighter* range
wins ("the priority of Port labels is given by exact matching label following
by the tightest range matching label", section IV.C.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.exceptions import RuleError
from repro.fields.prefix import range_to_prefixes

__all__ = ["PortRange", "PORT_WIDTH", "PORT_MAX", "merge_ranges"]

PORT_WIDTH = 16
PORT_MAX = (1 << PORT_WIDTH) - 1


@dataclass(frozen=True, order=True)
class PortRange:
    """Inclusive range ``[low, high]`` over the 16-bit port space."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= PORT_MAX or not 0 <= self.high <= PORT_MAX:
            raise RuleError(f"port bound out of range: [{self.low}, {self.high}]")
        if self.low > self.high:
            raise RuleError(f"inverted port range [{self.low}, {self.high}]")

    # -- constructors ------------------------------------------------------
    @classmethod
    def exact(cls, value: int) -> "PortRange":
        """Range containing a single port value."""
        return cls(value, value)

    @classmethod
    def wildcard(cls) -> "PortRange":
        """Range covering every port (the ``0 : 65535`` wildcard)."""
        return cls(0, PORT_MAX)

    @classmethod
    def parse(cls, text: str) -> "PortRange":
        """Parse ClassBench style ``low : high`` (or a bare exact value)."""
        text = text.strip()
        if ":" in text:
            low_text, _, high_text = text.partition(":")
        elif "-" in text and not text.lstrip().startswith("-"):
            low_text, _, high_text = text.partition("-")
        else:
            low_text = high_text = text
        try:
            low = int(low_text)
            high = int(high_text)
        except ValueError as exc:
            raise RuleError(f"malformed port range {text!r}") from exc
        return cls(low, high)

    # -- predicates ---------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True when the range holds a single value (Exact Matching in the paper)."""
        return self.low == self.high

    @property
    def is_wildcard(self) -> bool:
        """True when the range covers the whole 16-bit port space."""
        return self.low == 0 and self.high == PORT_MAX

    @property
    def span(self) -> int:
        """Number of port values covered by the range."""
        return self.high - self.low + 1

    def contains(self, value: int) -> bool:
        """Return True when ``value`` is inside the range."""
        return self.low <= value <= self.high

    def overlaps(self, other: "PortRange") -> bool:
        """Return True when the two ranges share at least one port value."""
        return self.low <= other.high and other.low <= self.high

    def covers(self, other: "PortRange") -> bool:
        """Return True when this range fully contains ``other``."""
        return self.low <= other.low and other.high <= self.high

    # -- conversions ---------------------------------------------------------
    def to_prefixes(self) -> List[Tuple[int, int]]:
        """Expand the range into the minimal set of 16-bit prefixes."""
        return range_to_prefixes(self.low, self.high, PORT_WIDTH)

    def priority_key(self) -> Tuple[int, int]:
        """Sort key implementing the paper's port-label priority.

        Lower keys mean higher priority: exact matches first, then ranges from
        the tightest (smallest span) to the widest, ties broken by lower bound
        so the ordering is total and deterministic.
        """
        return (0 if self.is_exact else self.span, self.low)

    def __str__(self) -> str:
        return f"{self.low}:{self.high}"


def merge_ranges(ranges: Iterable[PortRange]) -> List[PortRange]:
    """Merge overlapping or adjacent ranges into a minimal disjoint cover.

    Used by the analysis helpers to report effective port coverage of a rule
    set; the classifier itself never merges ranges because each unique range
    keeps its own label.
    """
    ordered = sorted(ranges, key=lambda r: (r.low, r.high))
    merged: List[PortRange] = []
    for current in ordered:
        if merged and current.low <= merged[-1].high + 1:
            previous = merged.pop()
            merged.append(PortRange(previous.low, max(previous.high, current.high)))
        else:
            merged.append(current)
    return merged

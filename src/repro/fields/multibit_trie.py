"""Multi-bit trie (MBT) single-field engine.

The fast IP lookup engine of the paper: a fixed-stride multi-bit trie over one
16-bit IP address segment, with the paper's 5/5/6-bit level partition
(section IV.C).  Prefixes are inserted with controlled prefix expansion — a
prefix whose length falls between level boundaries is expanded to every node
of the next boundary it covers — and every trie node carries a
priority-ordered label list of the prefixes terminating there.

Lookup walks one node per level (3 memory accesses for a 16-bit segment),
collecting the label lists on the path; because the hardware pipelines the
levels, the engine reports a 3-cycle latency per segment and *pipelined*
throughput of one lookup per cycle.  The full 32-bit IP field uses two such
engines (high and low segment) giving the 6-cycle latency quoted in V.B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.exceptions import FieldLookupError
from repro.fields.base import FieldLookupResult, SingleFieldEngine, UpdateCost
from repro.labels.label_list import LabelList

__all__ = ["MultibitTrie", "PAPER_SEGMENT_STRIDES", "TrieNode"]

#: The 5-5-6 level partition of one 16-bit segment (section IV.C).
PAPER_SEGMENT_STRIDES: Tuple[int, ...] = (5, 5, 6)


@dataclass
class TrieNode:
    """One multi-bit trie node.

    ``children`` maps the next-level stride index to the child node;
    ``labels`` is the priority-ordered list of labels of prefixes expanded to
    this node.
    """

    level: int
    children: Dict[int, "TrieNode"] = field(default_factory=dict)
    labels: LabelList = field(default_factory=LabelList)

    def is_empty(self) -> bool:
        """True when the node has neither labels nor children."""
        return not self.children and not len(self.labels)


class MultibitTrie(SingleFieldEngine):
    """Fixed-stride multi-bit trie over a ``width``-bit key space."""

    def __init__(
        self,
        name: str = "mbt",
        width: int = 16,
        strides: Sequence[int] = PAPER_SEGMENT_STRIDES,
        pipelined: bool = True,
        cycles_per_level: int = 2,
    ) -> None:
        if cycles_per_level <= 0:
            raise FieldLookupError(f"cycles_per_level must be positive, got {cycles_per_level}")
        if sum(strides) != width:
            raise FieldLookupError(
                f"strides {tuple(strides)} must sum to the key width {width}"
            )
        if any(stride <= 0 for stride in strides):
            raise FieldLookupError(f"strides must be positive, got {tuple(strides)}")
        self.name = name
        self.width = width
        self.strides = tuple(strides)
        self._pipelined = pipelined
        #: Clock cycles per level access: a registered block-RAM read takes two
        #: cycles in the prototype, giving the paper's 6-cycle MBT latency for
        #: three levels (section V.B).
        self.cycles_per_level = cycles_per_level
        self.root = TrieNode(level=0)
        self._nodes = 1
        # Prefix -> set of labels stored for it.  The label table normally
        # guarantees one label per unique prefix, but composite engines (the
        # segment trie's range expansion) may legitimately map two different
        # ranges onto one expansion prefix with two different labels.
        self._prefix_index: Dict[Tuple[int, int], set] = {}
        # Cumulative stride boundaries, e.g. (5, 10, 16).
        self._boundaries = tuple(
            sum(self.strides[: index + 1]) for index in range(len(self.strides))
        )

    # -- engine interface -----------------------------------------------------
    @property
    def lookup_cycles(self) -> int:
        """Latency: ``cycles_per_level`` per level (levels are pipelined memories)."""
        return len(self.strides) * self.cycles_per_level

    @property
    def pipelined(self) -> bool:
        return self._pipelined

    @property
    def levels(self) -> int:
        """Number of trie levels."""
        return len(self.strides)

    def node_count(self) -> int:
        return self._nodes

    def memory_bits(self) -> int:
        """Node storage: per node, child pointers + label count + list pointer.

        The per-node width follows the paper's node format description: child
        node pointers (one per stride branch), a counter of stored labels and
        a pointer to the label list.
        """
        pointer_bits = 16
        total = 0
        for node, stride in self._iter_nodes_with_stride():
            child_slots = 1 << stride if stride else 0
            total += child_slots * pointer_bits + 8 + pointer_bits
        return total

    # -- update ------------------------------------------------------------------
    def insert(self, spec: Hashable, label: int, priority: int) -> UpdateCost:
        """Insert prefix ``spec = (value, length)`` with its label."""
        value, length = self._validate_spec(spec)
        labels = self._prefix_index.setdefault((value, length), set())
        if label in labels:
            raise FieldLookupError(
                f"prefix {value}/{length} already stored with label {label} in {self.name}"
            )
        accesses = 0
        touched = 0
        for node, _ in self._expansion_nodes(value, length, create=True):
            node.labels.add(label, priority)
            accesses += 1
            touched += 1
        labels.add(label)
        return UpdateCost(memory_accesses=accesses, nodes_touched=touched)

    def remove(self, spec: Hashable, label: int) -> UpdateCost:
        """Remove prefix ``spec = (value, length)`` and its label."""
        value, length = self._validate_spec(spec)
        labels = self._prefix_index.get((value, length))
        if labels is None or label not in labels:
            raise FieldLookupError(f"prefix {value}/{length} not stored in {self.name}")
        accesses = 0
        touched = 0
        for node, _ in self._expansion_nodes(value, length, create=False):
            if label in node.labels:
                node.labels.remove(label)
                accesses += 1
                touched += 1
        labels.discard(label)
        if not labels:
            del self._prefix_index[(value, length)]
        self._prune()
        return UpdateCost(memory_accesses=accesses, nodes_touched=touched)

    def reprioritize(self, spec: Hashable, label: int, priority: int) -> None:
        """Update the stored priority of a prefix's label (after rule deletion)."""
        value, length = self._validate_spec(spec)
        for node, _ in self._expansion_nodes(value, length, create=False):
            if label in node.labels:
                node.labels.reprioritize(label, priority)

    def invalidation_span(self, spec: Hashable) -> Tuple[int, int]:
        """Values whose lookup may change when ``spec`` is added or removed.

        A structural update materialises (or prunes) the ancestor chain of
        every expansion node, so lookups of values sharing the prefix's
        *first-level* stride index can gain or lose a level access even when
        they match none of the prefix's labels.  The affected values are
        exactly the prefix truncated to the first stride boundary; deeper
        structure never perturbs lookups outside that subtree.
        """
        value, length = self._validate_spec(spec)
        first_boundary = self._boundaries[0]
        bits = min(length, first_boundary)
        mask = ((1 << bits) - 1) << (self.width - bits) if bits else 0
        low = value & mask
        return low, low | ((1 << (self.width - bits)) - 1)

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, value: int) -> FieldLookupResult:
        """Collect the labels of every stored prefix matching ``value``."""
        if not 0 <= value < (1 << self.width):
            raise FieldLookupError(f"lookup key {value} out of {self.width}-bit range")
        matches = LabelList()
        accesses = 0
        node = self.root
        # Root labels hold the length-0 wildcard prefix.
        for label, priority in node.labels.pairs():
            matches.add(label, priority)
        consumed = 0
        for level, stride in enumerate(self.strides):
            index = self._slice(value, consumed, stride)
            consumed += stride
            child = node.children.get(index)
            accesses += 1
            if child is None:
                break
            for label, priority in child.labels.pairs():
                matches.add(label, priority)
            node = child
        return FieldLookupResult(
            matches=tuple(matches.pairs()),
            memory_accesses=accesses,
            cycles=self.lookup_cycles,
        )

    # -- internals ---------------------------------------------------------------------
    def _validate_spec(self, spec: Hashable) -> Tuple[int, int]:
        if not isinstance(spec, tuple) or len(spec) != 2:
            raise FieldLookupError(f"MBT spec must be a (value, length) tuple, got {spec!r}")
        value, length = spec
        if not 0 <= length <= self.width:
            raise FieldLookupError(f"prefix length {length} out of range for width {self.width}")
        if not 0 <= value < (1 << self.width):
            raise FieldLookupError(f"prefix value {value} out of {self.width}-bit range")
        return value, length

    def _slice(self, value: int, consumed: int, stride: int) -> int:
        """Extract the ``stride`` bits following the first ``consumed`` bits."""
        shift = self.width - consumed - stride
        return (value >> shift) & ((1 << stride) - 1)

    def _expansion_nodes(self, value: int, length: int, create: bool):
        """Yield ``(node, level)`` for every node the prefix expands to.

        A length-0 prefix lives in the root's label list.  Otherwise the
        prefix terminates at the first level boundary >= length and is
        expanded to every stride index it covers at that level; the ancestor
        chain down to that level is materialised on demand.
        """
        if length == 0:
            yield self.root, 0
            return
        target_level = next(
            index for index, boundary in enumerate(self._boundaries) if boundary >= length
        )
        boundary = self._boundaries[target_level]
        expansion_bits = boundary - length
        base = (value >> (self.width - boundary)) & ((1 << boundary) - 1)
        base &= ~((1 << expansion_bits) - 1) if expansion_bits else (1 << boundary) - 1
        for offset in range(1 << expansion_bits):
            path_value = (base | offset) << (self.width - boundary)
            node = self.root
            consumed = 0
            missing = False
            for level in range(target_level + 1):
                stride = self.strides[level]
                index = self._slice(path_value, consumed, stride)
                consumed += stride
                child = node.children.get(index)
                if child is None:
                    if not create:
                        missing = True
                        break
                    child = TrieNode(level=level + 1)
                    node.children[index] = child
                    self._nodes += 1
                node = child
            if not missing:
                yield node, target_level + 1

    def _iter_nodes_with_stride(self):
        """Yield ``(node, child stride)`` pairs for memory accounting."""
        stack: List[TrieNode] = [self.root]
        while stack:
            node = stack.pop()
            stride = self.strides[node.level] if node.level < len(self.strides) else 0
            yield node, stride
            stack.extend(node.children.values())

    def _prune(self) -> None:
        """Remove empty leaf nodes after deletions (keeps node counts honest)."""

        def prune(node: TrieNode) -> bool:
            dead = []
            for index, child in node.children.items():
                if prune(child):
                    dead.append(index)
            for index in dead:
                del node.children[index]
                self._nodes -= 1
            return node.is_empty() and node is not self.root

        prune(self.root)

    def stored_prefixes(self) -> List[Tuple[int, int]]:
        """The prefixes currently stored (verification helper)."""
        return sorted(self._prefix_index)

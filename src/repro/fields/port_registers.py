"""Register-based port field lookup.

Table II shows that the number of unique port specifications in real filters
is tiny (1 unique source port spec, ~100 unique destination port specs), so
the paper stores them in a bank of registers rather than a tree: each register
holds one unique port specification as ``(high value, low value, label)`` and
records whether it is an exact match or a range (Table IV).  All registers are
compared against the incoming port value in parallel; the matching labels are
produced in two clock cycles.

Label priority follows section IV.C.1: *exact matching label first, followed
by the tightest range matching label* — for the Table IV example and an input
port of 7812, the labels come out ordered B, C, A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.exceptions import FieldLookupError
from repro.fields.base import FieldLookupResult, SingleFieldEngine, UpdateCost
from repro.fields.range_utils import PORT_MAX, PortRange

__all__ = ["PortRegister", "PortRegisterFile"]


@dataclass(frozen=True)
class PortRegister:
    """One register: a unique port specification and its label."""

    low: int
    high: int
    label: int
    priority: int

    @property
    def is_exact(self) -> bool:
        """Exact Matching register (single port value)."""
        return self.low == self.high

    @property
    def span(self) -> int:
        """Number of port values the register covers (1 for exact)."""
        return self.high - self.low + 1

    def matches(self, port: int) -> bool:
        """Return True when ``port`` falls inside the register's range."""
        return self.low <= port <= self.high

    def match_method(self) -> str:
        """Human-readable match method, as printed in Table IV."""
        return "Exact matching" if self.is_exact else "Range matching"


class PortRegisterFile(SingleFieldEngine):
    """Bank of parallel comparison registers for one port field."""

    #: Register width: high value + low value + label + flags (Table IV format).
    REGISTER_WIDTH = 16 + 16 + 7 + 1

    def __init__(self, name: str = "port", capacity: int = 128) -> None:
        if capacity <= 0:
            raise FieldLookupError(f"register file capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._registers: Dict[Tuple[int, int], PortRegister] = {}

    # -- engine interface -----------------------------------------------------
    @property
    def lookup_cycles(self) -> int:
        """The paper's port lookup produces its labels in two clock cycles."""
        return 2

    @property
    def pipelined(self) -> bool:
        """The register comparisons are combinational; back-to-back lookups are fine."""
        return True

    def node_count(self) -> int:
        return len(self._registers)

    def memory_bits(self) -> int:
        """All registers exist in hardware whether occupied or not."""
        return self.capacity * self.REGISTER_WIDTH

    # -- update ------------------------------------------------------------------
    def insert(self, spec: Hashable, label: int, priority: int) -> UpdateCost:
        """Store the unique port specification ``spec = (low, high)``."""
        low, high = self._validate_spec(spec)
        if (low, high) in self._registers:
            raise FieldLookupError(f"port range {low}:{high} already stored in {self.name}")
        if len(self._registers) >= self.capacity:
            raise FieldLookupError(
                f"port register file {self.name!r} full ({self.capacity} registers)"
            )
        self._registers[(low, high)] = PortRegister(low=low, high=high, label=label, priority=priority)
        return UpdateCost(memory_accesses=1, nodes_touched=1)

    def remove(self, spec: Hashable, label: int) -> UpdateCost:
        """Free the register holding ``spec``."""
        low, high = self._validate_spec(spec)
        register = self._registers.get((low, high))
        if register is None or register.label != label:
            raise FieldLookupError(f"port range {low}:{high} (label {label}) not stored in {self.name}")
        del self._registers[(low, high)]
        return UpdateCost(memory_accesses=1, nodes_touched=1)

    def reprioritize(self, spec: Hashable, label: int, priority: int) -> None:
        """Update the rule priority recorded alongside a register."""
        low, high = self._validate_spec(spec)
        register = self._registers.get((low, high))
        if register is None:
            raise FieldLookupError(f"port range {low}:{high} not stored in {self.name}")
        self._registers[(low, high)] = PortRegister(low=low, high=high, label=label, priority=priority)

    def invalidation_span(self, spec: Hashable) -> Tuple[int, int]:
        """Adding or freeing a register only changes lookups inside its range
        (every lookup reads the whole bank in one access regardless)."""
        return self._validate_spec(spec)

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, value: int) -> FieldLookupResult:
        """Compare ``value`` against every register in parallel.

        The result is ordered by the paper's port priority: exact matches
        first, then ranges from tightest to widest.  All registers are read in
        the same cycle, so the access count is 1 regardless of occupancy.
        """
        if not 0 <= value <= PORT_MAX:
            raise FieldLookupError(f"port value {value} out of 16-bit range")
        matching = [register for register in self._registers.values() if register.matches(value)]
        matching.sort(key=lambda register: (0 if register.is_exact else register.span, register.low))
        matches = tuple((register.label, register.priority) for register in matching)
        return FieldLookupResult(matches=matches, memory_accesses=1, cycles=self.lookup_cycles)

    def result_ordered_registers(self) -> List[PortRegister]:
        """Registers pre-sorted in :meth:`lookup` result order, for batch walkers.

        :meth:`lookup` stable-sorts the *matching* registers by
        ``(exact-first, tightest-span, low)``; filtering this pre-sorted full
        bank by "matches the value" yields the same order (a stable sort
        commutes with filtering), which is what lets a batch walker emit
        bit-identical match tuples without re-sorting per value.
        """
        return sorted(
            self._registers.values(),
            key=lambda register: (0 if register.is_exact else register.span, register.low),
        )

    # -- reporting -----------------------------------------------------------------
    def registers(self) -> List[PortRegister]:
        """Stored registers ordered by label (Table IV rendering helper)."""
        return sorted(self._registers.values(), key=lambda register: register.label)

    def table_iv_rows(self, label_names: Optional[Dict[int, str]] = None) -> List[Dict[str, str]]:
        """Render the register contents in the format of Table IV."""
        rows = []
        for register in self.registers():
            label = label_names.get(register.label, str(register.label)) if label_names else str(register.label)
            rows.append(
                {
                    "Port field rules": f"[{register.high} - {register.low}]",
                    "Label": label,
                    "Match method": register.match_method(),
                }
            )
        return rows

    def _validate_spec(self, spec: Hashable) -> Tuple[int, int]:
        if not isinstance(spec, tuple) or len(spec) != 2:
            raise FieldLookupError(f"port spec must be a (low, high) tuple, got {spec!r}")
        low, high = spec
        try:
            PortRange(low, high)  # bounds / inversion validation
        except Exception as exc:
            raise FieldLookupError(f"invalid port range spec {spec!r}: {exc}") from exc
        return low, high

"""Prefix arithmetic used throughout the single-field lookup engines.

A *prefix* is the pair ``(value, length)`` describing the set of ``width``-bit
integers whose top ``length`` bits equal the top ``length`` bits of ``value``.
IPv4 classification uses 32-bit prefixes; the architecture of the paper splits
each address into two 16-bit segments, so 16-bit prefixes appear as well.

The helpers here are deliberately free functions working on plain integers:
they are called in the inner loops of the trie builders and of the synthetic
rule generator, and small immutable objects would dominate the profile.
:class:`Prefix` is a thin frozen dataclass wrapper for the public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.exceptions import RuleError

__all__ = [
    "Prefix",
    "prefix_mask",
    "prefix_contains",
    "prefix_overlaps",
    "prefix_range",
    "prefix_to_range",
    "range_to_prefixes",
    "parse_ipv4",
    "format_ipv4",
    "parse_ipv4_prefix",
    "format_ipv4_prefix",
    "split_prefix_segments",
]

IPV4_WIDTH = 32
SEGMENT_WIDTH = 16


def prefix_mask(length: int, width: int = IPV4_WIDTH) -> int:
    """Return the bit mask selecting the top ``length`` bits of a ``width``-bit word."""
    if not 0 <= length <= width:
        raise RuleError(f"prefix length {length} out of range for width {width}")
    if length == 0:
        return 0
    return ((1 << length) - 1) << (width - length)


def prefix_range(value: int, length: int, width: int = IPV4_WIDTH) -> Tuple[int, int]:
    """Return the inclusive ``(low, high)`` integer range covered by a prefix."""
    mask = prefix_mask(length, width)
    low = value & mask
    high = low | ((1 << (width - length)) - 1)
    return low, high


# ``prefix_to_range`` is the name used by the range-matching helpers; keep both.
prefix_to_range = prefix_range


def prefix_contains(value: int, length: int, point: int, width: int = IPV4_WIDTH) -> bool:
    """Return True when ``point`` falls inside the prefix ``value/length``."""
    mask = prefix_mask(length, width)
    return (point & mask) == (value & mask)


def prefix_overlaps(
    value_a: int, length_a: int, value_b: int, length_b: int, width: int = IPV4_WIDTH
) -> bool:
    """Return True when the two prefixes share at least one address.

    Two prefixes overlap exactly when one contains the other, i.e. they agree on
    the first ``min(length_a, length_b)`` bits.
    """
    short = min(length_a, length_b)
    mask = prefix_mask(short, width)
    return (value_a & mask) == (value_b & mask)


def range_to_prefixes(low: int, high: int, width: int = IPV4_WIDTH) -> List[Tuple[int, int]]:
    """Decompose an inclusive integer range into the minimal list of prefixes.

    This is the classic range-to-prefix expansion used when a range-syntax rule
    field (ports, mostly) has to be stored in a prefix-only structure such as a
    trie or a TCAM.  The result is ordered from ``low`` upwards.
    """
    if low > high:
        raise RuleError(f"inverted range [{low}, {high}]")
    if low < 0 or high >= (1 << width):
        raise RuleError(f"range [{low}, {high}] out of {width}-bit space")
    prefixes: List[Tuple[int, int]] = []
    while low <= high:
        # Largest power-of-two block aligned at ``low`` ...
        max_align = low & -low if low else (1 << width)
        # ... that still fits below ``high``.
        block = max_align
        while block > high - low + 1:
            block >>= 1
        length = width - block.bit_length() + 1
        prefixes.append((low, length))
        low += block
    return prefixes


def split_prefix_segments(
    value: int, length: int, width: int = IPV4_WIDTH, segment: int = SEGMENT_WIDTH
) -> List[Tuple[int, int]]:
    """Split a prefix into per-segment prefixes (high segment first).

    The architecture of the paper partitions each 32-bit IP field into two
    16-bit segments, each handled by its own trie.  A 32-bit prefix maps to:

    * a full-length (16-bit) prefix on the high segment plus a partial prefix on
      the low segment when ``length > 16``;
    * a partial prefix on the high segment and a wildcard (length 0) on the low
      segment when ``length <= 16``.
    """
    if width % segment != 0:
        raise RuleError(f"width {width} is not a multiple of segment {segment}")
    segments: List[Tuple[int, int]] = []
    remaining = length
    for index in range(width // segment):
        shift = width - segment * (index + 1)
        seg_value = (value >> shift) & ((1 << segment) - 1)
        seg_length = min(max(remaining, 0), segment)
        if seg_length == 0:
            seg_value = 0
        else:
            seg_value &= prefix_mask(seg_length, segment)
        segments.append((seg_value, seg_length))
        remaining -= segment
    return segments


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise RuleError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise RuleError(f"malformed IPv4 address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise RuleError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as dotted-quad notation."""
    if not 0 <= value < (1 << IPV4_WIDTH):
        raise RuleError(f"IPv4 value {value} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4_prefix(text: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` (ClassBench style, ``@`` prefix already stripped)."""
    if "/" not in text:
        raise RuleError(f"malformed IPv4 prefix {text!r}")
    address, _, length_text = text.partition("/")
    value = parse_ipv4(address)
    try:
        length = int(length_text)
    except ValueError as exc:
        raise RuleError(f"malformed prefix length in {text!r}") from exc
    if not 0 <= length <= IPV4_WIDTH:
        raise RuleError(f"prefix length out of range in {text!r}")
    return value & prefix_mask(length), length


def format_ipv4_prefix(value: int, length: int) -> str:
    """Format a 32-bit prefix as ``a.b.c.d/len``."""
    return f"{format_ipv4(value & prefix_mask(length))}/{length}"


@dataclass(frozen=True)
class Prefix:
    """A ``width``-bit prefix ``value/length``.

    The value is normalised at construction time: bits below the prefix length
    are forced to zero so two equal prefixes always compare equal.
    """

    value: int
    length: int
    width: int = IPV4_WIDTH

    def __post_init__(self) -> None:
        if not 0 <= self.length <= self.width:
            raise RuleError(f"prefix length {self.length} out of range")
        if not 0 <= self.value < (1 << self.width):
            raise RuleError(f"prefix value {self.value} out of {self.width}-bit space")
        object.__setattr__(self, "value", self.value & prefix_mask(self.length, self.width))

    @classmethod
    def parse(cls, text: str, width: int = IPV4_WIDTH) -> "Prefix":
        """Parse dotted-quad ``a.b.c.d/len`` notation (32-bit prefixes only)."""
        if width != IPV4_WIDTH:
            raise RuleError("Prefix.parse only supports 32-bit IPv4 prefixes")
        value, length = parse_ipv4_prefix(text)
        return cls(value, length, width)

    @property
    def low(self) -> int:
        """Lowest address covered by the prefix."""
        return prefix_range(self.value, self.length, self.width)[0]

    @property
    def high(self) -> int:
        """Highest address covered by the prefix."""
        return prefix_range(self.value, self.length, self.width)[1]

    @property
    def is_wildcard(self) -> bool:
        """True when the prefix matches every value (length 0)."""
        return self.length == 0

    def contains(self, point: int) -> bool:
        """Return True when ``point`` matches this prefix."""
        return prefix_contains(self.value, self.length, point, self.width)

    def overlaps(self, other: "Prefix") -> bool:
        """Return True when the two prefixes share at least one address."""
        if self.width != other.width:
            raise RuleError("cannot compare prefixes of different widths")
        return prefix_overlaps(self.value, self.length, other.value, other.length, self.width)

    def segments(self, segment: int = SEGMENT_WIDTH) -> List["Prefix"]:
        """Split into per-segment prefixes (see :func:`split_prefix_segments`)."""
        return [
            Prefix(seg_value, seg_length, segment)
            for seg_value, seg_length in split_prefix_segments(
                self.value, self.length, self.width, segment
            )
        ]

    def iter_addresses(self, limit: int = 1 << 20) -> Iterator[int]:
        """Iterate the addresses covered by the prefix (guarded by ``limit``)."""
        low, high = prefix_range(self.value, self.length, self.width)
        if high - low + 1 > limit:
            raise RuleError(
                f"prefix {self} covers {high - low + 1} addresses, above limit {limit}"
            )
        return iter(range(low, high + 1))

    def __str__(self) -> str:
        if self.width == IPV4_WIDTH:
            return format_ipv4_prefix(self.value, self.length)
        return f"{self.value:0{(self.width + 3) // 4}x}/{self.length}"

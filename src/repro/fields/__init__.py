"""Single-field lookup engines and field-value utilities.

The configurable architecture decomposes classification into independent
single-field searches; this package provides every engine the paper mentions:

* :class:`~repro.fields.multibit_trie.MultibitTrie` — fast pipelined IP-segment
  lookup (5/5/6-bit strides);
* :class:`~repro.fields.binary_search_tree.BinarySearchTree` — memory-efficient
  IP-segment lookup (binary search over prefix endpoints);
* :class:`~repro.fields.segment_trie.SegmentTrie` — fixed-stride port trie used
  by the Option 1/2 baselines;
* :class:`~repro.fields.port_registers.PortRegisterFile` — parallel range/exact
  port registers (Table IV);
* :class:`~repro.fields.protocol_table.ProtocolTable` — direct-indexed protocol
  LUT;

plus the prefix and port-range value objects shared by the rule model.
"""

from repro.fields.base import FieldLookupResult, SingleFieldEngine, UpdateCost
from repro.fields.binary_search_tree import BinarySearchTree
from repro.fields.multibit_trie import MultibitTrie, PAPER_SEGMENT_STRIDES, TrieNode
from repro.fields.port_registers import PortRegister, PortRegisterFile
from repro.fields.prefix import (
    IPV4_WIDTH,
    Prefix,
    SEGMENT_WIDTH,
    format_ipv4,
    format_ipv4_prefix,
    parse_ipv4,
    parse_ipv4_prefix,
    prefix_contains,
    prefix_mask,
    prefix_overlaps,
    prefix_range,
    range_to_prefixes,
    split_prefix_segments,
)
from repro.fields.protocol_table import ProtocolTable
from repro.fields.range_utils import PORT_MAX, PORT_WIDTH, PortRange, merge_ranges
from repro.fields.segment_trie import SegmentTrie

__all__ = [
    "SingleFieldEngine",
    "FieldLookupResult",
    "UpdateCost",
    "MultibitTrie",
    "TrieNode",
    "PAPER_SEGMENT_STRIDES",
    "BinarySearchTree",
    "SegmentTrie",
    "PortRegisterFile",
    "PortRegister",
    "ProtocolTable",
    "Prefix",
    "PortRange",
    "merge_ranges",
    "prefix_mask",
    "prefix_range",
    "prefix_contains",
    "prefix_overlaps",
    "range_to_prefixes",
    "split_prefix_segments",
    "parse_ipv4",
    "format_ipv4",
    "parse_ipv4_prefix",
    "format_ipv4_prefix",
    "IPV4_WIDTH",
    "SEGMENT_WIDTH",
    "PORT_WIDTH",
    "PORT_MAX",
]

"""Common interface of the single-field lookup engines.

The architecture composes *single-field* lookup engines — one per packet
header field (or per 16-bit IP segment) — each returning a priority-ordered
list of matching labels plus the cost of producing it.  Every engine in this
package implements :class:`SingleFieldEngine`, so the classifier core, the
"Option 1/2" baseline combinations and the benchmarks can mix and match them
freely — which is exactly the configurability the paper is about.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Tuple

from repro.exceptions import FieldLookupError
from repro.observers import MutationEpoch

__all__ = ["FieldLookupResult", "UpdateCost", "SingleFieldEngine"]


@dataclass(frozen=True)
class FieldLookupResult:
    """Outcome of one single-field lookup.

    Attributes
    ----------
    matches:
        ``(label, priority)`` pairs of every matching unique field value, in
        the field's priority order (highest priority / most specific first).
        The first entry is the HPML the paper's fast path uses.
    memory_accesses:
        Number of memory words read to produce the result.
    cycles:
        Clock cycles of latency this lookup contributes (per section V.B).
    """

    matches: Tuple[Tuple[int, int], ...]
    memory_accesses: int
    cycles: int

    @property
    def labels(self) -> List[int]:
        """Matching labels in priority order."""
        return [label for label, _ in self.matches]

    @property
    def first_label(self) -> int:
        """The highest-priority matching label (HPML)."""
        if not self.matches:
            raise FieldLookupError("no matching label (missing wildcard entry?)")
        return self.matches[0][0]

    @property
    def matched(self) -> bool:
        """True when at least one label matched."""
        return bool(self.matches)


@dataclass(frozen=True)
class UpdateCost:
    """Cost of one structural engine update (insert or remove of a value)."""

    memory_accesses: int = 0
    nodes_touched: int = 0
    rebuilt: bool = False


#: Mutating engine methods that invalidate memoized lookup results.
_MUTATORS = ("insert", "remove", "reprioritize")


def _notifying(method: Callable) -> Callable:
    """Wrap a mutator so the engine's mutation epoch is bumped after it."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        result = method(self, *args, **kwargs)
        self.bump_mutation_epoch()
        return result

    wrapper.__mutation_notifying__ = True
    return wrapper


class SingleFieldEngine(MutationEpoch, abc.ABC):
    """Interface of a single-field lookup engine.

    An engine maps *field value specifications* (a prefix, a port range, a
    protocol match...) to labels, and answers point lookups with the labels of
    every specification matching the point.

    Engines carry a *mutation epoch* (the cache-invalidation surface of the
    :mod:`repro.perf` fast path, inherited from
    :class:`~repro.observers.MutationEpoch`): every concrete ``insert``/
    ``remove``/``reprioritize`` implementation is automatically wrapped so
    the epoch is bumped after any change to the stored specifications —
    memoized lookup results stamped with an older epoch must be discarded
    before reuse.
    """

    #: Human-readable engine name (used in reports and memory block names).
    name: str = "engine"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for method_name in _MUTATORS:
            method = cls.__dict__.get(method_name)
            if method is None or getattr(method, "__isabstractmethod__", False):
                continue
            if getattr(method, "__mutation_notifying__", False):
                continue
            setattr(cls, method_name, _notifying(method))

    @property
    @abc.abstractmethod
    def lookup_cycles(self) -> int:
        """Per-packet lookup latency of this engine in clock cycles."""

    @property
    @abc.abstractmethod
    def pipelined(self) -> bool:
        """True when the engine accepts a new lookup every cycle."""

    @abc.abstractmethod
    def insert(self, spec: Hashable, label: int, priority: int) -> UpdateCost:
        """Add a field value specification with its label.

        ``priority`` is the best rule priority referencing the value; engines
        keep their per-node label lists ordered by it.
        """

    @abc.abstractmethod
    def remove(self, spec: Hashable, label: int) -> UpdateCost:
        """Remove a field value specification and its label."""

    @abc.abstractmethod
    def lookup(self, value: int) -> FieldLookupResult:
        """Return the labels of every stored specification matching ``value``."""

    def invalidation_span(self, spec: Hashable) -> "Tuple[int, int] | None":
        """Inclusive value interval whose lookup *cost* may change when the
        stored specification set gains or loses ``spec``.

        Engines whose structural updates can perturb the access counts of
        lookups outside the spec's own match interval (e.g. a global array
        rebuild) return ``None``, meaning "the whole dimension" — callers
        must then invalidate every memoized lookup for this field.  Engines
        with local structure override this with a tight interval.
        """
        return None

    @abc.abstractmethod
    def memory_bits(self) -> int:
        """Storage footprint of the engine's memory blocks in bits."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Number of nodes / entries currently stored."""

    def describe(self) -> dict:
        """Small structured summary used by reports."""
        return {
            "engine": self.name,
            "nodes": self.node_count(),
            "memory_bits": self.memory_bits(),
            "lookup_cycles": self.lookup_cycles,
            "pipelined": self.pipelined,
        }

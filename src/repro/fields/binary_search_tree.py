"""Binary search tree (BST) single-field engine.

The memory-efficient IP lookup alternative of the paper.  The implementation
follows the classic *binary search on prefix endpoints* construction: every
stored prefix contributes its low and high endpoints, the distinct endpoints
partition the 16-bit segment space into elementary intervals, and a balanced
binary search over the interval boundaries answers a point lookup in
``ceil(log2(#boundaries))`` comparisons.  The hardware engine is provisioned
for the full 16-bit segment, i.e. up to 16 iterative comparisons per packet —
the per-packet access count quoted in Table VI.

Each elementary interval points at a label list holding the labels of every
prefix covering the interval; identical lists are shared (deduplicated), which
is what keeps the memory footprint well below the multi-bit trie's.

The trade-off the paper highlights is reproduced faithfully:

* lookup is iterative and **not** pipelined (one packet occupies the engine
  for the whole search), capping throughput at ~Fmax/16 packets per second;
* every structural update rebuilds the endpoint array — "this methodology
  implies re-built structure".  The rebuild runs in software (the SDN
  controller) and is performed lazily here: consecutive inserts/deletes mark
  the structure dirty and the sweep reconstruction runs once before the next
  lookup, exactly like a controller batching a rule-set change before
  re-uploading the memory image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.exceptions import FieldLookupError
from repro.fields.base import FieldLookupResult, SingleFieldEngine, UpdateCost
from repro.fields.prefix import prefix_range
from repro.labels.label_list import LabelList

__all__ = ["BinarySearchTree"]


@dataclass(frozen=True)
class _StoredPrefix:
    """One stored prefix with its label and priority."""

    value: int
    length: int
    label: int
    priority: int


class BinarySearchTree(SingleFieldEngine):
    """Balanced binary search over prefix endpoints for one 16-bit segment."""

    def __init__(self, name: str = "bst", width: int = 16) -> None:
        self.name = name
        self.width = width
        self._prefixes: Dict[Tuple[int, int], _StoredPrefix] = {}
        # Rebuilt structures: sorted interval boundaries and per-interval
        # label-list pointers into a deduplicated list pool.
        self._boundaries: List[int] = [0]
        self._interval_lists: List[int] = [0]
        self._list_pool: List[Tuple[Tuple[int, int], ...]] = [()]
        self._dirty = False
        self._last_rebuild_words = 0

    # -- engine interface -----------------------------------------------------
    @property
    def lookup_cycles(self) -> int:
        """Provisioned worst-case comparisons: one per key bit (16 for a segment).

        The hardware engine iterates over a comparison stage; its pipeline
        initiation interval is provisioned for the deepest possible balanced
        tree over the segment space, which is what Table VI charges (16
        accesses per packet).  The *measured* accesses of an individual lookup
        are reported in :class:`FieldLookupResult` and are usually lower.
        """
        return self.width

    @property
    def pipelined(self) -> bool:
        """The BST engine iterates in place; it cannot overlap packets."""
        return False

    def node_count(self) -> int:
        """Number of search-tree nodes (one per interval boundary)."""
        self._ensure_built()
        return len(self._boundaries)

    def memory_bits(self) -> int:
        """Boundary keys + per-interval list pointers + shared label lists."""
        self._ensure_built()
        key_bits = self.width
        pointer_bits = 16
        node_bits = len(self._boundaries) * (key_bits + pointer_bits)
        label_bits = sum(len(entry) for entry in self._list_pool) * (13 + 16)
        return node_bits + label_bits

    # -- update ------------------------------------------------------------------
    def insert(self, spec: Hashable, label: int, priority: int) -> UpdateCost:
        """Insert prefix ``spec = (value, length)``; marks the structure for rebuild."""
        value, length = self._validate_spec(spec)
        if (value, length) in self._prefixes:
            raise FieldLookupError(f"prefix {value}/{length} already stored in {self.name}")
        self._prefixes[(value, length)] = _StoredPrefix(value, length, label, priority)
        self._dirty = True
        # The upload cost of the rebuilt structure is proportional to the
        # number of boundary words; report the last known size + the new entry
        # (the controller would re-upload the whole image after the batch).
        return UpdateCost(
            memory_accesses=max(2, self._last_rebuild_words // max(1, len(self._prefixes))),
            nodes_touched=2,
            rebuilt=True,
        )

    def remove(self, spec: Hashable, label: int) -> UpdateCost:
        """Remove prefix ``spec``; marks the structure for rebuild."""
        value, length = self._validate_spec(spec)
        stored = self._prefixes.get((value, length))
        if stored is None or stored.label != label:
            raise FieldLookupError(
                f"prefix {value}/{length} (label {label}) not stored in {self.name}"
            )
        del self._prefixes[(value, length)]
        self._dirty = True
        return UpdateCost(memory_accesses=2, nodes_touched=2, rebuilt=True)

    def reprioritize(self, spec: Hashable, label: int, priority: int) -> None:
        """Update the priority attached to a stored prefix's label."""
        value, length = self._validate_spec(spec)
        stored = self._prefixes.get((value, length))
        if stored is None:
            raise FieldLookupError(f"prefix {value}/{length} not stored in {self.name}")
        self._prefixes[(value, length)] = _StoredPrefix(value, length, label, priority)
        self._dirty = True

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, value: int) -> FieldLookupResult:
        """Binary-search the elementary interval containing ``value``."""
        if not 0 <= value < (1 << self.width):
            raise FieldLookupError(f"lookup key {value} out of {self.width}-bit range")
        self._ensure_built()
        accesses = 0
        low, high = 0, len(self._boundaries) - 1
        position = 0
        while low <= high:
            mid = (low + high) // 2
            accesses += 1
            if self._boundaries[mid] <= value:
                position = mid
                low = mid + 1
            else:
                high = mid - 1
        pointer = self._interval_lists[position]
        matches = self._list_pool[pointer]
        accesses += 1  # dereference the interval's label-list pointer
        return FieldLookupResult(
            matches=matches,
            memory_accesses=accesses,
            cycles=max(accesses, 1),
        )

    # -- internals ---------------------------------------------------------------------
    def _validate_spec(self, spec: Hashable) -> Tuple[int, int]:
        if not isinstance(spec, tuple) or len(spec) != 2:
            raise FieldLookupError(f"BST spec must be a (value, length) tuple, got {spec!r}")
        value, length = spec
        if not 0 <= length <= self.width:
            raise FieldLookupError(f"prefix length {length} out of range for width {self.width}")
        if not 0 <= value < (1 << self.width):
            raise FieldLookupError(f"prefix value {value} out of {self.width}-bit range")
        return value, length

    def _ensure_built(self) -> None:
        if self._dirty:
            self._last_rebuild_words = self._rebuild()
            self._dirty = False

    def _rebuild(self) -> int:
        """Recompute boundaries and per-interval label lists with a sweep.

        Returns the number of memory words the controller would upload for
        the rebuilt structure.  The sweep visits the sorted prefix endpoints
        once, maintaining the set of prefixes covering the current elementary
        interval, so the rebuild cost is O(E log E + E * overlap) rather than
        O(E * N).
        """
        start_events: Dict[int, List[_StoredPrefix]] = {}
        end_events: Dict[int, List[_StoredPrefix]] = {}
        endpoints = {0}
        space = 1 << self.width
        for stored in self._prefixes.values():
            low, high = prefix_range(stored.value, stored.length, self.width)
            endpoints.add(low)
            start_events.setdefault(low, []).append(stored)
            if high + 1 < space:
                endpoints.add(high + 1)
                end_events.setdefault(high + 1, []).append(stored)
        self._boundaries = sorted(endpoints)

        pool_index: Dict[Tuple[Tuple[int, int], ...], int] = {}
        self._list_pool = []
        self._interval_lists = []
        active: Dict[Tuple[int, int], _StoredPrefix] = {}
        for boundary in self._boundaries:
            for stored in end_events.get(boundary, ()):
                active.pop((stored.value, stored.length), None)
            for stored in start_events.get(boundary, ()):
                active[(stored.value, stored.length)] = stored
            matching = LabelList()
            for stored in active.values():
                matching.add(stored.label, stored.priority)
            key = tuple(matching.pairs())
            index = pool_index.get(key)
            if index is None:
                index = len(self._list_pool)
                pool_index[key] = index
                self._list_pool.append(key)
            self._interval_lists.append(index)
        if not self._list_pool:
            self._list_pool.append(())
            self._interval_lists.append(0)
        return len(self._boundaries) * 2 + sum(len(entry) for entry in self._list_pool)

    def search_arrays(self):
        """The rebuilt search structure, for batch walkers.

        Returns ``(boundaries, interval_lists, list_pool)`` — the sorted
        elementary-interval boundaries, the per-interval pointer into the
        deduplicated list pool, and the pool of ``(label, priority)`` match
        tuples.  Forces the lazy rebuild first, exactly like a lookup.  The
        returned structures must not be mutated.
        """
        self._ensure_built()
        return self._boundaries, self._interval_lists, self._list_pool

    def stored_prefixes(self) -> List[Tuple[int, int]]:
        """The prefixes currently stored (verification helper)."""
        return sorted(self._prefixes)

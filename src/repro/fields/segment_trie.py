"""Segment trie single-field engine.

The "Option 1" / "Option 2" single-field combinations of Table I (taken from
the authors' earlier comparison paper [17]) use a *segment trie* for the port
fields: the 16-bit port space is cut into a fixed number of equal segments per
level, forming a fixed-stride trie whose leaves carry the labels of the port
specifications covering them.  Ranges are inserted by decomposing them into
prefixes (the classic range-to-prefix expansion) and inserting each prefix.

The engine is a thin specialisation of a fixed-stride trie over 16-bit keys;
it differs from :class:`~repro.fields.multibit_trie.MultibitTrie` only in the
stride policy (equal strides derived from the level count) and in accepting
range specs directly, so it reuses the MBT node machinery internally.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.exceptions import FieldLookupError
from repro.fields.base import FieldLookupResult, SingleFieldEngine, UpdateCost
from repro.fields.multibit_trie import MultibitTrie
from repro.fields.range_utils import PORT_MAX, PortRange

__all__ = ["SegmentTrie"]


class SegmentTrie(SingleFieldEngine):
    """Fixed-stride trie over the port space with ``levels`` equal levels."""

    def __init__(self, name: str = "segment_trie", levels: int = 4, width: int = 16) -> None:
        if levels <= 0 or width % levels != 0:
            raise FieldLookupError(
                f"segment trie needs a level count dividing the width; got {levels} levels over {width} bits"
            )
        self.name = name
        self.width = width
        self.levels = levels
        stride = width // levels
        self._trie = MultibitTrie(
            name=f"{name}_trie", width=width, strides=tuple([stride] * levels), pipelined=True
        )
        # Range spec -> the prefixes it expanded to (needed for removal).
        self._expansions: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    # -- engine interface -----------------------------------------------------
    @property
    def lookup_cycles(self) -> int:
        """One cycle per level, as for any fixed-stride trie."""
        return self.levels

    @property
    def pipelined(self) -> bool:
        return True

    def node_count(self) -> int:
        return self._trie.node_count()

    def memory_bits(self) -> int:
        return self._trie.memory_bits()

    # -- update ------------------------------------------------------------------
    def insert(self, spec: Hashable, label: int, priority: int) -> UpdateCost:
        """Insert the port range ``spec = (low, high)`` via prefix expansion."""
        low, high = self._validate_spec(spec)
        if (low, high) in self._expansions:
            raise FieldLookupError(f"port range {low}:{high} already stored in {self.name}")
        prefixes = PortRange(low, high).to_prefixes()
        accesses = 0
        touched = 0
        inserted: List[Tuple[int, int]] = []
        for prefix in prefixes:
            cost = self._trie.insert(prefix, label, priority)
            accesses += cost.memory_accesses
            touched += cost.nodes_touched
            inserted.append(prefix)
        self._expansions[(low, high)] = inserted
        return UpdateCost(memory_accesses=accesses, nodes_touched=touched)

    def remove(self, spec: Hashable, label: int) -> UpdateCost:
        """Remove the port range ``spec`` and its expanded prefixes."""
        low, high = self._validate_spec(spec)
        prefixes = self._expansions.get((low, high))
        if prefixes is None:
            raise FieldLookupError(f"port range {low}:{high} not stored in {self.name}")
        accesses = 0
        touched = 0
        for prefix in prefixes:
            cost = self._trie.remove(prefix, label)
            accesses += cost.memory_accesses
            touched += cost.nodes_touched
        del self._expansions[(low, high)]
        return UpdateCost(memory_accesses=accesses, nodes_touched=touched)

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, value: int) -> FieldLookupResult:
        """Walk the trie and return the labels of every covering range."""
        if not 0 <= value <= PORT_MAX:
            raise FieldLookupError(f"port value {value} out of 16-bit range")
        result = self._trie.lookup(value)
        return FieldLookupResult(
            matches=result.matches,
            memory_accesses=result.memory_accesses,
            cycles=self.lookup_cycles,
        )

    def _validate_spec(self, spec: Hashable) -> Tuple[int, int]:
        if not isinstance(spec, tuple) or len(spec) != 2:
            raise FieldLookupError(f"segment trie spec must be a (low, high) tuple, got {spec!r}")
        low, high = spec
        try:
            PortRange(low, high)
        except Exception as exc:
            raise FieldLookupError(f"invalid port range spec {spec!r}: {exc}") from exc
        return low, high

"""Vectorized batch walks over the single-field engines.

The :mod:`repro.perf` fast path resolves each *unique* field value once per
batch, but still walks the engine's per-value ``lookup()`` — a Python
pointer-chase per value.  This module provides **batch walkers** that resolve
a whole chunk's unique values per dimension in one pass over flattened
array-based views of the engine structures:

* :class:`TrieBatchWalker` — the multi-bit trie flattened into per-level
  child tables plus a cumulative match tuple per node; a batch lookup is
  ``levels`` array-gather steps over all values at once.
* :class:`BstBatchWalker` — the binary search over interval boundaries run
  for every value simultaneously (``log2`` masked compare/update rounds), so
  the per-value access counts come out of the exact same search the scalar
  path performs.
* :class:`PortBatchWalker` — all registers compared against all values as one
  range matrix, with the bank pre-sorted in result order.
* :class:`ScalarBatchWalker` — the fallback for engines with no array view
  (the 256-entry protocol LUT, custom engines): per-value ``lookup()``.

Every walker is **bit-exact** with the engine's own ``lookup()``: same match
tuples in the same order, same ``memory_accesses``, same ``cycles`` — the
walkers only restructure *how* the identical walk is executed.  Walkers watch
their engine through the mutation-epoch surface
(:class:`~repro.observers.MutationEpoch`): every ``resolve()`` compares the
engine's epoch with the one the flattened view was built at and rebuilds
lazily after any insert/remove/reprioritize.

NumPy is used when importable (:data:`HAVE_NUMPY`); every walker also carries
a pure-Python flat-array fallback so the module works on a bare interpreter.
Pass ``use_numpy=False`` to force the fallback (the equivalence tests sweep
both implementations).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import FieldLookupError
from repro.fields.base import FieldLookupResult, SingleFieldEngine
from repro.fields.binary_search_tree import BinarySearchTree
from repro.fields.multibit_trie import MultibitTrie
from repro.fields.port_registers import PortRegisterFile
from repro.labels.label_list import LabelList

try:  # pragma: no cover - exercised implicitly by every numpy walker test
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the fallback paths are tested directly
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "BatchWalker",
    "TrieBatchWalker",
    "BstBatchWalker",
    "PortBatchWalker",
    "ScalarBatchWalker",
    "batch_walker",
]


class BatchWalker:
    """Base class: lazy flattened engine view with epoch-based invalidation.

    Subclasses implement :meth:`_rebuild` (derive the flat view from the
    engine) and :meth:`_resolve` (answer a batch of values against it).
    :meth:`resolve` takes a sequence of values — deduplication is the
    caller's job — and returns one :class:`FieldLookupResult` per value, in
    input order, bit-exact with ``engine.lookup(value)``.  The flat view is
    stamped with the engine's mutation epoch when built and rebuilt whenever
    the epoch has advanced since.
    """

    def __init__(self, engine: SingleFieldEngine, use_numpy: Optional[bool] = None) -> None:
        self.engine = engine
        self.use_numpy = HAVE_NUMPY if use_numpy is None else (use_numpy and HAVE_NUMPY)
        #: Engine epoch the flat view was built at (None: never built).
        self._built_epoch: Optional[int] = None
        #: Flat-view rebuilds performed so far (the initial build counts).
        #: Rebuild cost is the vectorized path's share of every commit, so
        #: the fast path surfaces the sum as ``walker_rebuilds``.
        self.rebuilds = 0

    def detach(self) -> None:
        """Drop the flat view (the next resolve rebuilds from the engine)."""
        self._built_epoch = None

    def resolve(self, values: Sequence[int]) -> List[FieldLookupResult]:
        """Resolve every value in one batch walk (input order preserved)."""
        if not values:
            return []
        epoch = self.engine.mutation_epoch
        if self._built_epoch != epoch:
            self._rebuild()
            self._built_epoch = epoch
            self.rebuilds += 1
        return self._resolve(values)

    def _rebuild(self) -> None:
        raise NotImplementedError

    def _resolve(self, values: Sequence[int]) -> List[FieldLookupResult]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.engine.name})"


class ScalarBatchWalker(BatchWalker):
    """Fallback walker: per-value ``engine.lookup`` (trivially bit-exact).

    Used for the protocol LUT (whose value domain is 256 entries — there is
    nothing to vectorize) and for any engine without an array view.
    """

    def _rebuild(self) -> None:  # nothing to flatten
        pass

    def _resolve(self, values: Sequence[int]) -> List[FieldLookupResult]:
        lookup = self.engine.lookup
        return [lookup(value) for value in values]


class TrieBatchWalker(BatchWalker):
    """Batch walk over a :class:`MultibitTrie` flattened into level tables.

    The flat view assigns each trie node a dense id per level and stores, per
    level, one child table ``table[node_id * (1 << stride) + branch] ->
    child_id`` (``-1`` for no child) plus the node's *cumulative* match tuple
    — the labels collected from the root down to that node, merged through
    :class:`LabelList` in exactly the order the scalar lookup merges them.  A
    batch lookup then needs only ``levels`` gather steps to find each value's
    terminal node (and its traversal depth, which is the access count).
    """

    def _rebuild(self) -> None:
        trie: MultibitTrie = self.engine
        self._width = trie.width
        self._strides = trie.strides
        root_matches = LabelList()
        for label, priority in trie.root.labels.pairs():
            root_matches.add(label, priority)
        self._matches: List[List[tuple]] = [[tuple(root_matches.pairs())]]
        tables: List[list] = []
        frontier = [(trie.root, root_matches)]
        for stride in trie.strides:
            branch_count = 1 << stride
            table = [-1] * (len(frontier) * branch_count)
            next_frontier = []
            level_matches = []
            for node_id, (node, cumulative) in enumerate(frontier):
                base = node_id * branch_count
                for branch, child in node.children.items():
                    child_id = len(next_frontier)
                    table[base + branch] = child_id
                    merged = LabelList()
                    for label, priority in cumulative.pairs():
                        merged.add(label, priority)
                    for label, priority in child.labels.pairs():
                        merged.add(label, priority)
                    next_frontier.append((child, merged))
                    level_matches.append(tuple(merged.pairs()))
            tables.append(table)
            self._matches.append(level_matches)
            frontier = next_frontier
        self._tables = tables
        if self.use_numpy:
            self._np_tables = [_np.asarray(table, dtype=_np.int64) for table in tables]

    def _check_range(self, values) -> None:
        limit = 1 << self._width
        for value in values:
            if not 0 <= value < limit:
                raise FieldLookupError(
                    f"lookup key {value} out of {self._width}-bit range"
                )

    def _resolve(self, values: Sequence[int]) -> List[FieldLookupResult]:
        self._check_range(values)
        if self.use_numpy:
            return self._resolve_numpy(values)
        return self._resolve_python(values)

    def _resolve_numpy(self, values: Sequence[int]) -> List[FieldLookupResult]:
        keys = _np.asarray(values, dtype=_np.int64)
        count = len(keys)
        node = _np.zeros(count, dtype=_np.int64)
        depth = _np.zeros(count, dtype=_np.int64)
        term_level = _np.zeros(count, dtype=_np.int64)
        term_node = _np.zeros(count, dtype=_np.int64)
        alive = _np.ones(count, dtype=bool)
        consumed = 0
        for level, stride in enumerate(self._strides):
            if not alive.any():
                break
            shift = self._width - consumed - stride
            consumed += stride
            branch = (keys >> shift) & ((1 << stride) - 1)
            table = self._np_tables[level]
            if table.size:
                # Dead lanes hold a node id from the level they stopped at;
                # gather a safe slot for them and mask the result away.
                gathered = table[_np.where(alive, node * (1 << stride) + branch, 0)]
            else:
                gathered = _np.full(count, -1, dtype=_np.int64)
            child = _np.where(alive, gathered, -1)
            depth[alive] += 1
            advanced = alive & (child >= 0)
            term_level[advanced] = level + 1
            term_node[advanced] = child[advanced]
            node = _np.where(advanced, child, node)
            alive = advanced
        cycles = self.engine.lookup_cycles
        matches = self._matches
        return [
            FieldLookupResult(matches=matches[lvl][nid], memory_accesses=acc, cycles=cycles)
            for lvl, nid, acc in zip(
                term_level.tolist(), term_node.tolist(), depth.tolist()
            )
        ]

    def _resolve_python(self, values: Sequence[int]) -> List[FieldLookupResult]:
        cycles = self.engine.lookup_cycles
        width = self._width
        strides = self._strides
        tables = self._tables
        matches = self._matches
        results = []
        for value in values:
            node = 0
            level = 0
            accesses = 0
            consumed = 0
            for stride in strides:
                shift = width - consumed - stride
                consumed += stride
                branch = (value >> shift) & ((1 << stride) - 1)
                child = tables[level][node * (1 << stride) + branch]
                accesses += 1
                if child < 0:
                    break
                node = child
                level += 1
            results.append(
                FieldLookupResult(
                    matches=matches[level][node], memory_accesses=accesses, cycles=cycles
                )
            )
        return results


class BstBatchWalker(BatchWalker):
    """Batch binary search over a :class:`BinarySearchTree`'s interval array.

    Runs the scalar lookup's exact comparison loop for every value at once:
    per round, the still-active lanes compare their midpoint boundary and
    shrink their ``[low, high]`` window, accumulating one access per round —
    so the per-value ``memory_accesses`` (and the derived ``cycles``) match
    the iterative search bit for bit, including the final +1 for the
    label-list pointer dereference.
    """

    def _rebuild(self) -> None:
        engine: BinarySearchTree = self.engine
        boundaries, interval_lists, list_pool = engine.search_arrays()
        self._boundaries = list(boundaries)
        self._interval_lists = list(interval_lists)
        self._list_pool = list(list_pool)
        if self.use_numpy:
            self._np_boundaries = _np.asarray(boundaries, dtype=_np.int64)

    def _check_range(self, values) -> None:
        width = self.engine.width
        limit = 1 << width
        for value in values:
            if not 0 <= value < limit:
                raise FieldLookupError(f"lookup key {value} out of {width}-bit range")

    def _resolve(self, values: Sequence[int]) -> List[FieldLookupResult]:
        self._check_range(values)
        if self.use_numpy:
            return self._resolve_numpy(values)
        return self._resolve_python(values)

    def _resolve_numpy(self, values: Sequence[int]) -> List[FieldLookupResult]:
        keys = _np.asarray(values, dtype=_np.int64)
        count = len(keys)
        boundaries = self._np_boundaries
        low = _np.zeros(count, dtype=_np.int64)
        high = _np.full(count, len(boundaries) - 1, dtype=_np.int64)
        position = _np.zeros(count, dtype=_np.int64)
        accesses = _np.zeros(count, dtype=_np.int64)
        active = low <= high
        while active.any():
            mid = (low + high) >> 1
            accesses[active] += 1
            le = boundaries[mid] <= keys
            take = active & le
            position[take] = mid[take]
            low[take] = mid[take] + 1
            drop = active & ~le
            high[drop] = mid[drop] - 1
            active = low <= high
        pool = self._list_pool
        pointers = self._interval_lists
        return [
            FieldLookupResult(
                matches=pool[pointers[pos]],
                memory_accesses=acc + 1,  # + the label-list pointer dereference
                cycles=max(acc + 1, 1),
            )
            for pos, acc in zip(position.tolist(), accesses.tolist())
        ]

    def _resolve_python(self, values: Sequence[int]) -> List[FieldLookupResult]:
        boundaries = self._boundaries
        pool = self._list_pool
        pointers = self._interval_lists
        results = []
        for value in values:
            accesses = 0
            low, high = 0, len(boundaries) - 1
            position = 0
            while low <= high:
                mid = (low + high) // 2
                accesses += 1
                if boundaries[mid] <= value:
                    position = mid
                    low = mid + 1
                else:
                    high = mid - 1
            accesses += 1  # dereference the interval's label-list pointer
            results.append(
                FieldLookupResult(
                    matches=pool[pointers[position]],
                    memory_accesses=accesses,
                    cycles=max(accesses, 1),
                )
            )
        return results


class PortBatchWalker(BatchWalker):
    """Batch range compare over a :class:`PortRegisterFile`'s register bank.

    The bank is flattened pre-sorted in result order (exact-first, tightest
    span first — see
    :meth:`~repro.fields.port_registers.PortRegisterFile.result_ordered_registers`),
    so each value's match tuple is just the matching subsequence; with NumPy
    the low/high comparisons run as one ``values x registers`` matrix.
    """

    def _rebuild(self) -> None:
        bank: PortRegisterFile = self.engine
        ordered = bank.result_ordered_registers()
        self._pairs = [(register.label, register.priority) for register in ordered]
        self._lows = [register.low for register in ordered]
        self._highs = [register.high for register in ordered]
        if self.use_numpy:
            self._np_lows = _np.asarray(self._lows, dtype=_np.int64)
            self._np_highs = _np.asarray(self._highs, dtype=_np.int64)

    def _check_range(self, values) -> None:
        for value in values:
            if not 0 <= value <= 0xFFFF:
                raise FieldLookupError(f"port value {value} out of 16-bit range")

    def _resolve(self, values: Sequence[int]) -> List[FieldLookupResult]:
        self._check_range(values)
        cycles = self.engine.lookup_cycles
        pairs = self._pairs
        if self.use_numpy and pairs:
            keys = _np.asarray(values, dtype=_np.int64)[:, None]
            mask = (self._np_lows[None, :] <= keys) & (keys <= self._np_highs[None, :])
            return [
                FieldLookupResult(
                    matches=tuple(pairs[index] for index in row.nonzero()[0]),
                    memory_accesses=1,
                    cycles=cycles,
                )
                for row in mask
            ]
        lows = self._lows
        highs = self._highs
        register_range = range(len(pairs))
        return [
            FieldLookupResult(
                matches=tuple(
                    pairs[index]
                    for index in register_range
                    if lows[index] <= value <= highs[index]
                ),
                memory_accesses=1,
                cycles=cycles,
            )
            for value in values
        ]


def batch_walker(engine: SingleFieldEngine, use_numpy: Optional[bool] = None) -> BatchWalker:
    """Build the best batch walker for ``engine`` (scalar fallback otherwise)."""
    if isinstance(engine, MultibitTrie):
        return TrieBatchWalker(engine, use_numpy=use_numpy)
    if isinstance(engine, BinarySearchTree):
        return BstBatchWalker(engine, use_numpy=use_numpy)
    if isinstance(engine, PortRegisterFile):
        return PortBatchWalker(engine, use_numpy=use_numpy)
    return ScalarBatchWalker(engine, use_numpy=use_numpy)

"""Protocol field lookup table.

The protocol field has an 8-bit domain and only a handful of distinct values
in real filters (3 in Table II), so the paper uses the simplest possible
structure: a direct-indexed Look-Up Table where *"the protocol value addresses
the table where the label is contained"*.  Lookup is a single memory access in
a single clock cycle.

Two kinds of protocol specification exist: exact values and the wildcard.  A
wildcard specification matches every packet, so its label is appended to every
LUT word; the exact-match label (if any) comes first, which is the priority
rule of section IV.C.1 ("the priority label for Protocol lookup is determined
by the exact matching value").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.exceptions import FieldLookupError
from repro.fields.base import FieldLookupResult, SingleFieldEngine, UpdateCost

__all__ = ["ProtocolTable"]

_PROTOCOL_SPACE = 256


@dataclass(frozen=True)
class _StoredProtocol:
    """One stored protocol specification (exact value or wildcard)."""

    wildcard: bool
    value: int
    label: int
    priority: int


class ProtocolTable(SingleFieldEngine):
    """Direct-indexed 256-entry LUT for the protocol field."""

    #: LUT word: exact label + wildcard label + valid flags.
    WORD_WIDTH = 2 + 2 + 2

    def __init__(self, name: str = "protocol") -> None:
        self.name = name
        self._exact: Dict[int, _StoredProtocol] = {}
        self._wildcard: Optional[_StoredProtocol] = None

    # -- engine interface -----------------------------------------------------
    @property
    def lookup_cycles(self) -> int:
        """The protocol label search executes in a single clock cycle."""
        return 1

    @property
    def pipelined(self) -> bool:
        return True

    def node_count(self) -> int:
        return len(self._exact) + (1 if self._wildcard else 0)

    def memory_bits(self) -> int:
        """The full 256-entry LUT exists regardless of how many values are used."""
        return _PROTOCOL_SPACE * self.WORD_WIDTH

    # -- update ------------------------------------------------------------------
    def insert(self, spec: Hashable, label: int, priority: int) -> UpdateCost:
        """Store protocol spec ``(wildcard, value)`` with its label."""
        wildcard, value = self._validate_spec(spec)
        if wildcard:
            if self._wildcard is not None:
                raise FieldLookupError(f"wildcard protocol already stored in {self.name}")
            self._wildcard = _StoredProtocol(True, 0, label, priority)
            # The wildcard label is written into every LUT word.
            return UpdateCost(memory_accesses=_PROTOCOL_SPACE, nodes_touched=1)
        if value in self._exact:
            raise FieldLookupError(f"protocol {value} already stored in {self.name}")
        self._exact[value] = _StoredProtocol(False, value, label, priority)
        return UpdateCost(memory_accesses=1, nodes_touched=1)

    def remove(self, spec: Hashable, label: int) -> UpdateCost:
        """Remove protocol spec ``(wildcard, value)``."""
        wildcard, value = self._validate_spec(spec)
        if wildcard:
            if self._wildcard is None or self._wildcard.label != label:
                raise FieldLookupError(f"wildcard protocol (label {label}) not stored in {self.name}")
            self._wildcard = None
            return UpdateCost(memory_accesses=_PROTOCOL_SPACE, nodes_touched=1)
        stored = self._exact.get(value)
        if stored is None or stored.label != label:
            raise FieldLookupError(f"protocol {value} (label {label}) not stored in {self.name}")
        del self._exact[value]
        return UpdateCost(memory_accesses=1, nodes_touched=1)

    def reprioritize(self, spec: Hashable, label: int, priority: int) -> None:
        """Update the rule priority recorded for a protocol specification."""
        wildcard, value = self._validate_spec(spec)
        if wildcard:
            if self._wildcard is None:
                raise FieldLookupError(f"wildcard protocol not stored in {self.name}")
            self._wildcard = _StoredProtocol(True, 0, label, priority)
            return
        if value not in self._exact:
            raise FieldLookupError(f"protocol {value} not stored in {self.name}")
        self._exact[value] = _StoredProtocol(False, value, label, priority)

    def invalidation_span(self, spec: Hashable) -> Tuple[int, int]:
        """A wildcard spec rewrites every LUT word; an exact spec only its own."""
        wildcard, value = self._validate_spec(spec)
        return (0, _PROTOCOL_SPACE - 1) if wildcard else (value, value)

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, value: int) -> FieldLookupResult:
        """Read the LUT word addressed by the protocol value."""
        if not 0 <= value < _PROTOCOL_SPACE:
            raise FieldLookupError(f"protocol value {value} out of 8-bit range")
        matches = []
        stored = self._exact.get(value)
        if stored is not None:
            matches.append((stored.label, stored.priority))
        if self._wildcard is not None:
            matches.append((self._wildcard.label, self._wildcard.priority))
        return FieldLookupResult(matches=tuple(matches), memory_accesses=1, cycles=self.lookup_cycles)

    def _validate_spec(self, spec: Hashable) -> Tuple[bool, int]:
        if not isinstance(spec, tuple) or len(spec) != 2:
            raise FieldLookupError(
                f"protocol spec must be a (wildcard, value) tuple, got {spec!r}"
            )
        wildcard, value = spec
        if not isinstance(wildcard, bool):
            raise FieldLookupError(f"protocol wildcard flag must be a bool, got {wildcard!r}")
        if not 0 <= value < _PROTOCOL_SPACE:
            raise FieldLookupError(f"protocol value {value} out of 8-bit range")
        return wildcard, value

"""Command-line interface for the reproduction.

Provides one subcommand per experiment (``table1`` ... ``table7``, ``fig3`` ...
``fig5``, ``update-cost``, ``latency``), plus:

* ``all`` — run every experiment and optionally write the rendered tables to a
  directory (the programmatic equivalent of the benchmark harness's
  ``benchmarks/results/`` output);
* ``generate`` — emit a synthetic ClassBench-style filter set to a file;
* ``classify`` — build any registered classifier from a filter file (or a
  synthetic workload) and stream a generated trace through it via the unified
  :mod:`repro.api` session, printing the aggregate metrics; ``--churn N``
  interleaves N transactional rule updates into the run (update-under-load);
* ``sweep`` — run several (default: all) registered classifiers over the same
  workload and print one comparison row per engine;
* ``update`` — apply a rule-delta file to a built classifier through the
  transactional control plane (:mod:`repro.api.control`) and report the
  commit (version, epoch, per-op outcomes);
* ``lint`` — run the static ruleset analyzer (:mod:`repro.analysis.lint`)
  over a filter file or synthetic workload and report shadowed / redundant /
  conflicting / unreachable rules plus coverage statistics; ``--json`` emits
  the machine-readable report and the exit code is CI-friendly (0 clean,
  1 findings, 2 error);
* ``fabric`` — simulate a multi-switch fabric
  (:mod:`repro.controller.fabric`): partition the rule set across an N-switch
  ``line`` or ``fattree`` topology, serve an ingress-tagged flow trace
  through per-switch parallel sessions and report placement + per-switch hit
  accounting; ``--churn N`` interleaves N topology-wide transactional
  commits (paired remove / reinsert) into the run;
* ``import`` — translate an iptables-save dump (:mod:`repro.io.iptables`)
  into a ClassBench filter file usable by every other subcommand;
* ``export`` — render any filter file or synthetic workload as a loadable
  iptables-save dump, reporting every rewrite the format forces;
* ``replay`` — stream a pcap capture file (:mod:`repro.io.pcap`) through a
  classifier on the zero-allocation packed-chunk path and report session
  statistics plus frame accounting.

``classify`` and ``fabric`` also accept ``--trace capture.pcap`` to serve a
real capture instead of a generated trace.

Usage::

    python -m repro.cli table6
    python -m repro.cli all --output-dir results/
    python -m repro.cli generate --flavor fw --size 5000 --output fw5k.rules
    python -m repro.cli classify --size 1000 --packets 200 --ip-algorithm bst
    python -m repro.cli classify --classifier hypercuts --size 1000
    python -m repro.cli classify --size 1000 --packets 10000 --fast --workers 4
    python -m repro.cli classify --size 1000 --packets 10000 --vectorized \\
        --workers 4 --backend process --transport packed
    python -m repro.cli classify --size 1000 --packets 5000 --fast \\
        --workers 2 --async-feed
    python -m repro.cli classify --size 1000 --packets 10000 --fast \\
        --workers 4 --churn 32
    python -m repro.cli sweep --size 500 --packets 100 --classifiers hypercuts,rfc
    python -m repro.cli update --size 1000 --delta changes.delta --packets 500
    python -m repro.cli lint --rules acl1k.rules --json
    python -m repro.cli lint --size 1000 --fail-on shadowed,conflict
    python -m repro.cli fabric --switches 4 --topology line --packets 2000
    python -m repro.cli fabric --switches 7 --topology fattree --vectorized \\
        --packets 5000 --churn 8
    python -m repro.cli import firewall.rules --output fw.rules
    python -m repro.cli export --rules acl1k.rules --output acl1k.iptables
    python -m repro.cli replay capture.pcap --rules acl1k.rules --fast \\
        --workers 4
    python -m repro.cli classify --size 1000 --trace capture.pcap
    python -m repro.cli fabric --switches 4 --trace capture.pcap
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis import format_kv, format_table
from repro.api import (
    ClassificationSession,
    available_classifiers,
    create_classifier,
    validate_classifier_names,
)
from repro.core.config import CombinerMode, IpAlgorithm
from repro.exceptions import ConfigurationError, ReproError
from repro.perf.flowcache import DEFAULT_FLOW_CAPACITY, FLOW_POLICIES
from repro.experiments import (
    fig3_pipeline,
    fig4_update,
    fig5_memory_sharing,
    lookup_latency,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    update_cost,
    update_depth,
)
from repro.rules.classbench import FilterFlavor, generate_ruleset
from repro.rules.parser import dump_classbench_file, load_classbench_file
from repro.rules.trace import generate_flow_churn_trace, generate_trace

__all__ = ["main", "EXPERIMENTS"]

#: Experiment registry: CLI name -> (driver module, description).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (table1, "Table I - lookup algorithm survey"),
    "table2": (table2, "Table II - unique rule fields"),
    "table3": (table3, "Table III - rule filter sizes"),
    "table4": (table4, "Table IV - port labelling example"),
    "table5": (table5, "Table V - FPGA synthesis estimate"),
    "table6": (table6, "Table VI - MBT vs BST configuration"),
    "table7": (table7, "Table VII - system comparison"),
    "fig3": (fig3_pipeline, "Fig. 3 - lookup pipelining"),
    "fig4": (fig4_update, "Fig. 4 - incremental update behaviour"),
    "fig5": (fig5_memory_sharing, "Fig. 5 - memory sharing"),
    "update-cost": (update_cost, "Section V.A - update cost"),
    "latency": (lookup_latency, "Section V.B - per-field latencies"),
    "update-depth": (update_depth, "Commit cost vs dependency depth"),
}


def _run_experiment(name: str) -> str:
    module, _ = EXPERIMENTS[name]
    return module.render(module.run())


def _cmd_experiment(args: argparse.Namespace) -> int:
    print(_run_experiment(args.experiment))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    output_dir: Optional[Path] = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"==> {description}")
        rendered = _run_experiment(name)
        print(rendered)
        print()
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
    if output_dir is not None:
        print(f"Rendered tables written to {output_dir}/")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    flavor = FilterFlavor(args.flavor)
    ruleset = generate_ruleset(flavor, args.size, seed=args.seed)
    dump_classbench_file(ruleset, args.output)
    print(f"Wrote {len(ruleset)} {flavor.value.upper()} rules to {args.output}")
    return 0


def _load_workload(args: argparse.Namespace):
    if getattr(args, "rules", None):
        return load_classbench_file(args.rules)
    return generate_ruleset(FilterFlavor(args.flavor), args.size, seed=args.seed)


def _load_trace_file(args: argparse.Namespace):
    """Materialise ``--trace`` as headers; returns (trace, PcapStats).

    Used where the run needs a random-access trace (churn segmentation,
    ingress tagging).  ``replay`` streams packed chunks instead and never
    materialises anything.
    """
    from repro.io.pcap import PcapStats, read_pcap

    if getattr(args, "flows", 0):
        raise ConfigurationError(
            "--flows synthesises a flow-structured trace; it cannot be "
            "combined with --trace (the capture already fixes the flows)"
        )
    stats = PcapStats()
    trace = read_pcap(args.trace, ports=args.trace_ports, stats=stats)
    if not trace:
        raise ConfigurationError(
            f"{args.trace}: capture contains no classifiable IPv4 packets "
            f"({stats.skipped} non-IP frames skipped, {stats.truncated} truncated)"
        )
    return trace, stats


def _describe_trace(path: str, stats) -> str:
    return (
        f"{path} ({stats.packets} packets, {stats.skipped} non-IP skipped, "
        f"{stats.truncated} truncated)"
    )


def _classifier_options(name: str, args: argparse.Namespace, strict_fast: bool) -> dict:
    """Factory options for ``name``, policing the perf flags for baselines.

    The :mod:`repro.perf` fast path only exists for the configurable
    architecture.  ``--fast``/``--vectorized`` on a baseline is an error for
    ``classify`` (``strict_fast``) and a stderr warning for ``sweep`` (where
    the flag legitimately applies to the configurable entry of a mixed
    sweep) — never a silent no-op.
    """
    fast = getattr(args, "fast", False)
    vectorized = getattr(args, "vectorized", False)
    flow_cache = getattr(args, "flow_cache", False)
    if name == "configurable":
        options = {
            "ip_algorithm": args.ip_algorithm,
            "combiner": args.combiner,
            "fast": fast,
            "vectorized": vectorized,
        }
        if flow_cache:
            options["flow_cache"] = True
            options["flow_policy"] = getattr(args, "flow_policy", "idle")
            capacity = getattr(args, "flow_capacity", None)
            if capacity is not None:
                options["flow_capacity"] = capacity
            predictor = getattr(args, "flow_predictor", None)
            if predictor is not None:
                options["flow_predictor"] = predictor
        return options
    if fast or vectorized or flow_cache:
        flags = "/".join(
            flag for flag, on in (
                ("--fast", fast),
                ("--vectorized", vectorized),
                ("--flow-cache", flow_cache),
            ) if on
        )
        message = (
            f"{flags} is only supported by the 'configurable' classifier; "
            f"{name!r} has no batch fast path or flow cache"
        )
        if strict_fast:
            raise ConfigurationError(message)
        print(f"warning: {message} (running {name!r} without it)", file=sys.stderr)
    return {}


def _build_classifier(name: str, ruleset, args: argparse.Namespace, strict_fast: bool = True):
    return create_classifier(
        name, ruleset, **_classifier_options(name, args, strict_fast)
    )


async def _drive_async_feed(session, trace) -> object:
    """Model a live capture: drive the pool through the asyncio front-end."""

    async def live_source():
        for packet in trace:
            yield packet

    return await session.arun(live_source())


def _split_segments(trace: Sequence, parts: int) -> List[Sequence]:
    """Split a trace into ``parts`` contiguous, near-even, non-empty slices."""
    parts = max(1, min(parts, len(trace)))
    size, extra = divmod(len(trace), parts)
    segments, start = [], 0
    for index in range(parts):
        end = start + size + (1 if index < extra else 0)
        segments.append(trace[start:end])
        start = end
    return segments


def _churn_delta(ruleset, step: int):
    """One synthetic churn transaction: remove + reinsert one installed rule."""
    from repro.api.control import Txn

    rules = ruleset.rules()
    if not rules:
        raise ConfigurationError("cannot churn an empty rule set")
    rule = rules[step % len(rules)]
    return Txn().remove(rule.rule_id).insert(rule).delta()


def _cmd_classify(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ConfigurationError(f"worker count must be positive, got {args.workers}")
    if args.churn < 0:
        raise ConfigurationError(f"churn count must be non-negative, got {args.churn}")
    ruleset = _load_workload(args)
    trace_stats = None
    if args.trace:
        trace, trace_stats = _load_trace_file(args)
    elif args.flows:
        # A flow-structured trace (repeating 5-tuples, Zipf or uniform
        # popularity with flow churn) — the workload the exact-match flow
        # cache serves.
        trace = generate_flow_churn_trace(
            ruleset,
            count=args.packets,
            seed=args.seed + 1,
            flows=args.flows,
            popularity=args.flow_popularity,
            churn=args.flow_churn_rate,
        )
    else:
        trace = generate_trace(ruleset, count=args.packets, seed=args.seed + 1)
    # With churn the trace is cut into churn+1 segments and one transactional
    # update (remove + reinsert of an installed rule) commits between
    # consecutive segments — classification under live rule churn.
    segments = _split_segments(trace, args.churn + 1) if args.churn else [trace]
    updates_applied = 0
    details = {}
    # A non-default backend/transport/feed mode is honoured even with one
    # worker — never a silent no-op (a 1-worker process pool is a real
    # isolation choice, and the async front-end only exists on the pool).
    parallel = (
        args.workers > 1
        or args.backend != "thread"
        or args.transport != "auto"
        or args.async_feed
    )
    if parallel:
        from repro.perf import ParallelSession, ReplicaSpec

        spec = ReplicaSpec(
            args.classifier, ruleset, _classifier_options(args.classifier, args, True)
        )
        with ParallelSession.from_factory(
            spec,
            workers=args.workers,
            chunk_size=args.chunk_size,
            backend=args.backend,
            transport=args.transport,
        ) as session:
            for index, segment in enumerate(segments):
                if args.async_feed:
                    stats = asyncio.run(_drive_async_feed(session, segment))
                else:
                    stats = session.run(segment)
                if index < len(segments) - 1:
                    session.apply(_churn_delta(ruleset, index))
                    updates_applied += 1
            details = session.replica_details()
            transport = session.transport
    else:
        classifier = _build_classifier(args.classifier, ruleset, args)
        runner = ClassificationSession(classifier, chunk_size=args.chunk_size)
        for index, segment in enumerate(segments):
            stats = runner.run(segment)
            if index < len(segments) - 1:
                classifier.control.begin().extend(_churn_delta(ruleset, index)).commit()
                updates_applied += 1
        details = classifier.stats().details
    report = {
        "Rule set": f"{ruleset.name} ({len(ruleset)} rules)",
        "Classifier": stats.classifier,
        "Packets classified": stats.packets,
        "Chunks streamed": stats.chunks,
        "Hit ratio": f"{stats.hit_ratio:.3f}",
        "Avg memory accesses / packet": f"{stats.average_memory_accesses:.1f}",
        "Structure memory": f"{stats.memory_megabits:.2f} Mbit",
    }
    if trace_stats is not None:
        report["Trace file"] = _describe_trace(args.trace, trace_stats)
    if parallel:
        report["Worker replicas"] = args.workers
        report["Worker backend"] = args.backend
        report["Chunk transport"] = transport
        if args.async_feed:
            report["Feed mode"] = "async (ParallelSession.arun)"
    if updates_applied:
        report["Churn updates applied"] = updates_applied
    if args.flows:
        report["Flow trace"] = (
            f"{args.flows} flows, {args.flow_popularity} popularity, "
            f"churn {args.flow_churn_rate:g}"
        )
    if stats.flow_lookups:
        report["Flow cache hit rate"] = f"{stats.flow_hit_rate:.3f}"
        if stats.flow_evictions:
            report["Flow cache evictions"] = stats.flow_evictions
    if stats.average_latency_cycles is not None:
        report["Avg latency (cycles)"] = f"{stats.average_latency_cycles:.1f}"
    if stats.truncated_lookups:
        report["Truncated lookups (!)"] = stats.truncated_lookups
    if "ip_algorithm" in details:
        report["IP algorithm"] = str(details["ip_algorithm"]).upper()
        report["Combiner mode"] = details["combiner_mode"]
        fast_state = "off"
        if details.get("fast_path"):
            fast_state = "on (vectorized)" if details.get("fast_path_vectorized") else "on"
        report["Batch fast path"] = fast_state
        if details.get("flow_cache"):
            report["Flow cache"] = f"on ({details['flow_cache_policy']} policy)"
        report["Model throughput (40B packets)"] = f"{details['throughput_gbps']:.2f} Gbps"
        report["Rule capacity"] = details["rule_capacity"]
    print(format_kv(report, title="Classification run"))
    return 0


def _fabric_churn_victims(ruleset, count: int) -> List:
    """Rules to churn through the fabric: prefer overlap-free singletons.

    A singleton rule is its own placement component, so removing and
    reinserting it moves exactly one rule on exactly its host switches —
    churn measures the fabric update path, not a placement reshuffle.
    """
    from repro.analysis.depindex import DependencyIndex

    rules = ruleset.rules()
    if not rules:
        raise ConfigurationError("cannot churn an empty rule set")
    index = DependencyIndex(rules)
    singles = [rule for rule in rules if not index.overlapping(rule)]
    pool = singles or rules
    return [pool[i % len(pool)] for i in range(count)]


def _cmd_fabric(args: argparse.Namespace) -> int:
    """Simulate a multi-switch fabric serving an ingress-tagged flow trace."""
    from dataclasses import replace

    from repro.controller.fabric import FabricController, Topology
    from repro.core.config import ClassifierConfig
    from repro.rules.trace import generate_fabric_trace

    if args.churn < 0:
        raise ConfigurationError(f"churn count must be non-negative, got {args.churn}")
    ruleset = _load_workload(args)
    if args.topology == "line":
        topology = Topology.line(args.switches)
    else:
        topology = Topology.fattree(args.switches)
    config = ClassifierConfig().with_ip_algorithm(IpAlgorithm(args.ip_algorithm))
    config = replace(config, combiner_mode=CombinerMode(args.combiner))
    fabric = FabricController(
        topology, config, fast=args.fast, vectorized=args.vectorized
    )
    fabric.install(ruleset)
    plan = fabric.plan
    trace_stats = None
    if args.trace:
        # Real captures carry no ingress tags; serve() assigns each header a
        # deterministic, flow-affine ingress (assign_ingresses).
        trace, trace_stats = _load_trace_file(args)
    else:
        trace = generate_fabric_trace(
            ruleset,
            topology.ingresses(),
            count=args.packets,
            seed=args.seed + 1,
            flows=args.flows or 64,
            popularity=args.flow_popularity,
            churn=args.flow_churn_rate,
        )
    # Fabric churn commits in *pairs* (remove in one commit, reinsert in the
    # next): a remove+reinsert staged in a single transaction diffs to empty
    # per-switch deltas, since per-switch programs are content-compared.
    segments = _split_segments(trace, args.churn + 1) if args.churn else [trace]
    victims = _fabric_churn_victims(ruleset, (args.churn + 1) // 2)
    packets = matched = hop_lookups = updates_applied = 0
    for index, segment in enumerate(segments):
        result = fabric.serve(segment, chunk_size=args.chunk_size)
        packets += result.packets
        matched += result.matched
        hop_lookups += result.hop_lookups
        if index < len(segments) - 1:
            victim = victims[index // 2]
            txn = fabric.begin()
            if index % 2 == 0:
                txn.remove(victim.rule_id)
            else:
                txn.insert(victim)
            txn.commit()
            updates_applied += 1
    report = {
        "Rule set": f"{ruleset.name} ({len(ruleset)} rules)",
        "Topology": f"{topology.name} ({len(topology.switches)} switches, "
                    f"{len(topology.ingresses())} ingresses)",
        "Placement buckets (k)": plan.k,
        "Rule slots installed": f"{plan.total_rule_slots} "
                                f"(full replication: {len(ruleset) * len(topology.switches)})",
        "Replication factor": f"{plan.replication_factor:.2f}",
        "Largest switch program": plan.max_switch_rules,
        "Packets served": packets,
        "Hit ratio": f"{matched / packets:.3f}" if packets else "n/a",
        "Per-hop lookups": hop_lookups,
        "Fabric commits": fabric.commits,
        "Rolled-back commits": fabric.rolled_back_commits,
    }
    if trace_stats is not None:
        report["Trace file"] = _describe_trace(args.trace, trace_stats)
    if updates_applied:
        report["Churn updates applied"] = updates_applied
    if args.fast or args.vectorized:
        report["Batch fast path"] = "on (vectorized)" if args.vectorized else "on"
    print(format_kv(report, title="Fabric simulation"))
    rows = []
    for switch in fabric.switches():
        rows.append(
            {
                "Switch": f"dp{switch.datapath_id}",
                "Rules": switch.classifier.installed_rules,
                "Lookups": switch.stats.packets_classified,
                "Hits": switch.stats.packets_matched,
                "Hit ratio": switch.stats.match_ratio,
                "Version": switch.classifier.control.version,
            }
        )
    print(format_table(rows, title="Per-switch accounting"))
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    """Apply a rule-delta file through the transactional control plane."""
    from repro.api.control import load_delta_file

    ruleset = _load_workload(args)
    classifier = _build_classifier(args.classifier, ruleset, args)
    plane = classifier.control
    before = plane.program()
    delta = load_delta_file(args.delta, before)
    if not delta.ops:
        print(f"{args.delta}: no operations staged; nothing to commit.")
        return 0
    commit = plane.begin().extend(delta).commit()
    after = plane.program()
    report = {
        "Rule set": f"{ruleset.name} ({len(before.rules)} rules before)",
        "Delta file": args.delta,
        "Ops committed": len(commit.delta),
        "Program version": f"{before.version} -> {after.version}",
        "Commit epoch": commit.epoch,
        "Structural update": "yes" if commit.structural else "no",
        "Update cycles": commit.update_cycles,
        "Rules installed": len(after.rules),
    }
    print(format_kv(report, title="Control-plane commit (all-or-nothing)"))
    for line in commit.delta.describe():
        print(f"  * {line}")
    if args.packets:
        trace = generate_trace(ruleset, count=args.packets, seed=args.seed + 1)
        stats = ClassificationSession(classifier, chunk_size=args.chunk_size).run(trace)
        print()
        print(
            format_kv(
                {
                    "Packets classified": stats.packets,
                    "Hit ratio": f"{stats.hit_ratio:.3f}",
                    "Avg memory accesses / packet": f"{stats.average_memory_accesses:.1f}",
                },
                title="Post-commit classification",
            )
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static ruleset analyzer; exit 0 clean / 1 findings / 2 error."""
    from repro.analysis.lint import LINT_CATEGORIES, analyze_ruleset

    if args.fail_on:
        fail_on = {name.strip() for name in args.fail_on.split(",") if name.strip()}
        unknown = fail_on - set(LINT_CATEGORIES)
        if unknown:
            raise ConfigurationError(
                f"unknown lint categories: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(LINT_CATEGORIES)})"
            )
    else:
        fail_on = set(LINT_CATEGORIES)
    ruleset = _load_workload(args)
    report = analyze_ruleset(ruleset, max_witnesses=args.max_witnesses)
    print(report.to_json() if args.json else report.render_text())
    failing = sum(1 for finding in report.findings if finding.category in fail_on)
    return 1 if failing else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    ruleset = _load_workload(args)
    trace = generate_trace(ruleset, count=args.packets, seed=args.seed + 1)
    names = (
        [name.strip() for name in args.classifiers.split(",") if name.strip()]
        if args.classifiers
        else list(available_classifiers())
    )
    # Fail fast on typos before the (potentially expensive) build loop.
    validate_classifier_names(names)
    rows = []
    for name in names:
        classifier = _build_classifier(name, ruleset, args, strict_fast=False)
        stats = ClassificationSession(classifier, chunk_size=args.chunk_size).run(trace)
        rows.append(
            {
                "Classifier": name,
                "Avg accesses": stats.average_memory_accesses,
                "Worst accesses": stats.worst_memory_accesses,
                "Memory Mbit": stats.memory_megabits,
                "Hit ratio": stats.hit_ratio,
            }
        )
    title = (
        f"Classifier sweep on {ruleset.name} "
        f"({len(ruleset)} rules, {len(trace)} packets)"
    )
    print(format_table(rows, title=title))
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    """Translate an iptables-save dump into a ClassBench filter file."""
    from repro.io.iptables import load_iptables_file

    ruleset = load_iptables_file(args.input)
    lines = dump_classbench_file(ruleset, args.output, include_action=True)
    tagged = sum(
        1 for rule in ruleset.rules() if "source_rule_id" in rule.metadata
    )
    report = {
        "Input": args.input,
        "Rules imported": len(ruleset),
        "Lines written": f"{len(lines)} -> {args.output}",
        "rid-tagged rules": tagged,
    }
    print(format_kv(report, title="iptables import"))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Render a filter file / synthetic workload as loadable iptables-save."""
    from repro.io.iptables import dump_iptables_file

    ruleset = _load_workload(args)
    export = dump_iptables_file(
        ruleset, args.output, chain=args.chain, mode=args.mode
    )
    report = {
        "Rule set": f"{ruleset.name} ({export.rules_in} rules)",
        "Output": f"{args.output} (chain {args.chain})",
        "iptables rules written": export.lines_out,
        "Expanded rules": len(export.expanded),
        "Fidelity": (
            "exact over realizable packets"
            if export.exact
            else f"{len(export.notes)} semantic note(s) below"
        ),
    }
    print(format_kv(report, title="iptables export"))
    for note in export.notes:
        print(f"  * rule {note.rule_id} [{note.category}]: {note.detail}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Stream a pcap capture through a classifier on the packed-chunk path."""
    from repro.io.pcap import PcapStats, read_pcap_packed
    from repro.perf import ParallelSession, ReplicaSpec

    if args.workers < 1:
        raise ConfigurationError(f"worker count must be positive, got {args.workers}")
    ruleset = _load_workload(args)
    spec = ReplicaSpec(
        args.classifier, ruleset, _classifier_options(args.classifier, args, True)
    )
    trace_stats = PcapStats()
    # The zero-allocation path: 5-tuples pack straight into 104-bit chunk
    # words; workers are the first place a PacketHeader exists.
    chunks = read_pcap_packed(
        args.trace,
        chunk_size=args.chunk_size,
        ports=args.trace_ports,
        stats=trace_stats,
    )
    with ParallelSession.from_factory(
        spec,
        workers=args.workers,
        chunk_size=args.chunk_size,
        backend=args.backend,
        transport=args.transport,
    ) as session:
        stats = session.run(chunks)
        transport = session.transport
    report = {
        "Rule set": f"{ruleset.name} ({len(ruleset)} rules)",
        "Trace file": _describe_trace(args.trace, trace_stats),
        "Port extraction": args.trace_ports,
        "Classifier": stats.classifier,
        "Packets classified": stats.packets,
        "Chunks streamed": stats.chunks,
        "Hit ratio": f"{stats.hit_ratio:.3f}",
        "Avg memory accesses / packet": f"{stats.average_memory_accesses:.1f}",
        "Worker replicas": args.workers,
        "Worker backend": args.backend,
        "Chunk transport": transport,
    }
    print(format_kv(report, title="Capture replay"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the SOCC 2014 configurable packet classification architecture",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, (_, description) in EXPERIMENTS.items():
        sub = subparsers.add_parser(name, help=description)
        sub.set_defaults(func=_cmd_experiment, experiment=name)

    sub_all = subparsers.add_parser("all", help="run every experiment")
    sub_all.add_argument("--output-dir", default=None, help="directory for rendered tables")
    sub_all.set_defaults(func=_cmd_all)

    sub_generate = subparsers.add_parser("generate", help="generate a synthetic filter set")
    sub_generate.add_argument("--flavor", choices=[f.value for f in FilterFlavor], default="acl")
    sub_generate.add_argument("--size", type=int, default=1000)
    sub_generate.add_argument("--seed", type=int, default=2014)
    sub_generate.add_argument("--output", required=True)
    sub_generate.set_defaults(func=_cmd_generate)

    def add_workload_arguments(
        sub: argparse.ArgumentParser, packets: bool = True
    ) -> None:
        sub.add_argument("--rules", default=None, help="ClassBench filter file (optional)")
        sub.add_argument("--flavor", choices=[f.value for f in FilterFlavor], default="acl")
        sub.add_argument("--size", type=int, default=1000)
        sub.add_argument("--seed", type=int, default=2014)
        if packets:
            sub.add_argument("--packets", type=int, default=200)
        sub.add_argument("--chunk-size", type=int, default=256,
                         help="streaming session chunk size")
        sub.add_argument(
            "--fast", action="store_true",
            help="enable the repro.perf batch fast path (configurable classifier only)",
        )
        sub.add_argument(
            "--vectorized", action="store_true",
            help="enable the vectorized cold path of the fast path "
                 "(implies --fast; configurable classifier only)",
        )
        sub.add_argument(
            "--ip-algorithm", choices=[a.value for a in IpAlgorithm], default="mbt",
            help="IPalg_s position (configurable classifier only)",
        )
        sub.add_argument(
            "--combiner", choices=[m.value for m in CombinerMode], default="cross_product",
            help="label combination mode (configurable classifier only)",
        )

    def add_trace_port_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace-ports", choices=["transport", "word"], default="transport",
            dest="trace_ports",
            help="pcap port extraction: real L4 ports for port-bearing "
                 "protocols (transport) or the first 4 bytes after the IP "
                 "header unconditionally (word, hardware-extractor "
                 "semantics)",
        )

    def add_trace_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace", default=None,
            help="serve a pcap capture file instead of a generated trace "
                 "(--packets and --flows do not apply; the capture fixes "
                 "the workload)",
        )
        add_trace_port_argument(sub)

    sub_classify = subparsers.add_parser(
        "classify", help="classify a trace with any registered classifier"
    )
    sub_classify.add_argument(
        "--classifier", choices=available_classifiers(), default="configurable",
        help="registered classification engine",
    )
    sub_classify.add_argument(
        "--workers", type=int, default=1,
        help="classifier replicas to shard the trace across (ParallelSession)",
    )
    sub_classify.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="ParallelSession worker backend: in-process threads (deployment "
             "model) or worker processes (true CPU parallelism)",
    )
    sub_classify.add_argument(
        "--transport", choices=["auto", "packed", "pickle"], default="auto",
        help="process-backend chunk transport: packed 104-bit header words in "
             "a shared-memory ring (zero-copy) or pickled object chunks; "
             "auto prefers packed when shared memory is available",
    )
    sub_classify.add_argument(
        "--async-feed", action="store_true", dest="async_feed",
        help="drive the trace through the asyncio front-end "
             "(ParallelSession.arun), modelling a live packet source",
    )
    sub_classify.add_argument(
        "--churn", type=int, default=0,
        help="interleave N transactional rule updates (remove + reinsert) "
             "into the run, spread evenly across the trace — classification "
             "under live rule churn",
    )
    sub_classify.add_argument(
        "--flow-cache", action="store_true", dest="flow_cache",
        help="front the lookup path with the exact-match flow cache "
             "(repro.perf.flowcache; configurable classifier only)",
    )
    sub_classify.add_argument(
        "--flow-policy", choices=list(FLOW_POLICIES), default="idle",
        help="flow-cache eviction policy: idle / hard timeout or the "
             "HQTimer-style hybrid timer scheme",
    )
    sub_classify.add_argument(
        "--flow-capacity", type=int, default=None,
        help="flow-cache capacity in entries (default %d)" % DEFAULT_FLOW_CAPACITY,
    )
    sub_classify.add_argument(
        "--flow-predictor", choices=["frequency", "recency"], default=None,
        help="predictor scoring which entries stay resident under capacity "
             "pressure (default: plain LRU)",
    )
    sub_classify.add_argument(
        "--flows", type=int, default=0,
        help="generate a flow-structured trace of N repeating flows instead "
             "of independent headers (the workload a flow cache serves)",
    )
    sub_classify.add_argument(
        "--flow-popularity", choices=["zipf", "uniform"], default="zipf",
        help="flow popularity distribution of the --flows trace",
    )
    sub_classify.add_argument(
        "--flow-churn-rate", type=float, default=0.0,
        help="per-packet probability that one live flow of the --flows "
             "trace dies and a fresh flow replaces it",
    )
    add_workload_arguments(sub_classify)
    add_trace_arguments(sub_classify)
    sub_classify.set_defaults(func=_cmd_classify)

    sub_update = subparsers.add_parser(
        "update",
        help="apply a rule-delta file through the transactional control plane",
    )
    sub_update.add_argument(
        "--classifier", choices=available_classifiers(), default="configurable",
        help="registered classification engine to build and update",
    )
    sub_update.add_argument(
        "--delta", required=True,
        help="rule-delta file: '- <rule_id>' removes, '+ @<classbench line>' "
             "inserts, '! ip_algorithm=<mbt|bst>' / '! combiner=<mode>' "
             "reconfigures; the whole file commits as one transaction",
    )
    add_workload_arguments(sub_update)
    sub_update.set_defaults(func=_cmd_update)

    sub_lint = subparsers.add_parser(
        "lint",
        help="statically analyze a rule set: shadowed / redundant / "
             "conflicting / unreachable rules and coverage statistics",
    )
    sub_lint.add_argument("--rules", default=None, help="ClassBench filter file (optional)")
    sub_lint.add_argument("--flavor", choices=[f.value for f in FilterFlavor], default="acl")
    sub_lint.add_argument("--size", type=int, default=1000)
    sub_lint.add_argument("--seed", type=int, default=2014)
    sub_lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    sub_lint.add_argument(
        "--fail-on", default=None, dest="fail_on",
        help="comma-separated categories that fail the run with exit code 1 "
             "(default: all of shadowed,redundant,conflict,unreachable)",
    )
    sub_lint.add_argument(
        "--max-witnesses", type=int, default=4096, dest="max_witnesses",
        help="witness-grid budget of the exact unreachability check; rules "
             "exceeding it are skipped (reported, never guessed)",
    )
    sub_lint.set_defaults(func=_cmd_lint)

    sub_sweep = subparsers.add_parser(
        "sweep", help="compare registered classifiers on one workload"
    )
    sub_sweep.add_argument(
        "--classifiers", default=None,
        help="comma-separated registry names (default: all registered)",
    )
    add_workload_arguments(sub_sweep)
    sub_sweep.set_defaults(func=_cmd_sweep)

    sub_fabric = subparsers.add_parser(
        "fabric",
        help="simulate a multi-switch fabric: partitioned rule placement, "
             "topology-wide transactional updates, per-switch serving",
    )
    sub_fabric.add_argument(
        "--switches", type=int, default=4,
        help="number of switches in the fabric",
    )
    sub_fabric.add_argument(
        "--topology", choices=["line", "fattree"], default="line",
        help="fabric shape: a linear chain, or a tiny 2-level fat-tree "
             "(1 core + 2 aggregation + N-3 edge switches, needs N >= 5)",
    )
    sub_fabric.add_argument(
        "--churn", type=int, default=0,
        help="interleave N topology-wide transactional commits (paired "
             "remove / reinsert of an installed rule) into the run",
    )
    sub_fabric.add_argument(
        "--flows", type=int, default=0,
        help="live flows of the ingress-tagged trace (default 64)",
    )
    sub_fabric.add_argument(
        "--flow-popularity", choices=["zipf", "uniform"], default="zipf",
        help="flow popularity distribution of the fabric trace",
    )
    sub_fabric.add_argument(
        "--flow-churn-rate", type=float, default=0.0,
        help="per-packet probability that one live flow dies and a fresh "
             "flow (possibly at a different ingress) replaces it",
    )
    add_workload_arguments(sub_fabric)
    add_trace_arguments(sub_fabric)
    sub_fabric.set_defaults(func=_cmd_fabric)

    sub_import = subparsers.add_parser(
        "import",
        help="translate an iptables-save dump into a ClassBench filter file",
    )
    sub_import.add_argument(
        "input",
        help="iptables-save dump (the output of `iptables-save`); only the "
             "filter table is supported, unsupported matches are "
             "line-numbered errors",
    )
    sub_import.add_argument(
        "--output", required=True,
        help="ClassBench filter file to write (action=<name> columns "
             "preserve the iptables targets)",
    )
    sub_import.set_defaults(func=_cmd_import)

    sub_export = subparsers.add_parser(
        "export",
        help="render a filter file or synthetic workload as a loadable "
             "iptables-save dump",
    )
    sub_export.add_argument("--output", required=True, help="iptables-save file to write")
    sub_export.add_argument(
        "--chain", default="FORWARD",
        help="chain the exported rules append to (default FORWARD)",
    )
    sub_export.add_argument(
        "--mode", choices=["expand", "strict"], default="expand",
        help="what to do with rules iptables cannot express 1:1: rewrite "
             "them exactly over realizable packets and report (expand), or "
             "fail (strict)",
    )
    add_workload_arguments(sub_export, packets=False)
    sub_export.set_defaults(func=_cmd_export)

    sub_replay = subparsers.add_parser(
        "replay",
        help="stream a pcap capture through a classifier on the "
             "zero-allocation packed-chunk path",
    )
    sub_replay.add_argument("trace", help="classic pcap capture file to replay")
    add_trace_port_argument(sub_replay)
    sub_replay.add_argument(
        "--classifier", choices=available_classifiers(), default="configurable",
        help="registered classification engine",
    )
    sub_replay.add_argument(
        "--workers", type=int, default=1,
        help="classifier replicas to shard the capture across (ParallelSession)",
    )
    sub_replay.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="ParallelSession worker backend",
    )
    sub_replay.add_argument(
        "--transport", choices=["auto", "packed", "pickle"], default="auto",
        help="process-backend chunk transport; packed ships the capture's "
             "chunk words through shared memory verbatim",
    )
    add_workload_arguments(sub_replay, packets=False)
    sub_replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro sweep | head`) closed the pipe.
        return 0


if __name__ == "__main__":
    sys.exit(main())

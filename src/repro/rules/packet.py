"""Packet header model.

The classification architecture of the paper works on the classic 5-tuple:
source / destination IPv4 addresses, source / destination transport ports and
the IP protocol number.  :class:`PacketHeader` is the immutable value object
flowing through every classifier in this library (the configurable
architecture, the baselines and the linear-search ground truth alike), so
every engine sees exactly the same input representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.exceptions import RuleError
from repro.fields.prefix import IPV4_WIDTH, format_ipv4, parse_ipv4
from repro.fields.range_utils import PORT_MAX, PORT_WIDTH

__all__ = [
    "PacketHeader",
    "FIVE_TUPLE_FIELDS",
    "FIVE_TUPLE_WIDTHS",
    "PROTOCOL_WIDTH",
    "HEADER_BITS",
]

#: Canonical field ordering used across the library (rule fields, label
#: tuples, memory images and reports all follow this order).
FIVE_TUPLE_FIELDS: Tuple[str, ...] = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
)

#: Width of the IP protocol field in bits.
PROTOCOL_WIDTH = 8

#: Canonical bit width of every 5-tuple field, in :data:`FIVE_TUPLE_FIELDS`
#: order.  This is the single source of truth for the header's fixed-width
#: wire layout (:mod:`repro.perf.transport` packs headers field by field in
#: exactly this order and at exactly these widths).
FIVE_TUPLE_WIDTHS: Dict[str, int] = {
    "src_ip": IPV4_WIDTH,
    "dst_ip": IPV4_WIDTH,
    "src_port": PORT_WIDTH,
    "dst_port": PORT_WIDTH,
    "protocol": PROTOCOL_WIDTH,
}

#: Total width of one packed 5-tuple header word (104 bits in the paper's
#: pipeline: 32 + 32 + 16 + 16 + 8).
HEADER_BITS = sum(FIVE_TUPLE_WIDTHS.values())

_IP_MAX = (1 << IPV4_WIDTH) - 1
_PROTO_MAX = (1 << PROTOCOL_WIDTH) - 1


@dataclass(frozen=True)
class PacketHeader:
    """The 5-tuple header of one packet, all fields as plain integers."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        if not 0 <= self.src_ip <= _IP_MAX:
            raise RuleError(f"source IP {self.src_ip} out of 32-bit range")
        if not 0 <= self.dst_ip <= _IP_MAX:
            raise RuleError(f"destination IP {self.dst_ip} out of 32-bit range")
        if not 0 <= self.src_port <= PORT_MAX:
            raise RuleError(f"source port {self.src_port} out of 16-bit range")
        if not 0 <= self.dst_port <= PORT_MAX:
            raise RuleError(f"destination port {self.dst_port} out of 16-bit range")
        if not 0 <= self.protocol <= _PROTO_MAX:
            raise RuleError(f"protocol {self.protocol} out of 8-bit range")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_strings(
        cls,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        protocol: int,
    ) -> "PacketHeader":
        """Build a header from dotted-quad address strings."""
        return cls(parse_ipv4(src_ip), parse_ipv4(dst_ip), src_port, dst_port, protocol)

    # -- field access --------------------------------------------------------
    def field(self, name: str) -> int:
        """Return the value of one 5-tuple field by canonical name."""
        if name not in FIVE_TUPLE_FIELDS:
            raise RuleError(f"unknown packet field {name!r}")
        return getattr(self, name)

    def as_dict(self) -> Dict[str, int]:
        """Return the header as a ``field name -> value`` mapping."""
        return {name: getattr(self, name) for name in FIVE_TUPLE_FIELDS}

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Return the header as the canonical 5-tuple of integers."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    # -- segmentation ---------------------------------------------------------
    def ip_segments(self) -> Dict[str, int]:
        """Split the two IP fields into 16-bit segments.

        The hardware architecture partitions each 32-bit address into a high
        and a low 16-bit segment, each searched by its own trie (section
        IV.C).  Keys follow the ``<field>_hi`` / ``<field>_lo`` convention used
        by the IP lookup engines.
        """
        return {
            "src_ip_hi": self.src_ip >> 16,
            "src_ip_lo": self.src_ip & 0xFFFF,
            "dst_ip_hi": self.dst_ip >> 16,
            "dst_ip_lo": self.dst_ip & 0xFFFF,
        }

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_tuple())

    def __str__(self) -> str:
        return (
            f"{format_ipv4(self.src_ip)}:{self.src_port} -> "
            f"{format_ipv4(self.dst_ip)}:{self.dst_port} proto={self.protocol}"
        )

"""Packet trace generation.

Lookup-performance experiments (Tables I and VI) need a stream of packet
headers to classify.  ClassBench ships a ``trace_generator`` that derives
headers from the filter set so that most packets actually hit a rule; this
module reproduces that behaviour:

* :func:`generate_trace` draws headers biased towards the rule set (a packet
  is synthesised *inside* a randomly chosen rule with probability
  ``hit_ratio`` and uniformly at random otherwise);
* :func:`generate_uniform_trace` draws headers uniformly from the full header
  space (almost every packet misses — useful for default-rule stress tests);
* :class:`TraceStats` summarises the hit structure of a generated trace.

All generation is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import ExperimentError
from repro.fields.range_utils import PORT_MAX
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = ["generate_trace", "generate_uniform_trace", "TraceStats", "trace_stats"]

_COMMON_PROTOCOLS: Sequence[int] = (6, 17, 1, 47, 50)


@dataclass(frozen=True)
class TraceStats:
    """Hit statistics of a packet trace against a rule set."""

    packets: int
    hits: int
    misses: int
    distinct_rules_hit: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of packets that matched at least one rule."""
        return self.hits / self.packets if self.packets else 0.0


def _random_point_in_rule(rng: random.Random, rule: Rule) -> PacketHeader:
    """Draw one header uniformly from the hyper-rectangle a rule covers."""
    src_low, src_high = rule.src_prefix.low, rule.src_prefix.high
    dst_low, dst_high = rule.dst_prefix.low, rule.dst_prefix.high
    protocol = rule.protocol.value if not rule.protocol.wildcard else rng.choice(_COMMON_PROTOCOLS)
    return PacketHeader(
        src_ip=rng.randint(src_low, src_high),
        dst_ip=rng.randint(dst_low, dst_high),
        src_port=rng.randint(rule.src_port.low, rule.src_port.high),
        dst_port=rng.randint(rule.dst_port.low, rule.dst_port.high),
        protocol=protocol,
    )


def _random_header(rng: random.Random) -> PacketHeader:
    return PacketHeader(
        src_ip=rng.getrandbits(32),
        dst_ip=rng.getrandbits(32),
        src_port=rng.randint(0, PORT_MAX),
        dst_port=rng.randint(0, PORT_MAX),
        protocol=rng.choice(_COMMON_PROTOCOLS),
    )


def generate_trace(
    ruleset: RuleSet,
    count: int,
    seed: int = 99,
    hit_ratio: float = 0.9,
    locality: float = 0.0,
) -> List[PacketHeader]:
    """Generate ``count`` packet headers biased towards ``ruleset``.

    Parameters
    ----------
    ruleset:
        The rule set the trace should exercise; must be non-empty when
        ``hit_ratio > 0``.
    count:
        Number of headers to generate.
    seed:
        PRNG seed, making traces reproducible.
    hit_ratio:
        Probability that a header is synthesised inside a randomly chosen
        rule (ClassBench's trace generator uses a similar scheme).
    locality:
        Probability of repeating the previous header instead of drawing a new
        one — models flow locality, where only the first packet of a flow is a
        "new" classification.
    """
    if count < 0:
        raise ExperimentError(f"trace length must be non-negative, got {count}")
    if not 0.0 <= hit_ratio <= 1.0:
        raise ExperimentError(f"hit_ratio must be in [0, 1], got {hit_ratio}")
    if not 0.0 <= locality < 1.0:
        raise ExperimentError(f"locality must be in [0, 1), got {locality}")
    rules = ruleset.rules()
    if hit_ratio > 0.0 and not rules:
        raise ExperimentError("cannot generate a hit-biased trace from an empty rule set")
    rng = random.Random(seed)
    trace: List[PacketHeader] = []
    previous: Optional[PacketHeader] = None
    for _ in range(count):
        if previous is not None and locality and rng.random() < locality:
            trace.append(previous)
            continue
        if rules and rng.random() < hit_ratio:
            header = _random_point_in_rule(rng, rng.choice(rules))
        else:
            header = _random_header(rng)
        trace.append(header)
        previous = header
    return trace


def generate_uniform_trace(count: int, seed: int = 99) -> List[PacketHeader]:
    """Generate ``count`` headers drawn uniformly from the full header space."""
    if count < 0:
        raise ExperimentError(f"trace length must be non-negative, got {count}")
    rng = random.Random(seed)
    return [_random_header(rng) for _ in range(count)]


def trace_stats(ruleset: RuleSet, trace: Sequence[PacketHeader]) -> TraceStats:
    """Compute hit statistics of ``trace`` against ``ruleset`` (linear scan)."""
    hits = 0
    rules_hit = set()
    for packet in trace:
        match = ruleset.highest_priority_match(packet)
        if match is not None:
            hits += 1
            rules_hit.add(match.rule_id)
    return TraceStats(
        packets=len(trace),
        hits=hits,
        misses=len(trace) - hits,
        distinct_rules_hit=len(rules_hit),
    )

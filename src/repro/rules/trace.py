"""Packet trace generation.

Lookup-performance experiments (Tables I and VI) need a stream of packet
headers to classify.  ClassBench ships a ``trace_generator`` that derives
headers from the filter set so that most packets actually hit a rule; this
module reproduces that behaviour:

* :func:`generate_trace` draws headers biased towards the rule set (a packet
  is synthesised *inside* a randomly chosen rule with probability
  ``hit_ratio`` and uniformly at random otherwise);
* :func:`generate_uniform_trace` draws headers uniformly from the full header
  space (almost every packet misses — useful for default-rule stress tests);
* :func:`generate_flow_churn_trace` draws packets from a churning population
  of live *flows* with Zipf or uniform popularity — the repeating-5-tuple
  workload an exact-match flow cache (:mod:`repro.perf.flowcache`) exploits;
* :class:`TraceStats` summarises the hit structure of a generated trace.

All generation is deterministic given ``seed``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Sequence, TypeVar

from repro.exceptions import ExperimentError
from repro.fields.range_utils import PORT_MAX
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

__all__ = [
    "generate_trace",
    "generate_uniform_trace",
    "generate_flow_churn_trace",
    "generate_fabric_trace",
    "FabricPacket",
    "TraceStats",
    "trace_stats",
]

_COMMON_PROTOCOLS: Sequence[int] = (6, 17, 1, 47, 50)


@dataclass(frozen=True)
class TraceStats:
    """Hit statistics of a packet trace against a rule set."""

    packets: int
    hits: int
    misses: int
    distinct_rules_hit: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of packets that matched at least one rule."""
        return self.hits / self.packets if self.packets else 0.0


def _random_point_in_rule(rng: random.Random, rule: Rule) -> PacketHeader:
    """Draw one header uniformly from the hyper-rectangle a rule covers."""
    src_low, src_high = rule.src_prefix.low, rule.src_prefix.high
    dst_low, dst_high = rule.dst_prefix.low, rule.dst_prefix.high
    protocol = rule.protocol.value if not rule.protocol.wildcard else rng.choice(_COMMON_PROTOCOLS)
    return PacketHeader(
        src_ip=rng.randint(src_low, src_high),
        dst_ip=rng.randint(dst_low, dst_high),
        src_port=rng.randint(rule.src_port.low, rule.src_port.high),
        dst_port=rng.randint(rule.dst_port.low, rule.dst_port.high),
        protocol=protocol,
    )


def _random_header(rng: random.Random) -> PacketHeader:
    return PacketHeader(
        src_ip=rng.getrandbits(32),
        dst_ip=rng.getrandbits(32),
        src_port=rng.randint(0, PORT_MAX),
        dst_port=rng.randint(0, PORT_MAX),
        protocol=rng.choice(_COMMON_PROTOCOLS),
    )


def generate_trace(
    ruleset: RuleSet,
    count: int,
    seed: int = 99,
    hit_ratio: float = 0.9,
    locality: float = 0.0,
) -> List[PacketHeader]:
    """Generate ``count`` packet headers biased towards ``ruleset``.

    Parameters
    ----------
    ruleset:
        The rule set the trace should exercise; must be non-empty when
        ``hit_ratio > 0``.
    count:
        Number of headers to generate.
    seed:
        PRNG seed, making traces reproducible.
    hit_ratio:
        Probability that a header is synthesised inside a randomly chosen
        rule (ClassBench's trace generator uses a similar scheme).
    locality:
        Probability of repeating the previous header instead of drawing a new
        one — models flow locality, where only the first packet of a flow is a
        "new" classification.
    """
    if count < 0:
        raise ExperimentError(f"trace length must be non-negative, got {count}")
    if not 0.0 <= hit_ratio <= 1.0:
        raise ExperimentError(f"hit_ratio must be in [0, 1], got {hit_ratio}")
    if not 0.0 <= locality < 1.0:
        raise ExperimentError(f"locality must be in [0, 1), got {locality}")
    rules = ruleset.rules()
    if hit_ratio > 0.0 and not rules:
        raise ExperimentError("cannot generate a hit-biased trace from an empty rule set")
    rng = random.Random(seed)
    trace: List[PacketHeader] = []
    previous: Optional[PacketHeader] = None
    for _ in range(count):
        if previous is not None and locality and rng.random() < locality:
            trace.append(previous)
            continue
        if rules and rng.random() < hit_ratio:
            header = _random_point_in_rule(rng, rng.choice(rules))
        else:
            header = _random_header(rng)
        trace.append(header)
        previous = header
    return trace


class FabricPacket(NamedTuple):
    """One fabric packet: the header plus the switch it enters the fabric at."""

    ingress: int
    header: PacketHeader


_Flow = TypeVar("_Flow")


def _validate_flow_parameters(
    count: int, flows: int, popularity: str, zipf_exponent: float, churn: float, hit_ratio: float
) -> None:
    if count < 0:
        raise ExperimentError(f"trace length must be non-negative, got {count}")
    if flows <= 0:
        raise ExperimentError(f"flow count must be positive, got {flows}")
    if popularity not in ("zipf", "uniform"):
        raise ExperimentError(
            f"unknown flow popularity {popularity!r}; choose 'zipf' or 'uniform'"
        )
    if zipf_exponent <= 0.0:
        raise ExperimentError(f"zipf_exponent must be positive, got {zipf_exponent}")
    if not 0.0 <= churn < 1.0:
        raise ExperimentError(f"churn must be in [0, 1), got {churn}")
    if not 0.0 <= hit_ratio <= 1.0:
        raise ExperimentError(f"hit_ratio must be in [0, 1], got {hit_ratio}")


def _flow_population(
    rng: random.Random,
    count: int,
    flows: int,
    popularity: str,
    zipf_exponent: float,
    churn: float,
    fresh_flow: Callable[[], _Flow],
) -> List[_Flow]:
    """Draw ``count`` packets from a churning flow population.

    The RNG call order here is the contract: seeded single-switch traces
    (:func:`generate_flow_churn_trace`) predate this helper and must keep
    producing byte-identical streams.
    """
    live = [fresh_flow() for _ in range(flows)]
    if popularity == "zipf":
        weights = [1.0 / (rank ** zipf_exponent) for rank in range(1, flows + 1)]
    else:
        weights = [1.0] * flows
    cum_weights = list(itertools.accumulate(weights))
    trace: List[_Flow] = []
    for _ in range(count):
        if churn and rng.random() < churn:
            live[rng.randrange(flows)] = fresh_flow()
        trace.append(rng.choices(live, cum_weights=cum_weights)[0])
    return trace


def generate_flow_churn_trace(
    ruleset: RuleSet,
    count: int,
    seed: int = 99,
    flows: int = 64,
    popularity: str = "zipf",
    zipf_exponent: float = 1.2,
    churn: float = 0.0,
    hit_ratio: float = 0.9,
) -> List[PacketHeader]:
    """Generate a trace of repeating *flows* with churn — the flow-cache workload.

    Unlike :func:`generate_trace` (independent headers, near-zero repeats),
    every packet here belongs to one of ``flows`` live flows, drawn by
    popularity:

    * ``popularity="zipf"`` — flow ``k`` (1-based rank) is picked with
      probability proportional to ``1 / k**zipf_exponent``: a few elephant
      flows dominate, a long tail of mice trickles.  This is the canonical
      Internet traffic shape an exact-match flow cache exploits.
    * ``popularity="uniform"`` — all live flows equally likely; the
      adversarial shape where caching only helps once ``flows`` fits.

    ``churn`` is the per-packet probability that one live flow dies and a
    fresh flow takes over its popularity rank (flow arrival/death), forcing
    compulsory misses and exercising timeout eviction.  Flow headers are
    hit-biased like :func:`generate_trace` (``hit_ratio``).  Deterministic
    given ``seed``.
    """
    _validate_flow_parameters(count, flows, popularity, zipf_exponent, churn, hit_ratio)
    rules = ruleset.rules()
    if hit_ratio > 0.0 and not rules:
        raise ExperimentError("cannot generate a hit-biased trace from an empty rule set")
    rng = random.Random(seed)

    def fresh_flow() -> PacketHeader:
        if rules and rng.random() < hit_ratio:
            return _random_point_in_rule(rng, rng.choice(rules))
        return _random_header(rng)

    return _flow_population(rng, count, flows, popularity, zipf_exponent, churn, fresh_flow)


def generate_fabric_trace(
    ruleset: RuleSet,
    ingresses: Sequence[int],
    count: int,
    seed: int = 99,
    flows: int = 64,
    popularity: str = "zipf",
    zipf_exponent: float = 1.2,
    churn: float = 0.0,
    hit_ratio: float = 0.9,
) -> List[FabricPacket]:
    """Generate an ingress-switch-tagged flow trace for a multi-switch fabric.

    Same churning flow population as :func:`generate_flow_churn_trace`, but
    each *flow* is pinned to the ingress switch it entered the fabric at —
    every packet of a flow arrives at the same switch, the way a host's
    traffic always enters through its edge switch.  ``ingresses`` are the
    candidate ingress datapath ids (typically
    :meth:`Topology.ingresses <repro.controller.fabric.Topology.ingresses>`).
    Deterministic given ``seed``.
    """
    if not ingresses:
        raise ExperimentError("fabric trace needs at least one ingress switch")
    _validate_flow_parameters(count, flows, popularity, zipf_exponent, churn, hit_ratio)
    rules = ruleset.rules()
    if hit_ratio > 0.0 and not rules:
        raise ExperimentError("cannot generate a hit-biased trace from an empty rule set")
    rng = random.Random(seed)
    ingress_pool = list(ingresses)

    def fresh_flow() -> FabricPacket:
        ingress = rng.choice(ingress_pool)
        if rules and rng.random() < hit_ratio:
            return FabricPacket(ingress, _random_point_in_rule(rng, rng.choice(rules)))
        return FabricPacket(ingress, _random_header(rng))

    return _flow_population(rng, count, flows, popularity, zipf_exponent, churn, fresh_flow)


def generate_uniform_trace(count: int, seed: int = 99) -> List[PacketHeader]:
    """Generate ``count`` headers drawn uniformly from the full header space."""
    if count < 0:
        raise ExperimentError(f"trace length must be non-negative, got {count}")
    rng = random.Random(seed)
    return [_random_header(rng) for _ in range(count)]


def trace_stats(ruleset: RuleSet, trace: Sequence[PacketHeader]) -> TraceStats:
    """Compute hit statistics of ``trace`` against ``ruleset`` (linear scan)."""
    hits = 0
    rules_hit = set()
    for packet in trace:
        match = ruleset.highest_priority_match(packet)
        if match is not None:
            hits += 1
            rules_hit.add(match.rule_id)
    return TraceStats(
        packets=len(trace),
        hits=hits,
        misses=len(trace) - hits,
        distinct_rules_hit=len(rules_hit),
    )

"""Synthetic ClassBench-style rule set generator.

The paper evaluates on the Washington University filter sets (ACL, FW and IPC
flavours at roughly 1K/5K/10K rules) [12], which are not redistributable.
This module provides a **seeded synthetic generator** that reproduces the
structural properties those tables depend on:

* the rough rule counts of Table III (916/4415/9603 for acl1, and similar for
  FW/IPC),
* the unique-field-value structure of Table II — e.g. for ACL filters the
  source-port field is a single wildcard, the protocol field has ~3 distinct
  values, destination ports cluster on ~100 well-known services and the number
  of unique source addresses grows much faster with rule count than the number
  of unique destination addresses,
* heavy reuse of individual field values across rules (the property the label
  method exploits to cut storage by "more than 50%").

Every generator run is fully deterministic given ``seed``, so tests and
benchmarks are reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import RuleSetError
from repro.fields.prefix import Prefix, prefix_mask
from repro.fields.range_utils import PORT_MAX, PortRange
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.rules.ruleset import RuleSet

__all__ = [
    "FilterFlavor",
    "FlavorProfile",
    "ClassBenchGenerator",
    "generate_ruleset",
    "PAPER_RULE_COUNTS",
]


class FilterFlavor(enum.Enum):
    """The three filter families of Table III."""

    ACL = "acl"
    FW = "fw"
    IPC = "ipc"


#: The actual rule counts the paper reports for its nominal 1K/5K/10K sets
#: (Table III).  The generator targets these exact sizes when asked for the
#: nominal size.
PAPER_RULE_COUNTS: Dict[Tuple[FilterFlavor, int], int] = {
    (FilterFlavor.ACL, 1000): 916,
    (FilterFlavor.ACL, 5000): 4415,
    (FilterFlavor.ACL, 10000): 9603,
    (FilterFlavor.FW, 1000): 791,
    (FilterFlavor.FW, 5000): 4653,
    (FilterFlavor.FW, 10000): 9311,
    (FilterFlavor.IPC, 1000): 938,
    (FilterFlavor.IPC, 5000): 4460,
    (FilterFlavor.IPC, 10000): 9037,
}

#: Well-known destination ports that real ACL/FW filters concentrate on.
_WELL_KNOWN_PORTS: Sequence[int] = (
    20, 21, 22, 23, 25, 53, 67, 68, 69, 80, 110, 119, 123, 135, 137, 138, 139,
    143, 161, 162, 179, 389, 443, 445, 465, 500, 514, 515, 520, 554, 587, 631,
    636, 873, 993, 995, 1080, 1194, 1433, 1434, 1521, 1701, 1723, 1812, 1813,
    2049, 2082, 2083, 2181, 2375, 2376, 3128, 3306, 3389, 4443, 4500, 5060,
    5061, 5222, 5432, 5671, 5672, 5900, 6379, 6443, 6881, 7001, 7812, 8000,
    8008, 8080, 8081, 8443, 8888, 9000, 9090, 9092, 9200, 9300, 10000, 11211,
    27017, 27018, 33434, 49152, 51820, 61000,
)

#: Port ranges that show up repeatedly in real filters (ephemeral ranges,
#: registered ranges, small service clusters).
_COMMON_PORT_RANGES: Sequence[Tuple[int, int]] = (
    (0, PORT_MAX),
    (0, 1023),
    (1024, PORT_MAX),
    (1024, 65535),
    (49152, PORT_MAX),
    (6000, 6063),
    (137, 139),
    (67, 68),
    (161, 162),
    (20, 21),
    (5060, 5061),
    (7810, 7820),
    (8080, 8090),
    (2082, 2083),
    (27015, 27030),
)

#: Protocol mix: TCP, UDP and the wildcard — three unique protocol
#: specifications, matching the "3" of Table II.
_PROTOCOLS: Sequence[Tuple[Optional[int], float]] = (
    (6, 0.65),     # TCP
    (17, 0.25),    # UDP
    (None, 0.10),  # wildcard
)


@dataclass(frozen=True)
class FlavorProfile:
    """Tunable structural knobs for one filter flavour.

    The default profiles below are calibrated so the Table II / Table III
    statistics land in the paper's regime; they can be overridden to explore
    other rule-set shapes (the ablation benchmarks do exactly that).
    """

    #: Fraction of nominal size actually emitted (real filter sets lose rules
    #: to redundancy elimination — 916/1000 for acl1 and so on).
    yield_ratio: float
    #: Ratio of unique source prefixes to rule count (used off-anchor).
    src_ip_uniqueness: float
    #: Asymptotic number of unique destination prefixes (saturating growth).
    dst_ip_asymptote: int
    #: Rule count at which destination uniqueness reaches ~63% of the asymptote.
    dst_ip_knee: int
    #: Number of distinct source port specifications (1 => always wildcard).
    src_port_pool: int
    #: Number of distinct destination port specifications.
    dst_port_pool: int
    #: Fraction of dst ports that are exact values (vs ranges).
    dst_port_exact_fraction: float
    #: Fraction of fully wildcarded source prefixes.
    src_wildcard_fraction: float
    #: Fraction of fully wildcarded destination prefixes.
    dst_wildcard_fraction: float
    #: Typical prefix length distribution (length, weight) pairs.
    prefix_length_weights: Tuple[Tuple[int, float], ...]
    #: Calibration anchors: (nominal size, unique src prefixes, unique dst
    #: prefixes) taken straight from Table II; when the requested nominal size
    #: matches an anchor, the generator targets those exact unique counts.
    unique_anchors: Tuple[Tuple[int, int, int], ...] = ()

    def anchor_for(self, nominal_size: int) -> Optional[Tuple[int, int]]:
        """Return the (src, dst) unique-count targets for an anchored size."""
        for size, src_unique, dst_unique in self.unique_anchors:
            if size == nominal_size:
                return src_unique, dst_unique
        return None


_PROFILES: Dict[FilterFlavor, FlavorProfile] = {
    FilterFlavor.ACL: FlavorProfile(
        yield_ratio=0.92,
        src_ip_uniqueness=0.50,
        dst_ip_asymptote=750,
        dst_ip_knee=2500,
        src_port_pool=1,
        dst_port_pool=108,
        dst_port_exact_fraction=0.85,
        src_wildcard_fraction=0.05,
        dst_wildcard_fraction=0.02,
        prefix_length_weights=((32, 0.45), (24, 0.25), (28, 0.10), (16, 0.12), (8, 0.08)),
        unique_anchors=((1000, 103, 297), (5000, 805, 640), (10000, 4784, 733)),
    ),
    FilterFlavor.FW: FlavorProfile(
        yield_ratio=0.82,
        src_ip_uniqueness=0.30,
        dst_ip_asymptote=1600,
        dst_ip_knee=4000,
        src_port_pool=30,
        dst_port_pool=120,
        dst_port_exact_fraction=0.55,
        src_wildcard_fraction=0.25,
        dst_wildcard_fraction=0.12,
        prefix_length_weights=((32, 0.30), (24, 0.20), (16, 0.15), (0, 0.15), (8, 0.20)),
    ),
    FilterFlavor.IPC: FlavorProfile(
        yield_ratio=0.91,
        src_ip_uniqueness=0.40,
        dst_ip_asymptote=2200,
        dst_ip_knee=5000,
        src_port_pool=12,
        dst_port_pool=118,
        dst_port_exact_fraction=0.70,
        src_wildcard_fraction=0.10,
        dst_wildcard_fraction=0.05,
        prefix_length_weights=((32, 0.40), (24, 0.22), (20, 0.10), (16, 0.16), (12, 0.12)),
    ),
}


def _coverage_corrected_pool(target_unique: int, draws: int) -> int:
    """Pool size whose expected coverage under uniform sampling is ``target_unique``.

    Drawing ``draws`` times uniformly from a pool of ``P`` values covers about
    ``P * (1 - exp(-draws / P))`` distinct values; this inverts that relation
    with a few fixed-point iterations so the *realised* unique-field counts of
    the generated rule set land on the Table II targets.
    """
    import math

    if target_unique <= 0:
        return 1
    if target_unique >= draws:
        return target_unique
    pool = float(target_unique)
    for _ in range(60):
        coverage_fraction = 1.0 - math.exp(-draws / pool)
        updated = target_unique / coverage_fraction
        if abs(updated - pool) < 0.5:
            pool = updated
            break
        pool = updated
    return max(1, int(round(pool)))


class ClassBenchGenerator:
    """Deterministic generator of ClassBench-flavoured rule sets."""

    def __init__(
        self,
        flavor: FilterFlavor = FilterFlavor.ACL,
        seed: int = 2014,
        profile: Optional[FlavorProfile] = None,
    ) -> None:
        self.flavor = flavor
        self.seed = seed
        self.profile = profile or _PROFILES[flavor]

    # -- public API --------------------------------------------------------
    def generate(self, nominal_size: int, name: Optional[str] = None) -> RuleSet:
        """Generate a rule set of roughly ``nominal_size`` rules.

        When ``nominal_size`` is one of the paper's nominal sizes (1K/5K/10K)
        the exact Table III rule count for this flavour is produced; otherwise
        the flavour's ``yield_ratio`` is applied.
        """
        if nominal_size <= 0:
            raise RuleSetError(f"nominal size must be positive, got {nominal_size}")
        target = PAPER_RULE_COUNTS.get(
            (self.flavor, nominal_size), max(1, int(round(nominal_size * self.profile.yield_ratio)))
        )
        # str seeds hash deterministically (SHA-512) regardless of
        # PYTHONHASHSEED, unlike tuple.__hash__ which is randomized per
        # process for the embedded flavour string.
        rng = random.Random(f"{self.seed}-{self.flavor.value}-{nominal_size}")
        label = name or f"{self.flavor.value}1_{nominal_size // 1000}k"

        anchor = self.profile.anchor_for(nominal_size)
        if anchor is not None:
            src_unique_target, dst_unique_target = anchor
        else:
            src_unique_target = max(1, int(target * self.profile.src_ip_uniqueness))
            import math

            dst_unique_target = max(
                1,
                int(
                    self.profile.dst_ip_asymptote
                    * (1.0 - math.exp(-target / self.profile.dst_ip_knee))
                ),
            )
        # Wildcarded rules never draw from the prefix pools, so the effective
        # number of pool draws is reduced by the wildcard fraction; without
        # this correction the realised unique counts land systematically
        # below the Table II anchors.
        src_draws = max(1, int(round(target * (1.0 - self.profile.src_wildcard_fraction))))
        dst_draws = max(1, int(round(target * (1.0 - self.profile.dst_wildcard_fraction))))
        src_prefixes = self._prefix_pool(rng, _coverage_corrected_pool(src_unique_target, src_draws))
        dst_prefixes = self._prefix_pool(rng, _coverage_corrected_pool(dst_unique_target, dst_draws))
        src_ports = self._port_pool(rng, self.profile.src_port_pool, exact_fraction=0.2)
        dst_ports = self._port_pool(
            rng, self.profile.dst_port_pool, exact_fraction=self.profile.dst_port_exact_fraction
        )

        ruleset = RuleSet(name=label)
        seen: set = set()
        priority = 0
        attempts = 0
        max_attempts = target * 50
        while len(ruleset) < target and attempts < max_attempts:
            attempts += 1
            rule = self._draw_rule(rng, priority, src_prefixes, dst_prefixes, src_ports, dst_ports)
            signature = tuple(sorted(rule.field_keys().items()))
            if signature in seen:
                continue
            seen.add(signature)
            ruleset.add(rule)
            priority += 1
        if len(ruleset) < target:
            # The combinatorial pools are too small for the requested size;
            # widen by appending fully random specific rules.
            while len(ruleset) < target:
                rule = self._draw_rule(
                    rng,
                    priority,
                    self._prefix_pool(rng, 64),
                    self._prefix_pool(rng, 64),
                    src_ports,
                    dst_ports,
                )
                signature = tuple(sorted(rule.field_keys().items()))
                if signature in seen:
                    continue
                seen.add(signature)
                ruleset.add(rule)
                priority += 1
        return ruleset

    # -- internals -----------------------------------------------------------
    def _choose_length(self, rng: random.Random) -> int:
        lengths, weights = zip(*self.profile.prefix_length_weights)
        return rng.choices(lengths, weights=weights, k=1)[0]

    def _prefix_pool(self, rng: random.Random, size: int) -> List[Prefix]:
        pool: List[Prefix] = []
        seen = set()
        # Cluster addresses inside a handful of /8 and /16 "institution" blocks,
        # the way real filter sets concentrate on the owner's address space.
        cluster_bases = [rng.getrandbits(16) << 16 for _ in range(max(2, size // 64))]
        guard = 0
        while len(pool) < size and guard < size * 30:
            guard += 1
            length = self._choose_length(rng)
            if length == 0:
                continue
            base = rng.choice(cluster_bases)
            value = (base | rng.getrandbits(16)) & prefix_mask(length)
            key = (value, length)
            if key in seen:
                continue
            seen.add(key)
            pool.append(Prefix(value, length))
        if not pool:
            pool.append(Prefix(0, 0))
        return pool

    def _port_pool(self, rng: random.Random, size: int, exact_fraction: float) -> List[PortRange]:
        if size <= 1:
            return [PortRange.wildcard()]
        pool: List[PortRange] = [PortRange.wildcard()]
        seen = {(0, PORT_MAX)}
        exact_target = int(round((size - 1) * exact_fraction))
        ports = list(_WELL_KNOWN_PORTS)
        rng.shuffle(ports)
        for port in ports[:exact_target]:
            key = (port, port)
            if key in seen:
                continue
            seen.add(key)
            pool.append(PortRange.exact(port))
        range_candidates = list(_COMMON_PORT_RANGES)
        rng.shuffle(range_candidates)
        index = 0
        guard = 0
        while len(pool) < size and guard < size * 20:
            guard += 1
            if index < len(range_candidates):
                low, high = range_candidates[index]
                index += 1
            else:
                low = rng.randrange(0, PORT_MAX - 64)
                high = min(PORT_MAX, low + rng.choice((0, 1, 3, 7, 15, 63, 255, 1023)))
            if (low, high) in seen:
                continue
            seen.add((low, high))
            pool.append(PortRange(low, high))
        return pool

    def _draw_protocol(self, rng: random.Random) -> ProtocolMatch:
        values, weights = zip(*((value, weight) for value, weight in _PROTOCOLS))
        choice = rng.choices(values, weights=weights, k=1)[0]
        return ProtocolMatch.any() if choice is None else ProtocolMatch.exact(choice)

    def _draw_rule(
        self,
        rng: random.Random,
        priority: int,
        src_prefixes: Sequence[Prefix],
        dst_prefixes: Sequence[Prefix],
        src_ports: Sequence[PortRange],
        dst_ports: Sequence[PortRange],
    ) -> Rule:
        action = rng.choices(
            (RuleAction.FORWARD, RuleAction.DROP, RuleAction.REDIRECT_GROUP, RuleAction.MODIFY),
            weights=(0.55, 0.30, 0.10, 0.05),
            k=1,
        )[0]
        # Fully wildcarded address fields appear with the per-flavour
        # probability (FW filters carry many "from anywhere" rules, ACLs few).
        wildcard = Prefix(0, 0)
        src_prefix = wildcard if rng.random() < self.profile.src_wildcard_fraction else rng.choice(src_prefixes)
        dst_prefix = wildcard if rng.random() < self.profile.dst_wildcard_fraction else rng.choice(dst_prefixes)
        return Rule(
            rule_id=priority,
            priority=priority,
            src_prefix=src_prefix,
            dst_prefix=dst_prefix,
            src_port=rng.choice(src_ports),
            dst_port=rng.choice(dst_ports),
            protocol=self._draw_protocol(rng),
            action=action,
            metadata={"flavor": self.flavor.value},
        )


def generate_ruleset(
    flavor: FilterFlavor = FilterFlavor.ACL,
    nominal_size: int = 1000,
    seed: int = 2014,
    name: Optional[str] = None,
) -> RuleSet:
    """Convenience wrapper: one-call synthetic rule set generation."""
    return ClassBenchGenerator(flavor=flavor, seed=seed).generate(nominal_size, name=name)

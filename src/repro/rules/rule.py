"""Classification rules and their field specifications.

A rule (flow table entry in OpenFlow terms) is a conjunction of per-field
match specifications plus a priority and an action.  The three match syntaxes
of the paper are modelled explicitly:

* **Longest Prefix Match** for the two IP address fields (:class:`~repro.fields.prefix.Prefix`),
* **Range / Exact Matching** for the two port fields (:class:`~repro.fields.range_utils.PortRange`),
* **Exact-or-wildcard matching** for the protocol field (:class:`ProtocolMatch`).

Priorities follow the usual filter-set convention: the rule listed *first* has
the highest priority, so **lower numeric priority wins**.  The classifier must
return the Highest Priority Matching Rule (HPMR) — the matching rule with the
smallest ``priority`` value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.exceptions import RuleError
from repro.fields.prefix import Prefix, format_ipv4_prefix
from repro.fields.range_utils import PortRange
from repro.rules.packet import FIVE_TUPLE_FIELDS, PacketHeader

__all__ = ["RuleAction", "ProtocolMatch", "Rule"]


class RuleAction(enum.Enum):
    """The flow actions the paper's introduction mentions.

    The architecture only needs to *return* the action attached to the HPMR;
    it never executes it, so a small closed enumeration is sufficient.
    """

    FORWARD = "forward"
    DROP = "drop"
    MODIFY = "modify"
    REDIRECT_GROUP = "redirect_group"
    SEND_TO_CONTROLLER = "send_to_controller"


@dataclass(frozen=True)
class ProtocolMatch:
    """Exact-or-wildcard match on the 8-bit IP protocol field."""

    value: int = 0
    wildcard: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise RuleError(f"protocol value {self.value} out of 8-bit range")

    @classmethod
    def exact(cls, value: int) -> "ProtocolMatch":
        """Match a single protocol number (TCP=6, UDP=17, ICMP=1, ...)."""
        return cls(value=value, wildcard=False)

    @classmethod
    def any(cls) -> "ProtocolMatch":
        """Match every protocol (the ``0x00/0x00`` ClassBench wildcard)."""
        return cls(value=0, wildcard=True)

    def matches(self, protocol: int) -> bool:
        """Return True when the packet protocol satisfies this match."""
        return self.wildcard or protocol == self.value

    def key(self) -> Tuple[bool, int]:
        """Hashable canonical identity (used for unique-field label tables)."""
        return (self.wildcard, 0 if self.wildcard else self.value)

    def __str__(self) -> str:
        return "*" if self.wildcard else str(self.value)


@dataclass(frozen=True)
class Rule:
    """One 5-tuple classification rule.

    Attributes
    ----------
    rule_id:
        Stable identifier, unique within a rule set.  Survives priority
        renumbering and incremental updates.
    priority:
        Smaller value = higher priority (position in the original filter).
    src_prefix / dst_prefix:
        IPv4 prefixes for the address fields.
    src_port / dst_port:
        Port ranges (exact values are ranges of span 1).
    protocol:
        Exact-or-wildcard protocol match.
    action:
        Action attached to the rule; returned alongside the match.
    metadata:
        Free-form annotations (generator flavour, original text line, ...).
    """

    rule_id: int
    priority: int
    src_prefix: Prefix
    dst_prefix: Prefix
    src_port: PortRange
    dst_port: PortRange
    protocol: ProtocolMatch
    action: RuleAction = RuleAction.FORWARD
    metadata: Dict[str, str] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.rule_id < 0:
            raise RuleError(f"rule id must be non-negative, got {self.rule_id}")
        if self.priority < 0:
            raise RuleError(f"priority must be non-negative, got {self.priority}")
        if self.src_prefix.width != 32 or self.dst_prefix.width != 32:
            raise RuleError("rule IP prefixes must be 32-bit")

    # -- construction helpers -------------------------------------------------
    @classmethod
    def build(
        cls,
        rule_id: int,
        priority: int,
        src: str = "0.0.0.0/0",
        dst: str = "0.0.0.0/0",
        src_port: str = "0:65535",
        dst_port: str = "0:65535",
        protocol: Optional[int] = None,
        action: RuleAction = RuleAction.FORWARD,
    ) -> "Rule":
        """Convenience constructor from human-readable field strings."""
        return cls(
            rule_id=rule_id,
            priority=priority,
            src_prefix=Prefix.parse(src),
            dst_prefix=Prefix.parse(dst),
            src_port=PortRange.parse(src_port),
            dst_port=PortRange.parse(dst_port),
            protocol=ProtocolMatch.any() if protocol is None else ProtocolMatch.exact(protocol),
            action=action,
        )

    @classmethod
    def catch_all(cls, rule_id: int, priority: int, action: RuleAction = RuleAction.DROP) -> "Rule":
        """The fully-wildcarded default rule that matches every packet."""
        return cls.build(rule_id=rule_id, priority=priority, action=action)

    def with_priority(self, priority: int) -> "Rule":
        """Return a copy of the rule with a different priority."""
        return replace(self, priority=priority)

    # -- matching ---------------------------------------------------------------
    def matches(self, packet: PacketHeader) -> bool:
        """Return True when the packet header satisfies every field of the rule."""
        return (
            self.src_prefix.contains(packet.src_ip)
            and self.dst_prefix.contains(packet.dst_ip)
            and self.src_port.contains(packet.src_port)
            and self.dst_port.contains(packet.dst_port)
            and self.protocol.matches(packet.protocol)
        )

    def overlaps(self, other: "Rule") -> bool:
        """Return True when some packet could match both rules."""
        return (
            self.src_prefix.overlaps(other.src_prefix)
            and self.dst_prefix.overlaps(other.dst_prefix)
            and self.src_port.overlaps(other.src_port)
            and self.dst_port.overlaps(other.dst_port)
            and (
                self.protocol.wildcard
                or other.protocol.wildcard
                or self.protocol.value == other.protocol.value
            )
        )

    # -- field access used by label tables / generators -------------------------
    def field_key(self, name: str):
        """Canonical hashable identity of one field's match specification.

        Two rules sharing the same ``field_key`` for a field also share the
        label for that field — this is precisely the "unique rule field"
        notion of Table II.
        """
        if name == "src_ip":
            return (self.src_prefix.value, self.src_prefix.length)
        if name == "dst_ip":
            return (self.dst_prefix.value, self.dst_prefix.length)
        if name == "src_port":
            return (self.src_port.low, self.src_port.high)
        if name == "dst_port":
            return (self.dst_port.low, self.dst_port.high)
        if name == "protocol":
            return self.protocol.key()
        raise RuleError(f"unknown rule field {name!r}")

    def field_keys(self) -> Dict[str, object]:
        """Return the canonical identities of all five fields."""
        return {name: self.field_key(name) for name in FIVE_TUPLE_FIELDS}

    def specificity(self) -> int:
        """A rough measure of how narrow the rule is (used by generators/tests).

        Sum of prefix lengths plus a bonus for exact ports/protocol; bigger is
        more specific.
        """
        score = self.src_prefix.length + self.dst_prefix.length
        score += 16 if self.src_port.is_exact else 0
        score += 16 if self.dst_port.is_exact else 0
        score += 8 if not self.protocol.wildcard else 0
        return score

    def __str__(self) -> str:
        return (
            f"#{self.rule_id} p{self.priority} "
            f"@{format_ipv4_prefix(self.src_prefix.value, self.src_prefix.length)} "
            f"{format_ipv4_prefix(self.dst_prefix.value, self.dst_prefix.length)} "
            f"{self.src_port} {self.dst_port} {self.protocol} -> {self.action.value}"
        )

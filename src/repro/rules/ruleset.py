"""Rule set container.

A :class:`RuleSet` is an ordered collection of :class:`~repro.rules.rule.Rule`
objects with unique ids and unique priorities.  It is the unit exchanged
between the workload generators, the SDN controller and every classifier: all
classifiers are built from a rule set (or updated incrementally with rules
taken from one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.exceptions import RuleSetError
from repro.rules.packet import FIVE_TUPLE_FIELDS, PacketHeader
from repro.rules.rule import Rule

__all__ = ["RuleSet", "RuleSetStats"]


@dataclass(frozen=True)
class RuleSetStats:
    """Summary statistics of a rule set (feeds Tables II and III)."""

    name: str
    size: int
    unique_field_counts: Dict[str, int]
    wildcard_field_counts: Dict[str, int]
    exact_port_counts: Dict[str, int]
    average_specificity: float


class RuleSet:
    """Ordered, indexable collection of classification rules.

    Rules are kept sorted by priority (ascending, i.e. highest priority
    first).  Ids and priorities must both be unique; the container enforces
    this on every mutation so downstream structures can use either as a key.
    """

    def __init__(self, rules: Optional[Iterable[Rule]] = None, name: str = "ruleset") -> None:
        self.name = name
        self._by_id: Dict[int, Rule] = {}
        self._ordered: List[Rule] = []
        self._dirty = False
        if rules is not None:
            for rule in rules:
                self.add(rule)

    # -- mutation -----------------------------------------------------------
    def add(self, rule: Rule) -> None:
        """Add a rule; ids and priorities must not collide with existing rules."""
        if rule.rule_id in self._by_id:
            raise RuleSetError(f"duplicate rule id {rule.rule_id} in {self.name}")
        if any(existing.priority == rule.priority for existing in self._by_id.values()):
            raise RuleSetError(f"duplicate priority {rule.priority} in {self.name}")
        self._by_id[rule.rule_id] = rule
        self._dirty = True

    def remove(self, rule_id: int) -> Rule:
        """Remove and return the rule with the given id."""
        try:
            rule = self._by_id.pop(rule_id)
        except KeyError as exc:
            raise RuleSetError(f"unknown rule id {rule_id} in {self.name}") from exc
        self._dirty = True
        return rule

    def extend(self, rules: Iterable[Rule]) -> None:
        """Add several rules."""
        for rule in rules:
            self.add(rule)

    # -- access --------------------------------------------------------------
    def get(self, rule_id: int) -> Rule:
        """Return the rule with the given id."""
        try:
            return self._by_id[rule_id]
        except KeyError as exc:
            raise RuleSetError(f"unknown rule id {rule_id} in {self.name}") from exc

    def __contains__(self, rule_id: object) -> bool:
        return rule_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules())

    def rules(self) -> List[Rule]:
        """Return the rules sorted by priority (highest priority first)."""
        if self._dirty:
            self._ordered = sorted(self._by_id.values(), key=lambda r: r.priority)
            self._dirty = False
        return list(self._ordered)

    def rule_ids(self) -> List[int]:
        """Return rule ids in priority order."""
        return [rule.rule_id for rule in self.rules()]

    def subset(self, count: int, name: Optional[str] = None) -> "RuleSet":
        """Return a new rule set holding the ``count`` highest priority rules."""
        if count < 0:
            raise RuleSetError(f"cannot take a negative subset ({count})")
        return RuleSet(self.rules()[:count], name=name or f"{self.name}[:{count}]")

    def filter(self, predicate: Callable[[Rule], bool], name: Optional[str] = None) -> "RuleSet":
        """Return a new rule set containing the rules satisfying ``predicate``."""
        return RuleSet(
            (rule for rule in self.rules() if predicate(rule)),
            name=name or f"{self.name}[filtered]",
        )

    # -- classification ground truth ------------------------------------------
    def highest_priority_match(self, packet: PacketHeader) -> Optional[Rule]:
        """Linear scan reference: the HPMR for ``packet``, or None.

        Every classifier in the library is validated against this method; it
        is intentionally the most naive possible implementation.
        """
        for rule in self.rules():
            if rule.matches(packet):
                return rule
        return None

    def all_matches(self, packet: PacketHeader) -> List[Rule]:
        """Every rule matching ``packet``, in priority order."""
        return [rule for rule in self.rules() if rule.matches(packet)]

    # -- statistics -------------------------------------------------------------
    def unique_field_values(self, field_name: str) -> int:
        """Number of distinct match specifications for one field (Table II)."""
        if field_name not in FIVE_TUPLE_FIELDS:
            raise RuleSetError(f"unknown field {field_name!r}")
        return len({rule.field_key(field_name) for rule in self._by_id.values()})

    def stats(self) -> RuleSetStats:
        """Compute the summary statistics used by Tables II and III."""
        rules = self.rules()
        unique = {name: self.unique_field_values(name) for name in FIVE_TUPLE_FIELDS}
        wildcards = {
            "src_ip": sum(1 for r in rules if r.src_prefix.is_wildcard),
            "dst_ip": sum(1 for r in rules if r.dst_prefix.is_wildcard),
            "src_port": sum(1 for r in rules if r.src_port.is_wildcard),
            "dst_port": sum(1 for r in rules if r.dst_port.is_wildcard),
            "protocol": sum(1 for r in rules if r.protocol.wildcard),
        }
        exact_ports = {
            "src_port": sum(1 for r in rules if r.src_port.is_exact),
            "dst_port": sum(1 for r in rules if r.dst_port.is_exact),
        }
        average = (
            sum(rule.specificity() for rule in rules) / len(rules) if rules else 0.0
        )
        return RuleSetStats(
            name=self.name,
            size=len(rules),
            unique_field_counts=unique,
            wildcard_field_counts=wildcards,
            exact_port_counts=exact_ports,
            average_specificity=average,
        )

    def renumbered(self, name: Optional[str] = None) -> "RuleSet":
        """Return a copy with priorities renumbered 0..N-1 preserving order."""
        renumbered = RuleSet(name=name or self.name)
        for position, rule in enumerate(self.rules()):
            renumbered.add(rule.with_priority(position))
        return renumbered

    def __repr__(self) -> str:
        return f"RuleSet(name={self.name!r}, size={len(self)})"

"""Parser and writer for the ClassBench filter-set text format.

The on-line filter sets the paper uses [12] are distributed in the ClassBench
``db_generator`` output format, one rule per line::

    @<src prefix>  <dst prefix>  <srclo> : <srchi>  <dstlo> : <dsthi>  <proto>/<mask>  [extra]

for example::

    @192.168.1.0/24  10.0.0.0/8  0 : 65535  7812 : 7812  0x06/0xFF

This module parses that format into :class:`~repro.rules.ruleset.RuleSet`
objects (so real filter files can be dropped in whenever they are available)
and can also serialise any rule set back to it, which is how the synthetic
generator output is persisted for inspection.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.exceptions import RuleSetError
from repro.fields.prefix import Prefix, format_ipv4_prefix
from repro.fields.range_utils import PortRange
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.rules.ruleset import RuleSet

__all__ = ["parse_classbench_line", "parse_classbench", "load_classbench_file", "format_classbench", "dump_classbench_file"]

_LINE_RE = re.compile(
    r"^@(?P<src>\S+)\s+(?P<dst>\S+)\s+"
    r"(?P<splo>\d+)\s*:\s*(?P<sphi>\d+)\s+"
    r"(?P<dplo>\d+)\s*:\s*(?P<dphi>\d+)\s+"
    r"(?P<proto>0x[0-9a-fA-F]+|\d+)\s*/\s*(?P<pmask>0x[0-9a-fA-F]+|\d+)"
    r"(?P<rest>.*)$"
)


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def parse_classbench_line(line: str, rule_id: int, priority: int) -> Rule:
    """Parse one ClassBench rule line into a :class:`Rule`.

    The trailing columns some generators append (flags, extra fields) are kept
    verbatim in ``rule.metadata['extra']``, with one exception: a trailing
    ``action=<name>`` token (the extension :func:`format_classbench` writes
    with ``include_action=True``) selects the rule action instead of the
    default ``forward`` — plain ClassBench has no action column, and without
    it action-sensitive analyses (shadowing / conflict lint) cannot survive a
    round trip through the file format.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise RuleSetError(f"malformed ClassBench rule line: {line!r}")
    protocol_value = _parse_int(match.group("proto"))
    protocol_mask = _parse_int(match.group("pmask"))
    if protocol_mask == 0:
        protocol = ProtocolMatch.any()
    elif protocol_mask == 0xFF:
        protocol = ProtocolMatch.exact(protocol_value & 0xFF)
    else:
        # Partial protocol masks are extremely rare; treat any non-zero mask as
        # an exact match on the masked value, which is how the paper's tables
        # (3 unique protocol values) behave.
        protocol = ProtocolMatch.exact(protocol_value & protocol_mask & 0xFF)
    metadata = {}
    action = RuleAction.FORWARD
    rest_tokens = []
    for token in match.group("rest").split():
        if token.startswith("action="):
            try:
                action = RuleAction(token[len("action="):])
            except ValueError as exc:
                raise RuleSetError(f"unknown rule action in {token!r}") from exc
        else:
            rest_tokens.append(token)
    rest = " ".join(rest_tokens)
    if rest:
        metadata["extra"] = rest
    return Rule(
        rule_id=rule_id,
        priority=priority,
        src_prefix=Prefix.parse(match.group("src")),
        dst_prefix=Prefix.parse(match.group("dst")),
        src_port=PortRange(int(match.group("splo")), int(match.group("sphi"))),
        dst_port=PortRange(int(match.group("dplo")), int(match.group("dphi"))),
        protocol=protocol,
        action=action,
        metadata=metadata,
    )


def parse_classbench(lines: Iterable[str], name: str = "classbench") -> RuleSet:
    """Parse an iterable of ClassBench rule lines into a rule set.

    Rule priority is the line order, matching the filter-set convention that
    earlier rules win.
    """
    ruleset = RuleSet(name=name)
    priority = 0
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        ruleset.add(parse_classbench_line(line, rule_id=priority, priority=priority))
        priority += 1
    return ruleset


def load_classbench_file(path: Union[str, Path], name: Optional[str] = None) -> RuleSet:
    """Load a ClassBench filter file from disk."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_classbench(handle, name=name or path.stem)


def format_classbench(rule: Rule, include_action: bool = False) -> str:
    """Serialise one rule back to the ClassBench line format.

    ``include_action=True`` appends the ``action=<name>`` extension column
    recognised by :func:`parse_classbench_line`, preserving the rule action
    across a round trip; the default keeps the plain upstream format.
    """
    if rule.protocol.wildcard:
        proto = "0x00/0x00"
    else:
        proto = f"0x{rule.protocol.value:02X}/0xFF"
    line = (
        f"@{format_ipv4_prefix(rule.src_prefix.value, rule.src_prefix.length)}\t"
        f"{format_ipv4_prefix(rule.dst_prefix.value, rule.dst_prefix.length)}\t"
        f"{rule.src_port.low} : {rule.src_port.high}\t"
        f"{rule.dst_port.low} : {rule.dst_port.high}\t"
        f"{proto}"
    )
    if include_action:
        line += f"\taction={rule.action.value}"
    return line


def dump_classbench_file(
    ruleset: RuleSet, path: Union[str, Path], include_action: bool = False
) -> List[str]:
    """Write a rule set to disk in ClassBench format; returns the lines written."""
    lines = [format_classbench(rule, include_action=include_action) for rule in ruleset.rules()]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return lines

"""Rule, packet, rule-set and workload-generation substrate.

This package models everything the classifiers consume:

* :class:`~repro.rules.packet.PacketHeader` — the 5-tuple packet header;
* :class:`~repro.rules.rule.Rule` and its field specifications;
* :class:`~repro.rules.ruleset.RuleSet` — ordered rule collections with the
  linear-scan ground truth used to validate every classifier;
* :mod:`~repro.rules.classbench` — the synthetic ClassBench-style generator
  replacing the paper's ACL/FW/IPC filter files;
* :mod:`~repro.rules.parser` — reader/writer for the real ClassBench format;
* :mod:`~repro.rules.trace` — packet trace generation for lookup benchmarks.
"""

from repro.rules.classbench import (
    ClassBenchGenerator,
    FilterFlavor,
    FlavorProfile,
    PAPER_RULE_COUNTS,
    generate_ruleset,
)
from repro.rules.packet import FIVE_TUPLE_FIELDS, PacketHeader
from repro.rules.parser import (
    dump_classbench_file,
    format_classbench,
    load_classbench_file,
    parse_classbench,
    parse_classbench_line,
)
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.rules.ruleset import RuleSet, RuleSetStats
from repro.rules.trace import TraceStats, generate_trace, generate_uniform_trace, trace_stats

__all__ = [
    "PacketHeader",
    "FIVE_TUPLE_FIELDS",
    "Rule",
    "RuleAction",
    "ProtocolMatch",
    "RuleSet",
    "RuleSetStats",
    "FilterFlavor",
    "FlavorProfile",
    "ClassBenchGenerator",
    "generate_ruleset",
    "PAPER_RULE_COUNTS",
    "parse_classbench",
    "parse_classbench_line",
    "load_classbench_file",
    "format_classbench",
    "dump_classbench_file",
    "generate_trace",
    "generate_uniform_trace",
    "trace_stats",
    "TraceStats",
]

"""repro — a behavioural reproduction of "A Configurable Packet Classification
Architecture for Software-Defined Networking" (Guerra Pérez et al., SOCC 2014).

The package provides:

* :mod:`repro.core` — the configurable, label-based, parallel single-field
  classification architecture (the paper's contribution);
* :mod:`repro.fields` — the single-field lookup engines (multi-bit trie,
  binary search tree, segment trie, port registers, protocol LUT);
* :mod:`repro.labels` — the DCFL-style label method with reference-counted
  label tables;
* :mod:`repro.hardware` — the behavioural hardware model (memory blocks,
  cycle accounting, pipeline, rule filter, FPGA resource estimator);
* :mod:`repro.rules` — rules, rule sets, the synthetic ClassBench-style
  generator and packet traces;
* :mod:`repro.baselines` — HyperCuts, RFC, DCFL, bit-vector and linear-search
  comparison classifiers;
* :mod:`repro.controller` — the OpenFlow-lite SDN control plane driving the
  device;
* :mod:`repro.analysis` and :mod:`repro.experiments` — metrics, reporting and
  one driver per table/figure of the paper's evaluation.

Quickstart::

    from repro import ConfigurableClassifier, generate_ruleset, generate_trace

    rules = generate_ruleset(nominal_size=1000)
    classifier = ConfigurableClassifier.from_ruleset(rules)
    packet = generate_trace(rules, count=1)[0]
    print(classifier.lookup(packet).match)
"""

from repro.core import (
    ClassifierConfig,
    ClassifierReport,
    CombinerMode,
    ConfigurableClassifier,
    IpAlgorithm,
    LookupResult,
    UpdateResult,
)
from repro.rules import (
    FilterFlavor,
    PacketHeader,
    Rule,
    RuleAction,
    RuleSet,
    generate_ruleset,
    generate_trace,
    load_classbench_file,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ConfigurableClassifier",
    "ClassifierConfig",
    "IpAlgorithm",
    "CombinerMode",
    "LookupResult",
    "UpdateResult",
    "ClassifierReport",
    "PacketHeader",
    "Rule",
    "RuleAction",
    "RuleSet",
    "FilterFlavor",
    "generate_ruleset",
    "generate_trace",
    "load_classbench_file",
]

"""repro — a behavioural reproduction of "A Configurable Packet Classification
Architecture for Software-Defined Networking" (Guerra Pérez et al., SOCC 2014).

The front door is :mod:`repro.api` — one uniform classification surface over
every engine in the library:

* :func:`~repro.api.create_classifier` builds any registered engine by name
  (``"configurable"`` — the paper's architecture — plus ``"linear_search"``,
  ``"hypercuts"``, ``"efficuts"``, ``"rfc"``, ``"dcfl"``, ``"bitvector"``,
  ``"option1"``, ``"option2"``); :func:`~repro.api.available_classifiers`
  lists them for sweeps;
* every engine satisfies the :class:`~repro.api.PacketClassifier` protocol:
  ``classify(packet) -> Classification``, ``classify_batch(trace) ->
  BatchResult``, ``install``/``remove``, ``memory_bits()``, ``stats()``;
* :class:`~repro.api.ClassificationSession` streams traces through any engine
  in chunks with uniform statistics;
* ``ClassifierConfig.builder()`` configures the architecture fluently.

Underneath sit the paper-faithful layers:

* :mod:`repro.core` — the configurable, label-based, parallel single-field
  classification architecture (the paper's contribution);
* :mod:`repro.fields` — the single-field lookup engines (multi-bit trie,
  binary search tree, segment trie, port registers, protocol LUT);
* :mod:`repro.labels` — the DCFL-style label method with reference-counted
  label tables;
* :mod:`repro.hardware` — the behavioural hardware model (memory blocks,
  cycle accounting, pipeline, rule filter, FPGA resource estimator);
* :mod:`repro.rules` — rules, rule sets, the synthetic ClassBench-style
  generator and packet traces;
* :mod:`repro.baselines` — HyperCuts, EffiCuts, RFC, DCFL, bit-vector and
  linear-search comparison classifiers;
* :mod:`repro.controller` — the OpenFlow-lite SDN control plane driving the
  device;
* :mod:`repro.perf` — the memoizing batch-lookup fast path
  (``classifier.enable_fast_path()`` / ``create_classifier(..., fast=True)``)
  and the multi-replica :class:`~repro.perf.ParallelSession`;
* :mod:`repro.analysis` and :mod:`repro.experiments` — metrics, reporting and
  one driver per table/figure of the paper's evaluation.

Quickstart::

    from repro import generate_ruleset, generate_trace
    from repro.api import create_classifier

    rules = generate_ruleset(nominal_size=1000)
    classifier = create_classifier("configurable", rules)
    trace = generate_trace(rules, count=100)
    print(classifier.classify(trace[0]).rule_id)
    print(classifier.classify_batch(trace).average_memory_accesses)
"""

from repro.core import (
    ClassifierConfig,
    ClassifierReport,
    CombinerMode,
    ConfigurableClassifier,
    IpAlgorithm,
    LookupResult,
    UpdateResult,
)
from repro.core.result import BatchResult, Classification, ClassifierStats
from repro.api import (
    ClassificationSession,
    PacketClassifier,
    available_classifiers,
    create_classifier,
    register_classifier,
)
from repro.perf import FastPathAccelerator, ParallelSession, ReplicaSpec
from repro.rules import (
    FilterFlavor,
    PacketHeader,
    Rule,
    RuleAction,
    RuleSet,
    generate_ruleset,
    generate_trace,
    load_classbench_file,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ConfigurableClassifier",
    "ClassifierConfig",
    "IpAlgorithm",
    "CombinerMode",
    "LookupResult",
    "UpdateResult",
    "ClassifierReport",
    "Classification",
    "BatchResult",
    "ClassifierStats",
    "PacketClassifier",
    "ClassificationSession",
    "FastPathAccelerator",
    "ParallelSession",
    "ReplicaSpec",
    "create_classifier",
    "available_classifiers",
    "register_classifier",
    "PacketHeader",
    "Rule",
    "RuleAction",
    "RuleSet",
    "FilterFlavor",
    "generate_ruleset",
    "generate_trace",
    "load_classbench_file",
]

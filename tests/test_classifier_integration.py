"""Integration tests: the configurable classifier against the linear-scan ground truth.

These are the most important tests of the suite: for generated ACL and FW
workloads, under both IP algorithm configurations, every classified packet
must return exactly the rule the naive priority-ordered linear scan returns.
"""

from __future__ import annotations

import pytest

from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.rules.trace import generate_trace, generate_uniform_trace


def _assert_agrees_with_reference(classifier, ruleset, trace):
    for packet in trace:
        result = classifier.classify(packet)
        expected = ruleset.highest_priority_match(packet)
        got_id = result.rule_id
        expected_id = expected.rule_id if expected else None
        assert got_id == expected_id, f"{packet}: got {got_id}, expected {expected_id}"


@pytest.mark.parametrize("algorithm", [IpAlgorithm.MBT, IpAlgorithm.BST])
class TestGroundTruthAgreement:
    def test_acl_workload(self, algorithm, small_acl_ruleset, small_trace):
        config = ClassifierConfig(ip_algorithm=algorithm)
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset, config)
        _assert_agrees_with_reference(classifier, small_acl_ruleset, small_trace)

    def test_fw_workload(self, algorithm, small_fw_ruleset):
        config = ClassifierConfig(ip_algorithm=algorithm)
        classifier = ConfigurableClassifier.from_ruleset(small_fw_ruleset, config)
        trace = generate_trace(small_fw_ruleset, count=100, seed=11)
        _assert_agrees_with_reference(classifier, small_fw_ruleset, trace)

    def test_uniform_traffic_mostly_misses(self, algorithm, small_acl_ruleset):
        config = ClassifierConfig(ip_algorithm=algorithm)
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset, config)
        trace = generate_uniform_trace(60, seed=13)
        _assert_agrees_with_reference(classifier, small_acl_ruleset, trace)

    def test_agreement_survives_churn(self, algorithm, small_acl_ruleset, small_trace):
        config = ClassifierConfig(ip_algorithm=algorithm)
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset, config)
        victims = small_acl_ruleset.rule_ids()[::3]
        for rule_id in victims:
            classifier.remove_rule(rule_id)
        survivors = small_acl_ruleset.filter(lambda rule: rule.rule_id not in set(victims))
        _assert_agrees_with_reference(classifier, survivors, small_trace[:60])
        # Re-install the removed rules and verify full agreement again.
        for rule_id in victims:
            classifier.install_rule(small_acl_ruleset.get(rule_id))
        _assert_agrees_with_reference(classifier, small_acl_ruleset, small_trace[:60])


class TestReconfigurationConsistency:
    def test_results_identical_across_algorithms(self, small_acl_ruleset, small_trace):
        mbt = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        bst = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        )
        for packet in small_trace[:60]:
            mbt_match = mbt.classify(packet).detail.match
            bst_match = bst.classify(packet).detail.match
            assert (mbt_match.rule_id if mbt_match else None) == (
                bst_match.rule_id if bst_match else None
            )

    def test_runtime_reconfiguration_preserves_results(self, small_acl_ruleset, small_trace):
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        before = [result.rule_id for result in classifier.classify_batch(small_trace[:40])]
        classifier.reconfigure(IpAlgorithm.BST)
        after = [result.rule_id for result in classifier.classify_batch(small_trace[:40])]
        assert before == after


class TestCombinerModesOnRealWorkload:
    def test_cross_product_is_exact(self, small_acl_ruleset, small_trace):
        classifier = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, ClassifierConfig(combiner_mode=CombinerMode.CROSS_PRODUCT)
        )
        _assert_agrees_with_reference(classifier, small_acl_ruleset, small_trace[:80])

    def test_first_label_mode_runs_with_single_probe(self, small_acl_ruleset, small_trace):
        classifier = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, ClassifierConfig(combiner_mode=CombinerMode.FIRST_LABEL)
        )
        for packet in small_trace[:80]:
            result = classifier.classify(packet)
            assert result.combiner_probes <= 1
            # Whatever the fast path returns must at least be a real installed
            # rule that genuinely matches the packet (no false matches).
            if result.matched:
                rule = small_acl_ruleset.get(result.rule_id)
                assert rule.matches(packet)


class TestCostAccountingOnRealWorkload:
    def test_mbt_lookup_access_budget(self, small_acl_ruleset, small_trace):
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        for packet in small_trace[:50]:
            result = classifier.classify(packet).detail
            # 4 IP segment engines x <=3 levels + 2 port register reads +
            # 1 protocol read; the rule filter probing comes on top.
            field_accesses = sum(
                count for name, count in result.memory_accesses.items() if name != "rule_filter"
            )
            assert field_accesses <= 4 * 3 + 2 + 1

    def test_bst_lookup_access_budget(self, small_acl_ruleset, small_trace):
        classifier = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        )
        for packet in small_trace[:50]:
            result = classifier.classify(packet).detail
            for dimension in ("src_ip_hi", "src_ip_lo", "dst_ip_hi", "dst_ip_lo"):
                assert result.memory_accesses[dimension] <= 16

    def test_latency_reflects_configuration(self, small_acl_ruleset, small_trace):
        mbt = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        bst = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        )
        packet = small_trace[0]
        assert mbt.classify(packet).latency_cycles < bst.classify(packet).latency_cycles

"""Unit tests for the label method: allocator, label tables, label lists."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelError
from repro.labels import (
    LabelAllocator,
    LabelList,
    LabelListStore,
    LabelTable,
    PAPER_LABEL_WIDTHS,
)


class TestLabelAllocator:
    def test_allocates_dense_values(self):
        allocator = LabelAllocator("ip", 4)
        assert [allocator.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_capacity_matches_width(self):
        assert LabelAllocator("ip", 13).capacity == 8192
        assert LabelAllocator("port", 7).capacity == 128
        assert LabelAllocator("protocol", 2).capacity == 4

    def test_paper_widths_constant(self):
        assert PAPER_LABEL_WIDTHS == {"ip": 13, "port": 7, "protocol": 2}

    def test_exhaustion_raises(self):
        allocator = LabelAllocator("protocol", 2)
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(LabelError):
            allocator.allocate()

    def test_release_and_recycle(self):
        allocator = LabelAllocator("port", 3)
        first = allocator.allocate()
        allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() == first

    def test_release_unknown_raises(self):
        with pytest.raises(LabelError):
            LabelAllocator("port", 3).release(0)

    def test_live_tracking(self):
        allocator = LabelAllocator("port", 3)
        label = allocator.allocate()
        assert allocator.is_live(label)
        assert allocator.live_count == 1
        assert allocator.remaining == allocator.capacity - 1
        allocator.release(label)
        assert not allocator.is_live(label)

    def test_invalid_width_raises(self):
        with pytest.raises(LabelError):
            LabelAllocator("x", 0)

    def test_repr_mentions_field(self):
        assert "port" in repr(LabelAllocator("port", 7))


class TestLabelTable:
    def test_first_insert_creates_label(self):
        table = LabelTable("dst_port", 7)
        outcome = table.insert((80, 80), priority=3)
        assert outcome.created and outcome.counter == 1
        assert table.label_of((80, 80)) == outcome.label

    def test_second_insert_bumps_counter_only(self):
        table = LabelTable("dst_port", 7)
        first = table.insert((80, 80), priority=3)
        second = table.insert((80, 80), priority=7)
        assert not second.created
        assert second.label == first.label
        assert second.counter == 2

    def test_best_priority_tracks_minimum(self):
        table = LabelTable("dst_port", 7)
        outcome = table.insert((80, 80), priority=9)
        table.insert((80, 80), priority=2)
        table.insert((80, 80), priority=5)
        assert table.best_priority_of(outcome.label) == 2

    def test_remove_decrements_then_deletes(self):
        table = LabelTable("dst_port", 7)
        table.insert((80, 80), priority=1)
        table.insert((80, 80), priority=2)
        first = table.remove((80, 80))
        assert not first.deleted and first.counter == 1
        second = table.remove((80, 80))
        assert second.deleted and second.counter == 0
        assert (80, 80) not in table

    def test_remove_unknown_raises(self):
        with pytest.raises(LabelError):
            LabelTable("dst_port", 7).remove((80, 80))

    def test_label_recycled_after_delete(self):
        table = LabelTable("protocol", 2)
        released = table.insert(("tcp",), priority=0).label
        table.remove(("tcp",))
        assert table.insert(("udp",), priority=1).label == released

    def test_value_of_reverse_mapping(self):
        table = LabelTable("dst_port", 7)
        label = table.insert((53, 53), priority=0).label
        assert table.value_of(label) == (53, 53)
        with pytest.raises(LabelError):
            table.value_of(label + 1)

    def test_label_of_unknown_raises(self):
        with pytest.raises(LabelError):
            LabelTable("dst_port", 7).label_of((1, 1))

    def test_counter_of_missing_value_is_zero(self):
        assert LabelTable("dst_port", 7).counter_of((1, 1)) == 0

    def test_refresh_best_priority(self):
        table = LabelTable("dst_port", 7)
        label = table.insert((80, 80), priority=0).label
        table.insert((80, 80), priority=5)
        table.remove((80, 80))  # the priority-0 user goes away
        table.refresh_best_priority((80, 80), [5])
        assert table.best_priority_of(label) == 5

    def test_refresh_best_priority_requires_survivors(self):
        table = LabelTable("dst_port", 7)
        table.insert((80, 80), priority=0)
        with pytest.raises(LabelError):
            table.refresh_best_priority((80, 80), [])
        with pytest.raises(LabelError):
            table.refresh_best_priority((99, 99), [1])

    def test_update_statistics(self):
        table = LabelTable("dst_port", 7)
        table.insert((80, 80), priority=0)
        table.insert((80, 80), priority=1)
        table.insert((53, 53), priority=2)
        table.remove((53, 53))
        stats = table.update_statistics()
        assert stats["structural_inserts"] == 2
        assert stats["counter_only_inserts"] == 1
        assert stats["structural_deletes"] == 1
        assert stats["counter_only_deletes"] == 0

    def test_unique_values_matches_entries(self):
        table = LabelTable("dst_port", 7)
        for port in (80, 53, 443):
            table.insert((port, port), priority=port)
        assert table.unique_values == 3
        assert len(table.entries()) == 3
        assert len(table) == 3

    def test_memory_bits_scales_with_capacity(self):
        table = LabelTable("dst_port", 7)
        assert table.memory_bits(value_bits=32) == 128 * (32 + 7 + 16)

    def test_exhaustion_propagates(self):
        table = LabelTable("protocol", 1)
        table.insert(("a",), priority=0)
        table.insert(("b",), priority=0)
        with pytest.raises(LabelError):
            table.insert(("c",), priority=0)


class TestLabelList:
    def test_orders_by_priority(self):
        labels = LabelList()
        labels.add(5, priority=30)
        labels.add(7, priority=10)
        labels.add(9, priority=20)
        assert labels.labels() == [7, 9, 5]
        assert labels.first() == 7
        assert labels.first_priority() == 10

    def test_construction_from_pairs(self):
        labels = LabelList([(1, 9), (2, 3)])
        assert labels.first() == 2

    def test_duplicate_label_keeps_best_priority(self):
        labels = LabelList()
        labels.add(4, priority=20)
        labels.add(4, priority=5)
        labels.add(4, priority=50)  # worse priority must not displace
        assert labels.pairs() == [(4, 5)]

    def test_remove(self):
        labels = LabelList([(1, 1), (2, 2)])
        labels.remove(1)
        assert labels.labels() == [2]
        with pytest.raises(LabelError):
            labels.remove(1)

    def test_reprioritize(self):
        labels = LabelList([(1, 1), (2, 2)])
        labels.reprioritize(1, 10)
        assert labels.first() == 2

    def test_first_of_empty_raises(self):
        with pytest.raises(LabelError):
            LabelList().first()
        with pytest.raises(LabelError):
            LabelList().first_priority()

    def test_contains_len_bool_iter(self):
        labels = LabelList([(3, 1)])
        assert 3 in labels and 4 not in labels
        assert len(labels) == 1 and bool(labels)
        assert list(labels) == [3]
        assert not LabelList()

    def test_is_sorted_invariant(self):
        labels = LabelList()
        for label, priority in ((1, 9), (2, 1), (3, 5), (4, 5)):
            labels.add(label, priority)
        assert labels.is_sorted()

    def test_tie_break_is_deterministic(self):
        a = LabelList([(10, 5), (2, 5)])
        b = LabelList([(2, 5), (10, 5)])
        assert a.labels() == b.labels()


class TestLabelListStore:
    def test_pointer_round_trip(self):
        store = LabelListStore()
        pointer = store.new_list()
        store.get(pointer).add(1, 1)
        assert store.get(pointer).first() == 1
        assert len(store) == 1

    def test_dangling_pointer_raises(self):
        with pytest.raises(LabelError):
            LabelListStore().get(0)

    def test_total_entries_and_memory(self):
        store = LabelListStore()
        first = store.new_list()
        second = store.new_list()
        store.get(first).add(1, 1)
        store.get(second).add(2, 2)
        store.get(second).add(3, 3)
        assert store.total_entries() == 3
        assert store.memory_bits(label_bits=13) == 3 * (13 + 16)
